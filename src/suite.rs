//! The `cryptodrop-suite` umbrella: re-exports the workspace crates so the
//! repository-level examples and integration tests have a single import
//! surface, plus a couple of one-call conveniences for users who just want
//! to see the system run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cryptodrop;
pub use cryptodrop_benign as benign;
pub use cryptodrop_corpus as corpus;
pub use cryptodrop_entropy as entropy;
pub use cryptodrop_experiments as experiments;
pub use cryptodrop_malware as malware;
pub use cryptodrop_simhash as simhash;
pub use cryptodrop_sniff as sniff;
pub use cryptodrop_vfs as vfs;

use cryptodrop::{CryptoDrop, DetectionReport};
use cryptodrop_corpus::{Corpus, CorpusSpec};
use cryptodrop_malware::RansomwareSample;
use cryptodrop_vfs::{Vfs, Workload, WorkloadCtx};

/// Stages a corpus of `files` documents, arms CryptoDrop, runs `sample`,
/// and returns the detection report (or `None` if the sample finished
/// undetected — which the test suite asserts never happens).
///
/// This is the one-call version of the quickstart example.
pub fn demo_detection(files: usize, sample: &RansomwareSample) -> Option<DetectionReport> {
    let corpus = Corpus::generate(&CorpusSpec::sized(files, (files / 10).max(2)));
    let mut fs = Vfs::new();
    corpus.stage_into(&mut fs).expect("fresh filesystem");
    let session = CryptoDrop::builder()
        .protecting(corpus.root().as_str())
        .build()
        .expect("valid config");
    fs.register_filter(Box::new(session.fork()));
    let ctx = WorkloadCtx::spawn(&mut fs, sample, corpus.root(), sample.seed());
    sample.drive(&mut fs, &ctx);
    session.detection_for(ctx.pid())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_malware::paper_sample_set;

    #[test]
    fn demo_detects_a_sample() {
        let sample = &paper_sample_set()[0];
        let report = demo_detection(200, sample).expect("detected");
        assert!(report.files_lost < 50);
    }
}
