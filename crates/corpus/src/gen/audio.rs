//! Audio generators: MP3 and WAV (the Coldwell audio-comparison corpus
//! analogue the paper mixes into its document set).

use rand::rngs::StdRng;

use super::{compressed_payload, waveform_payload};

/// An MP3: ID3v2 tag + compressed frames (entropy ≈ 7.9).
pub fn mp3(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size + 64);
    v.extend_from_slice(b"ID3\x04\x00\x00");
    // Tag size (syncsafe) then a title frame.
    let title = b"TIT2\x00\x00\x00\x10\x00\x00\x03audio sample";
    v.extend_from_slice(&[0, 0, 0, title.len() as u8]);
    v.extend_from_slice(title);
    while v.len() < size {
        // An MPEG frame header then frame payload.
        v.extend_from_slice(&[0xFF, 0xFB, 0x90, 0x00]);
        let n = 417.min(size.saturating_sub(v.len()).max(1));
        v.extend_from_slice(&compressed_payload(rng, n));
    }
    v.truncate(size.max(32));
    v
}

/// A RIFF/WAVE with PCM-like medium-entropy samples.
pub fn wav(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let body = size.saturating_sub(44);
    let mut v = Vec::with_capacity(size + 8);
    v.extend_from_slice(b"RIFF");
    v.extend_from_slice(&((36 + body) as u32).to_le_bytes());
    v.extend_from_slice(b"WAVE");
    v.extend_from_slice(b"fmt ");
    v.extend_from_slice(&16u32.to_le_bytes());
    v.extend_from_slice(&[1, 0, 1, 0]); // PCM mono
    v.extend_from_slice(&44100u32.to_le_bytes());
    v.extend_from_slice(&44100u32.to_le_bytes());
    v.extend_from_slice(&[1, 0, 8, 0]);
    v.extend_from_slice(b"data");
    v.extend_from_slice(&(body as u32).to_le_bytes());
    v.extend_from_slice(&waveform_payload(rng, body));
    let _ = rng;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_entropy::shannon_entropy;
    use cryptodrop_sniff::{sniff, FileType};
    use rand::SeedableRng;

    #[test]
    fn sniffed_types_match() {
        let mut r = StdRng::seed_from_u64(5);
        assert_eq!(sniff(&mp3(&mut r, 8192)), FileType::Mp3);
        assert_eq!(sniff(&wav(&mut r, 8192)), FileType::Wav);
    }

    #[test]
    fn entropy_profiles() {
        let mut r = StdRng::seed_from_u64(6);
        assert!(shannon_entropy(&mp3(&mut r, 32768)) > 7.5, "mp3 is compressed");
        let w = shannon_entropy(&wav(&mut r, 32768));
        assert!(w > 4.0 && w < 7.2, "wav is PCM, entropy {w}");
    }

    #[test]
    fn sizes_near_target() {
        let mut r = StdRng::seed_from_u64(7);
        for target in [1024usize, 16384] {
            assert!(mp3(&mut r, target).len() <= target + 64);
            let n = wav(&mut r, target).len();
            assert!(n >= target - 64 && n <= target + 64);
        }
    }
}
