//! Text-family generators: plain text, Markdown, CSV, HTML, XML, JSON,
//! RTF, and log files.

use rand::rngs::StdRng;
use rand::Rng;

use crate::english::EnglishGenerator;

/// Plain `.txt` content of roughly `size` bytes.
pub fn txt(rng: &mut StdRng, size: usize) -> Vec<u8> {
    EnglishGenerator::new().text_of_len(rng, size).into_bytes()
}

/// Markdown with headings, lists, and emphasis.
pub fn markdown(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut gen = EnglishGenerator::new();
    let mut out = String::with_capacity(size + 256);
    out.push_str(&format!("# {}\n\n", gen.title(rng)));
    while out.len() < size {
        match rng.gen_range(0..4) {
            0 => out.push_str(&format!("## {}\n\n", gen.title(rng))),
            1 => {
                for _ in 0..rng.gen_range(2..5) {
                    out.push_str(&format!("- {}\n", gen.sentence(rng)));
                }
                out.push('\n');
            }
            2 => out.push_str(&format!("*{}*\n\n", gen.sentence(rng))),
            _ => {
                out.push_str(&gen.paragraph(rng));
                out.push_str("\n\n");
            }
        }
    }
    out.into_bytes()
}

/// CSV with a header row and consistent numeric/text columns.
pub fn csv(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut out = String::with_capacity(size + 128);
    out.push_str("id,date,department,amount,approved,notes\n");
    let mut gen = EnglishGenerator::new();
    let mut id = 1000;
    while out.len() < size {
        out.push_str(&format!(
            "{},2015-{:02}-{:02},{},{}.{:02},{},{}\n",
            id,
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
            ["sales", "ops", "hr", "it", "legal"][rng.gen_range(0..5)],
            rng.gen_range(10..99999),
            rng.gen_range(0..100),
            if rng.gen_bool(0.8) { "yes" } else { "no" },
            gen.title(rng).to_lowercase(),
        ));
        id += 1;
    }
    out.into_bytes()
}

/// An HTML page.
pub fn html(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut gen = EnglishGenerator::new();
    let title = gen.title(rng);
    let mut out = format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head><meta charset=\"utf-8\"><title>{title}</title></head>\n<body>\n<h1>{title}</h1>\n"
    );
    while out.len() < size.saturating_sub(16) {
        out.push_str(&format!("<p>{}</p>\n", gen.paragraph(rng)));
    }
    out.push_str("</body>\n</html>\n");
    out.into_bytes()
}

/// An XML document.
pub fn xml(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut gen = EnglishGenerator::new();
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<records>\n");
    let mut id = 0;
    while out.len() < size.saturating_sub(12) {
        out.push_str(&format!(
            "  <record id=\"{id}\"><title>{}</title><body>{}</body></record>\n",
            gen.title(rng),
            gen.sentence(rng)
        ));
        id += 1;
    }
    out.push_str("</records>\n");
    out.into_bytes()
}

/// A JSON document (array of objects).
pub fn json(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut gen = EnglishGenerator::new();
    let mut items = Vec::new();
    let mut len = 2;
    let mut id = 0;
    while len < size {
        let item = format!(
            "{{\"id\": {id}, \"name\": \"{}\", \"value\": {}, \"note\": \"{}\"}}",
            gen.title(rng),
            rng.gen_range(0..100000),
            gen.sentence(rng).replace('"', "'"),
        );
        len += item.len() + 2;
        items.push(item);
        id += 1;
    }
    format!("[\n  {}\n]\n", items.join(",\n  ")).into_bytes()
}

/// An RTF document.
pub fn rtf(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut gen = EnglishGenerator::new();
    let mut out = String::from("{\\rtf1\\ansi\\deff0 {\\fonttbl {\\f0 Times New Roman;}}\n");
    while out.len() < size.saturating_sub(2) {
        out.push_str(&format!("\\par {}\n", gen.paragraph(rng)));
    }
    out.push('}');
    out.into_bytes()
}

/// An application log file.
pub fn log(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut gen = EnglishGenerator::new();
    let mut out = String::with_capacity(size + 128);
    let mut t = 0u64;
    while out.len() < size {
        t += rng.gen_range(1..90);
        out.push_str(&format!(
            "2015-11-{:02}T{:02}:{:02}:{:02} [{}] {}\n",
            rng.gen_range(1..29),
            (t / 3600) % 24,
            (t / 60) % 60,
            t % 60,
            ["INFO", "WARN", "DEBUG", "ERROR"][rng.gen_range(0..4)],
            gen.sentence(rng),
        ));
    }
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_sniff::{sniff, FileType};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn sniffed_types_match() {
        let mut r = rng();
        assert_eq!(sniff(&txt(&mut r, 2000)), FileType::Utf8Text);
        assert_eq!(sniff(&csv(&mut r, 2000)), FileType::Csv);
        assert_eq!(sniff(&html(&mut r, 2000)), FileType::Html);
        assert_eq!(sniff(&xml(&mut r, 2000)), FileType::Xml);
        assert_eq!(sniff(&json(&mut r, 2000)), FileType::Json);
        assert_eq!(sniff(&rtf(&mut r, 2000)), FileType::Rtf);
        assert_eq!(sniff(&log(&mut r, 2000)), FileType::Utf8Text);
        // Markdown has no magic; classifies as text.
        assert_eq!(sniff(&markdown(&mut r, 2000)), FileType::Utf8Text);
    }

    #[test]
    fn sizes_are_near_target() {
        let mut r = rng();
        for target in [600usize, 2048, 16384] {
            for f in [txt, markdown, csv, html, xml, json, rtf, log] {
                let data = f(&mut r, target);
                assert!(
                    data.len() >= target / 2 && data.len() < target + 1024,
                    "target {target}, got {}",
                    data.len()
                );
            }
        }
    }

    #[test]
    fn text_entropy_is_textual() {
        let mut r = rng();
        for f in [txt, markdown, csv, html, xml, json, rtf, log] {
            let e = cryptodrop_entropy::shannon_entropy(&f(&mut r, 8192));
            assert!(e > 3.0 && e < 5.5, "entropy {e}");
        }
    }
}
