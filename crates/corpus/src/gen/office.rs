//! Office-document generators: OOXML (docx/xlsx/pptx), OpenDocument (odt),
//! legacy OLE (.doc), and PDF.
//!
//! The OOXML/ODF generators emit ZIP-container structure — local file
//! headers with the member names the sniffer (and `file`) key on — wrapping
//! deflate-like high-entropy payloads, so the whole-file entropy lands
//! where real compressed documents live (≈ 7.8–7.95 bits/byte). PDF mixes
//! text objects with compressed streams, landing lower (≈ 6.5–7.4), which
//! is exactly why the similarity indicator still applies to PDFs but not to
//! OOXML (see the engine's `similarity_max_source_entropy`).

use rand::rngs::StdRng;
use rand::Rng;

use super::{compressed_payload, random_bytes};
use crate::english::EnglishGenerator;

/// A fake ZIP local-file-header entry: signature, filler fields, name,
/// then a "compressed" payload.
fn zip_member(rng: &mut StdRng, name: &str, payload_len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(30 + name.len() + payload_len);
    v.extend_from_slice(&[b'P', b'K', 0x03, 0x04]); // local file header
    v.extend_from_slice(&[0x14, 0x00, 0x00, 0x00, 0x08, 0x00]); // version/flags/method=deflate
    v.extend_from_slice(&random_bytes(rng, 4)); // dos time/date
    v.extend_from_slice(&random_bytes(rng, 12)); // crc + sizes
    v.extend_from_slice(&(name.len() as u16).to_le_bytes());
    v.extend_from_slice(&0u16.to_le_bytes()); // extra len
    v.extend_from_slice(name.as_bytes());
    v.extend_from_slice(&compressed_payload(rng, payload_len));
    v
}

fn ooxml(rng: &mut StdRng, size: usize, members: &[&str]) -> Vec<u8> {
    let mut v = Vec::with_capacity(size + 512);
    v.extend(zip_member(rng, "[Content_Types].xml", 200));
    v.extend(zip_member(rng, "_rels/.rels", 150));
    let body = size.saturating_sub(v.len()).max(64);
    let per = (body / members.len()).max(64);
    for name in members {
        v.extend(zip_member(rng, name, per));
    }
    // End-of-central-directory marker for flavour.
    v.extend_from_slice(&[b'P', b'K', 0x05, 0x06]);
    v.extend_from_slice(&[0u8; 18]);
    v
}

/// A Microsoft Word 2007+ document.
pub fn docx(rng: &mut StdRng, size: usize) -> Vec<u8> {
    ooxml(
        rng,
        size,
        &[
            "word/document.xml",
            "word/styles.xml",
            "word/fontTable.xml",
            "docProps/core.xml",
        ],
    )
}

/// A Microsoft Excel 2007+ workbook.
pub fn xlsx(rng: &mut StdRng, size: usize) -> Vec<u8> {
    ooxml(
        rng,
        size,
        &[
            "xl/workbook.xml",
            "xl/worksheets/sheet1.xml",
            "xl/sharedStrings.xml",
            "docProps/core.xml",
        ],
    )
}

/// A Microsoft PowerPoint 2007+ deck.
pub fn pptx(rng: &mut StdRng, size: usize) -> Vec<u8> {
    ooxml(
        rng,
        size,
        &[
            "ppt/presentation.xml",
            "ppt/slides/slide1.xml",
            "ppt/slides/slide2.xml",
            "ppt/media/image1.png",
        ],
    )
}

/// An OpenDocument Text file.
pub fn odt(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size + 256);
    // ODF requires an uncompressed leading `mimetype` member.
    v.extend_from_slice(&[b'P', b'K', 0x03, 0x04]);
    v.extend_from_slice(&[0x14, 0x00, 0x00, 0x00, 0x00, 0x00]); // stored
    v.extend_from_slice(&[0u8; 16]);
    let mime = "mimetypeapplication/vnd.oasis.opendocument.text";
    v.extend_from_slice(&(8u16).to_le_bytes());
    v.extend_from_slice(&0u16.to_le_bytes());
    v.extend_from_slice(mime.as_bytes());
    let body = size.saturating_sub(v.len()).max(64);
    v.extend(zip_member(rng, "content.xml", body / 2));
    v.extend(zip_member(rng, "styles.xml", body / 2));
    v
}

/// A legacy OLE Compound File (.doc): CFB header + FAT-ish sectors mixing
/// text and binary tables (entropy ≈ 5–6.8).
pub fn doc(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size + 512);
    v.extend_from_slice(&[0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1]);
    v.extend_from_slice(&[0u8; 16]); // clsid
    v.extend_from_slice(&random_bytes(rng, 488)); // rest of the 512B header
    let mut gen = EnglishGenerator::new();
    while v.len() < size {
        if rng.gen_bool(0.6) {
            // A text sector: the document body is stored as UTF-16LE.
            let text = gen.paragraph(rng);
            for c in text.encode_utf16() {
                v.extend_from_slice(&c.to_le_bytes());
            }
        } else {
            // A formatting/table sector.
            v.extend_from_slice(&random_bytes(rng, 512));
        }
    }
    v.truncate(size.max(520));
    v
}

/// A PDF document: header, text objects, and FlateDecode streams.
pub fn pdf(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut gen = EnglishGenerator::new();
    let mut v = Vec::with_capacity(size + 512);
    v.extend_from_slice(b"%PDF-1.5\n%\xE2\xE3\xCF\xD3\n");
    let mut obj = 1;
    while v.len() < size {
        if rng.gen_bool(0.75) {
            // A content text object.
            let text = gen.paragraph(rng);
            v.extend_from_slice(
                format!(
                    "{obj} 0 obj\n<< /Type /Page >>\nBT /F1 11 Tf 72 720 Td ({text}) Tj ET\nendobj\n"
                )
                .as_bytes(),
            );
        } else {
            // A compressed stream object.
            let n = rng.gen_range(400..1400).min(size.saturating_sub(v.len()).max(64));
            v.extend_from_slice(
                format!("{obj} 0 obj\n<< /Filter /FlateDecode /Length {n} >>\nstream\n").as_bytes(),
            );
            v.extend_from_slice(&compressed_payload(rng, n));
            v.extend_from_slice(b"\nendstream\nendobj\n");
        }
        obj += 1;
    }
    v.extend_from_slice(b"trailer\n<< /Root 1 0 R >>\n%%EOF\n");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_entropy::shannon_entropy;
    use cryptodrop_sniff::{sniff, FileType};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn sniffed_types_match() {
        let mut r = rng();
        assert_eq!(sniff(&docx(&mut r, 20000)), FileType::Docx);
        assert_eq!(sniff(&xlsx(&mut r, 20000)), FileType::Xlsx);
        assert_eq!(sniff(&pptx(&mut r, 20000)), FileType::Pptx);
        assert_eq!(sniff(&odt(&mut r, 20000)), FileType::Odt);
        assert_eq!(sniff(&doc(&mut r, 20000)), FileType::OleCompound);
        assert_eq!(sniff(&pdf(&mut r, 20000)), FileType::Pdf);
    }

    #[test]
    fn ooxml_entropy_is_compressed_range() {
        let mut r = rng();
        for f in [docx, xlsx, pptx, odt] {
            let e = shannon_entropy(&f(&mut r, 32768));
            assert!(e > 7.5, "OOXML entropy {e} too low");
        }
    }

    #[test]
    fn pdf_entropy_is_mixed_range() {
        let mut r = rng();
        let e = shannon_entropy(&pdf(&mut r, 65536));
        assert!(
            e > 5.8 && e < 7.5,
            "PDF entropy {e} must sit below the similarity abstention cutoff"
        );
    }

    #[test]
    fn doc_entropy_is_mixed() {
        let mut r = rng();
        let e = shannon_entropy(&doc(&mut r, 32768));
        assert!(e > 3.5 && e < 7.5, "doc entropy {e}");
    }

    #[test]
    fn sizes_are_near_target() {
        let mut r = rng();
        for target in [2048usize, 16384, 65536] {
            for f in [docx, xlsx, pptx, odt, doc, pdf] {
                let n = f(&mut r, target).len();
                assert!(
                    n >= target / 2 && n <= target + 4096,
                    "target {target}, got {n}"
                );
            }
        }
    }

    #[test]
    fn pdfs_are_similarity_digestible() {
        // The similarity indicator must work on PDFs (paper: TeslaCrypt's
        // first encrypted file was a PDF, and union indication fired).
        let mut r = rng();
        let a = pdf(&mut r, 16384);
        let d = cryptodrop_simhash::SdDigest::compute(&a);
        assert!(d.is_some());
    }
}
