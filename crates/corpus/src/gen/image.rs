//! Image generators: JPEG, PNG, GIF, BMP.

use rand::rngs::StdRng;
use rand::Rng;

use super::{compressed_payload, random_bytes, waveform_payload};

/// A JPEG: SOI + APP0/JFIF + quantization tables + an entropy-coded body.
pub fn jpeg(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size + 64);
    v.extend_from_slice(&[0xFF, 0xD8, 0xFF, 0xE0]); // SOI + APP0
    v.extend_from_slice(&[0x00, 0x10]); // APP0 length
    v.extend_from_slice(b"JFIF\0");
    v.extend_from_slice(&[0x01, 0x02, 0x00, 0x00, 0x48, 0x00, 0x48, 0x00, 0x00]);
    // DQT marker + table.
    v.extend_from_slice(&[0xFF, 0xDB, 0x00, 0x43, 0x00]);
    v.extend_from_slice(&random_bytes(rng, 64));
    // SOS then the entropy-coded scan (high-entropy, no 0xFF bytes to keep
    // the structure marker-clean, as real scans byte-stuff them).
    v.extend_from_slice(&[0xFF, 0xDA, 0x00, 0x0C]);
    let body = size.saturating_sub(v.len() + 2);
    for _ in 0..body {
        v.push(rng.gen_range(0..=0xFE));
    }
    v.extend_from_slice(&[0xFF, 0xD9]); // EOI
    v
}

/// A PNG: signature + IHDR + IDAT (deflate-like) + IEND.
pub fn png(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size + 64);
    v.extend_from_slice(&[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]);
    // IHDR chunk.
    v.extend_from_slice(&13u32.to_be_bytes());
    v.extend_from_slice(b"IHDR");
    let w: u32 = rng.gen_range(64..2048);
    let h: u32 = rng.gen_range(64..2048);
    v.extend_from_slice(&w.to_be_bytes());
    v.extend_from_slice(&h.to_be_bytes());
    v.extend_from_slice(&[8, 6, 0, 0, 0]); // bit depth + color type RGBA
    v.extend_from_slice(&random_bytes(rng, 4)); // crc
    // One big IDAT chunk.
    let body = size.saturating_sub(v.len() + 24).max(16);
    v.extend_from_slice(&(body as u32).to_be_bytes());
    v.extend_from_slice(b"IDAT");
    v.extend_from_slice(&compressed_payload(rng, body));
    v.extend_from_slice(&random_bytes(rng, 4)); // crc
    // IEND.
    v.extend_from_slice(&0u32.to_be_bytes());
    v.extend_from_slice(b"IEND");
    v.extend_from_slice(&random_bytes(rng, 4));
    v
}

/// A GIF89a: header + LZW-ish medium-high entropy body.
pub fn gif(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size + 32);
    v.extend_from_slice(b"GIF89a");
    let w: u16 = rng.gen_range(16..1024);
    let h: u16 = rng.gen_range(16..1024);
    v.extend_from_slice(&w.to_le_bytes());
    v.extend_from_slice(&h.to_le_bytes());
    v.extend_from_slice(&[0xF7, 0x00, 0x00]); // GCT flags
    v.extend_from_slice(&random_bytes(rng, 256 * 3)); // palette
    let body = size.saturating_sub(v.len() + 1);
    v.extend_from_slice(&compressed_payload(rng, body));
    v.push(0x3B); // trailer
    v
}

/// A BMP: header + uncompressed gradient-ish pixels (low entropy).
pub fn bmp(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size + 64);
    v.extend_from_slice(b"BM");
    v.extend_from_slice(&(size as u32).to_le_bytes());
    v.extend_from_slice(&[0u8; 4]);
    v.extend_from_slice(&54u32.to_le_bytes()); // pixel offset
    v.extend_from_slice(&40u32.to_le_bytes()); // DIB header size
    let w: u32 = rng.gen_range(16..512);
    v.extend_from_slice(&w.to_le_bytes());
    v.extend_from_slice(&w.to_le_bytes());
    v.extend_from_slice(&[1, 0, 24, 0]);
    v.extend_from_slice(&[0u8; 24]);
    let body = size.saturating_sub(v.len());
    v.extend_from_slice(&waveform_payload(rng, body));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_entropy::shannon_entropy;
    use cryptodrop_sniff::{sniff, FileType};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn sniffed_types_match() {
        let mut r = rng();
        assert_eq!(sniff(&jpeg(&mut r, 8192)), FileType::Jpeg);
        assert_eq!(sniff(&png(&mut r, 8192)), FileType::Png);
        assert_eq!(sniff(&gif(&mut r, 8192)), FileType::Gif);
        assert_eq!(sniff(&bmp(&mut r, 8192)), FileType::Bmp);
    }

    #[test]
    fn entropy_profiles() {
        let mut r = rng();
        assert!(shannon_entropy(&jpeg(&mut r, 32768)) > 7.7, "jpeg is compressed");
        assert!(shannon_entropy(&png(&mut r, 32768)) > 7.5, "png is compressed");
        let b = shannon_entropy(&bmp(&mut r, 32768));
        assert!(b < 7.0, "bmp is raw pixels, entropy {b}");
    }

    #[test]
    fn sizes_near_target() {
        let mut r = rng();
        for target in [1024usize, 8192, 65536] {
            for f in [jpeg, png, gif, bmp] {
                let n = f(&mut r, target).len();
                assert!(n >= target / 2 && n <= target + 2048, "got {n} for {target}");
            }
        }
    }

    #[test]
    fn jpeg_scan_has_no_stray_markers() {
        let mut r = rng();
        let img = jpeg(&mut r, 16384);
        // After the SOS header, no 0xFF until the final EOI.
        let sos = img.windows(2).position(|w| w == [0xFF, 0xDA]).unwrap();
        let scan = &img[sos + 4..img.len() - 2];
        assert!(!scan.contains(&0xFF));
    }
}
