//! Per-format content synthesizers.
//!
//! Each generator produces bytes that are *indicator-faithful* stand-ins
//! for the real format: correct magic numbers (so the sniffer classifies
//! them as `file` would), format-typical Shannon entropy (so the entropy
//! delta behaves as on real corpora — already-compressed formats leave
//! little headroom, text leaves a lot), and enough internal structure for
//! the similarity digests to latch onto.

pub mod archive;
pub mod audio;
pub mod image;
pub mod office;
pub mod text;

use rand::rngs::StdRng;
use rand::Rng;

/// Uniformly random bytes (entropy ≈ 8.0): the body of a simulated
/// compressed stream.
pub(crate) fn random_bytes(rng: &mut StdRng, n: usize) -> Vec<u8> {
    let mut v = vec![0u8; n];
    rng.fill(&mut v[..]);
    v
}

/// A deflate-like payload: high entropy (~7.8–7.95) but with the slight
/// structure real compressed streams have (block headers, occasional
/// literal runs).
pub(crate) fn compressed_payload(rng: &mut StdRng, n: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        // A "block": a short header, then random bytes.
        let header_len = 3;
        let block_len = rng.gen_range(256..1024).min(n - v.len());
        for _ in 0..header_len.min(block_len) {
            v.push(rng.gen_range(0..16) as u8); // low-valued header bytes
        }
        for _ in header_len.min(block_len)..block_len {
            v.push(rng.gen());
        }
    }
    v.truncate(n);
    v
}

/// A medium-entropy payload (~5–6 bits/byte): coarsely quantized
/// waveform-like data used for PCM audio and bitmap pixels. Quantizing to
/// a 64-value alphabet caps the entropy at 6 bits/byte, as 8-bit PCM and
/// smooth raster gradients do in practice.
pub(crate) fn waveform_payload(rng: &mut StdRng, n: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n);
    let mut phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let freq: f64 = rng.gen_range(0.02..0.2);
    for _ in 0..n {
        phase += freq;
        let base = (phase.sin() * 96.0) as i16 + 128;
        let noise: i16 = rng.gen_range(-12..=12);
        let sample = (base + noise).clamp(0, 255) as u8;
        v.push(sample & !0x03);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_entropy::shannon_entropy;
    use rand::SeedableRng;

    #[test]
    fn payload_entropy_profiles() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = shannon_entropy(&random_bytes(&mut rng, 32768));
        assert!(r > 7.98, "random {r}");
        let c = shannon_entropy(&compressed_payload(&mut rng, 32768));
        assert!(c > 7.6 && c < 8.0, "compressed {c}");
        let w = shannon_entropy(&waveform_payload(&mut rng, 32768));
        assert!(w > 4.5 && w < 7.2, "waveform {w}");
    }

    #[test]
    fn exact_lengths() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [0usize, 1, 255, 256, 1000, 4096] {
            assert_eq!(random_bytes(&mut rng, n).len(), n);
            assert_eq!(compressed_payload(&mut rng, n).len(), n);
            assert_eq!(waveform_payload(&mut rng, n).len(), n);
        }
    }
}
