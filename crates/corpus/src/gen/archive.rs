//! Archive generators: plain ZIP and gzip (the odd archive found in real
//! user document directories).

use rand::rngs::StdRng;
use rand::Rng;

use super::{compressed_payload, random_bytes};

/// A plain ZIP archive (not an OOXML/ODF container).
pub fn zip(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size + 128);
    let mut i = 0;
    while v.len() + 64 < size {
        let name = format!("backup/item-{i}.dat");
        v.extend_from_slice(&[b'P', b'K', 0x03, 0x04]);
        v.extend_from_slice(&[0x14, 0x00, 0x00, 0x00, 0x08, 0x00]);
        v.extend_from_slice(&random_bytes(rng, 16));
        v.extend_from_slice(&(name.len() as u16).to_le_bytes());
        v.extend_from_slice(&0u16.to_le_bytes());
        v.extend_from_slice(name.as_bytes());
        let n = rng.gen_range(512..4096).min(size.saturating_sub(v.len()).max(16));
        v.extend_from_slice(&compressed_payload(rng, n));
        i += 1;
    }
    v.extend_from_slice(&[b'P', b'K', 0x05, 0x06]);
    v.extend_from_slice(&[0u8; 18]);
    v
}

/// A gzip stream.
pub fn gzip(rng: &mut StdRng, size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(size);
    v.extend_from_slice(&[0x1F, 0x8B, 0x08, 0x00]); // magic + deflate + flags
    v.extend_from_slice(&random_bytes(rng, 4)); // mtime
    v.extend_from_slice(&[0x00, 0x03]); // xfl + os=unix
    v.extend_from_slice(&compressed_payload(rng, size.saturating_sub(18)));
    v.extend_from_slice(&random_bytes(rng, 8)); // crc + isize
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_sniff::{sniff, FileType};
    use rand::SeedableRng;

    #[test]
    fn sniffed_types_match() {
        let mut r = StdRng::seed_from_u64(9);
        assert_eq!(sniff(&zip(&mut r, 16384)), FileType::Zip);
        assert_eq!(sniff(&gzip(&mut r, 16384)), FileType::Gzip);
    }

    #[test]
    fn zip_is_not_mistaken_for_ooxml() {
        let mut r = StdRng::seed_from_u64(10);
        let data = zip(&mut r, 32768);
        assert_eq!(sniff(&data), FileType::Zip, "no OOXML member names present");
    }

    #[test]
    fn entropy_is_high() {
        let mut r = StdRng::seed_from_u64(11);
        assert!(cryptodrop_entropy::shannon_entropy(&zip(&mut r, 32768)) > 7.5);
        assert!(cryptodrop_entropy::shannon_entropy(&gzip(&mut r, 32768)) > 7.6);
    }
}
