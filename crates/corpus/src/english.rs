//! Deterministic English-like text generation.
//!
//! The corpus needs plaintext with realistic byte statistics: natural
//! English sits around 4.0–4.5 bits/byte of Shannon entropy, which is what
//! gives the entropy-delta indicator its large signal on text files and
//! what the similarity digests chew on. A small Markov-flavoured sentence
//! generator over a fixed vocabulary reproduces those statistics while
//! remaining fully deterministic per seed.

use rand::rngs::StdRng;
use rand::Rng;

const NOUNS: &[&str] = &[
    "report", "budget", "meeting", "project", "quarter", "invoice", "contract", "schedule",
    "analysis", "proposal", "customer", "vendor", "market", "revenue", "forecast", "department",
    "manager", "employee", "product", "service", "strategy", "committee", "review", "deadline",
    "agenda", "summary", "estimate", "account", "payment", "delivery", "inventory", "office",
    "document", "record", "policy", "procedure", "update", "result", "figure", "target",
];

const VERBS: &[&str] = &[
    "shows", "indicates", "requires", "confirms", "suggests", "exceeds", "includes", "reflects",
    "supports", "describes", "outlines", "covers", "presents", "summarizes", "details", "affects",
    "improves", "reduces", "increases", "maintains", "reaches", "delivers", "tracks", "measures",
];

const ADJECTIVES: &[&str] = &[
    "quarterly", "annual", "preliminary", "final", "revised", "updated", "internal", "external",
    "critical", "standard", "detailed", "complete", "pending", "approved", "projected", "current",
    "previous", "additional", "significant", "minor", "major", "overall", "combined", "estimated",
];

const CONNECTORS: &[&str] = &[
    "and", "but", "while", "because", "although", "therefore", "however", "moreover",
    "in addition", "as a result", "for example", "in contrast",
];

/// A deterministic English-like text generator.
///
/// # Examples
///
/// ```
/// use cryptodrop_corpus::english::EnglishGenerator;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut gen = EnglishGenerator::new();
/// let text = gen.paragraphs(&mut rng, 2);
/// assert!(text.split_whitespace().count() > 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnglishGenerator {
    _private: (),
}

impl EnglishGenerator {
    /// Creates a generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// One sentence of 8–18 words.
    pub fn sentence(&mut self, rng: &mut StdRng) -> String {
        let clauses = if rng.gen_bool(0.3) { 2 } else { 1 };
        let mut out = String::new();
        for c in 0..clauses {
            if c > 0 {
                out.push_str(", ");
                out.push_str(CONNECTORS[rng.gen_range(0..CONNECTORS.len())]);
                out.push(' ');
            }
            out.push_str("the ");
            out.push_str(ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())]);
            out.push(' ');
            out.push_str(NOUNS[rng.gen_range(0..NOUNS.len())]);
            out.push(' ');
            out.push_str(VERBS[rng.gen_range(0..VERBS.len())]);
            out.push_str(" the ");
            out.push_str(ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())]);
            out.push(' ');
            out.push_str(NOUNS[rng.gen_range(0..NOUNS.len())]);
            if rng.gen_bool(0.4) {
                out.push_str(" for the ");
                out.push_str(NOUNS[rng.gen_range(0..NOUNS.len())]);
            }
        }
        // Capitalize and terminate.
        let mut chars = out.chars();
        let cap: String = chars
            .next()
            .map(|c| c.to_uppercase().collect::<String>())
            .unwrap_or_default();
        format!("{cap}{}.", chars.as_str())
    }

    /// A paragraph of 3–7 sentences.
    pub fn paragraph(&mut self, rng: &mut StdRng) -> String {
        let n = rng.gen_range(3..=7);
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&self.sentence(rng));
        }
        out
    }

    /// `n` paragraphs separated by blank lines.
    pub fn paragraphs(&mut self, rng: &mut StdRng, n: usize) -> String {
        (0..n)
            .map(|_| self.paragraph(rng))
            .collect::<Vec<_>>()
            .join("\n\n")
    }

    /// Text of approximately `target_bytes` bytes (within one sentence).
    pub fn text_of_len(&mut self, rng: &mut StdRng, target_bytes: usize) -> String {
        let mut out = String::with_capacity(target_bytes + 128);
        while out.len() < target_bytes {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&self.sentence(rng));
            if rng.gen_bool(0.12) {
                out.push_str("\n\n");
            }
        }
        out
    }

    /// A short title-like phrase.
    pub fn title(&mut self, rng: &mut StdRng) -> String {
        format!(
            "{} {} {}",
            capitalize(ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())]),
            capitalize(NOUNS[rng.gen_range(0..NOUNS.len())]),
            capitalize(NOUNS[rng.gen_range(0..NOUNS.len())]),
        )
    }

    /// A plausible lowercase file stem like `revised-budget-17`.
    pub fn file_stem(&mut self, rng: &mut StdRng) -> String {
        format!(
            "{}-{}-{}",
            ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())],
            NOUNS[rng.gen_range(0..NOUNS.len())],
            rng.gen_range(0..1000)
        )
    }
}

fn capitalize(word: &str) -> String {
    let mut c = word.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_entropy::shannon_entropy;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = EnglishGenerator::new();
        let mut b = EnglishGenerator::new();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        assert_eq!(a.paragraphs(&mut r1, 3), b.paragraphs(&mut r2, 3));
    }

    #[test]
    fn different_seeds_differ() {
        let mut g = EnglishGenerator::new();
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        assert_ne!(g.paragraph(&mut r1), g.paragraph(&mut r2));
    }

    #[test]
    fn entropy_in_english_range() {
        let mut g = EnglishGenerator::new();
        let mut rng = StdRng::seed_from_u64(9);
        let text = g.text_of_len(&mut rng, 16384);
        let e = shannon_entropy(text.as_bytes());
        assert!(e > 3.6 && e < 4.8, "entropy {e} outside English range");
    }

    #[test]
    fn text_of_len_hits_target() {
        let mut g = EnglishGenerator::new();
        let mut rng = StdRng::seed_from_u64(3);
        let text = g.text_of_len(&mut rng, 5000);
        assert!(text.len() >= 5000 && text.len() < 5400);
    }

    #[test]
    fn sentences_are_capitalized_and_terminated() {
        let mut g = EnglishGenerator::new();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let s = g.sentence(&mut rng);
            assert!(s.ends_with('.'));
            assert!(s.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn file_stems_are_path_safe() {
        let mut g = EnglishGenerator::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let stem = g.file_stem(&mut rng);
            assert!(stem
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-'));
        }
    }
}
