//! The corpus specification: file-type mix and size model.
//!
//! The paper (§V-A) built its 5,099-file / 511-directory corpus from the
//! Govdocs1 threads, an OOXML set, the OPF format corpus, and the Coldwell
//! audio files, proportioned to match measured user document directories
//! (Hicks et al., the paper's ref. 22). [`CorpusSpec::paper`] reproduces that shape:
//! productivity documents dominate, images and audio are present, and a
//! meaningful population of sub-512-byte text files exists (the population
//! that drives the CTB-Locker/sdhash interaction in §V-C).

use cryptodrop_vfs::VPath;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gen;

/// Which synthesizer produces a file's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeneratorKind {
    /// Plain text.
    Txt,
    /// Markdown.
    Markdown,
    /// CSV.
    Csv,
    /// HTML.
    Html,
    /// XML.
    Xml,
    /// JSON.
    Json,
    /// RTF.
    Rtf,
    /// Log file.
    Log,
    /// Word 2007+.
    Docx,
    /// Excel 2007+.
    Xlsx,
    /// PowerPoint 2007+.
    Pptx,
    /// OpenDocument Text.
    Odt,
    /// Legacy Word (OLE).
    Doc,
    /// PDF.
    Pdf,
    /// JPEG image.
    Jpeg,
    /// PNG image.
    Png,
    /// GIF image.
    Gif,
    /// BMP image.
    Bmp,
    /// MP3 audio.
    Mp3,
    /// WAV audio.
    Wav,
    /// Plain ZIP archive.
    Zip,
    /// gzip stream.
    Gzip,
}

impl GeneratorKind {
    /// Synthesizes content of approximately `size` bytes.
    pub fn generate(self, rng: &mut StdRng, size: usize) -> Vec<u8> {
        match self {
            GeneratorKind::Txt => gen::text::txt(rng, size),
            GeneratorKind::Markdown => gen::text::markdown(rng, size),
            GeneratorKind::Csv => gen::text::csv(rng, size),
            GeneratorKind::Html => gen::text::html(rng, size),
            GeneratorKind::Xml => gen::text::xml(rng, size),
            GeneratorKind::Json => gen::text::json(rng, size),
            GeneratorKind::Rtf => gen::text::rtf(rng, size),
            GeneratorKind::Log => gen::text::log(rng, size),
            GeneratorKind::Docx => gen::office::docx(rng, size),
            GeneratorKind::Xlsx => gen::office::xlsx(rng, size),
            GeneratorKind::Pptx => gen::office::pptx(rng, size),
            GeneratorKind::Odt => gen::office::odt(rng, size),
            GeneratorKind::Doc => gen::office::doc(rng, size),
            GeneratorKind::Pdf => gen::office::pdf(rng, size),
            GeneratorKind::Jpeg => gen::image::jpeg(rng, size),
            GeneratorKind::Png => gen::image::png(rng, size),
            GeneratorKind::Gif => gen::image::gif(rng, size),
            GeneratorKind::Bmp => gen::image::bmp(rng, size),
            GeneratorKind::Mp3 => gen::audio::mp3(rng, size),
            GeneratorKind::Wav => gen::audio::wav(rng, size),
            GeneratorKind::Zip => gen::archive::zip(rng, size),
            GeneratorKind::Gzip => gen::archive::gzip(rng, size),
        }
    }
}

/// One entry in the type mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeSpec {
    /// The file extension (no dot).
    pub extension: String,
    /// Relative weight in the mix (weights need not sum to 1).
    pub weight: f64,
    /// The median file size, bytes.
    pub median_size: usize,
    /// Log-normal spread (σ of ln size).
    pub sigma: f64,
    /// Which synthesizer to use.
    pub generator: GeneratorKind,
}

impl TypeSpec {
    fn new(
        extension: &str,
        weight: f64,
        median_size: usize,
        sigma: f64,
        generator: GeneratorKind,
    ) -> Self {
        Self {
            extension: extension.to_string(),
            weight,
            median_size,
            sigma,
            generator,
        }
    }

    /// Samples a size from the log-normal model, clamped to
    /// `[64, 262144]` bytes to bound corpus memory.
    pub fn sample_size(&self, rng: &mut StdRng) -> usize {
        // Box-Muller standard normal from two uniforms.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let size = self.median_size as f64 * (self.sigma * z).exp();
        size.clamp(64.0, 262_144.0) as usize
    }
}

/// The full corpus specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// PRNG seed; the corpus is a pure function of the spec.
    pub seed: u64,
    /// Total number of files (5,099 in the paper).
    pub total_files: usize,
    /// Total number of directories including the root (511 in the paper).
    pub total_dirs: usize,
    /// The root path (the user's documents folder).
    pub root: VPath,
    /// The fraction of files marked read-only (reproduces §V-C's GPcode
    /// observation that "some of our test files were marked read-only").
    pub read_only_fraction: f64,
    /// The type mix.
    pub mix: Vec<TypeSpec>,
}

impl CorpusSpec {
    /// The paper-scale corpus: 5,099 files over 511 directories with a
    /// user-documents type mix.
    pub fn paper() -> Self {
        Self::sized(5_099, 511)
    }

    /// A smaller corpus with the same mix, for tests.
    pub fn sized(total_files: usize, total_dirs: usize) -> Self {
        Self {
            seed: 0x9D0C5,
            total_files,
            total_dirs,
            root: VPath::new("/Users/victim/Documents"),
            read_only_fraction: 0.02,
            mix: Self::default_mix(),
        }
    }

    /// The default user-documents type mix, approximating the paper's
    /// corpus proportions.
    pub fn default_mix() -> Vec<TypeSpec> {
        use GeneratorKind as G;
        vec![
            // Productivity documents dominate user document folders.
            TypeSpec::new("doc", 0.09, 22_000, 0.9, G::Doc),
            TypeSpec::new("docx", 0.10, 18_000, 0.9, G::Docx),
            TypeSpec::new("pdf", 0.12, 28_000, 1.0, G::Pdf),
            TypeSpec::new("xlsx", 0.07, 14_000, 0.9, G::Xlsx),
            TypeSpec::new("pptx", 0.04, 45_000, 0.8, G::Pptx),
            TypeSpec::new("odt", 0.03, 15_000, 0.8, G::Odt),
            TypeSpec::new("rtf", 0.02, 9_000, 0.9, G::Rtf),
            // Plain and structured text, with a deliberate small-file tail.
            TypeSpec::new("txt", 0.09, 2_000, 0.8, G::Txt),
            TypeSpec::new("md", 0.03, 1_400, 0.6, G::Markdown),
            TypeSpec::new("csv", 0.04, 4_500, 1.1, G::Csv),
            TypeSpec::new("html", 0.04, 6_000, 0.9, G::Html),
            TypeSpec::new("xml", 0.03, 4_000, 1.0, G::Xml),
            TypeSpec::new("json", 0.02, 2_500, 1.1, G::Json),
            TypeSpec::new("log", 0.02, 8_000, 1.2, G::Log),
            // Media.
            TypeSpec::new("jpg", 0.10, 24_000, 0.8, G::Jpeg),
            TypeSpec::new("png", 0.04, 12_000, 0.9, G::Png),
            TypeSpec::new("gif", 0.02, 6_000, 0.9, G::Gif),
            TypeSpec::new("bmp", 0.01, 30_000, 0.6, G::Bmp),
            TypeSpec::new("mp3", 0.04, 48_000, 0.7, G::Mp3),
            TypeSpec::new("wav", 0.02, 40_000, 0.7, G::Wav),
            // The odd archive.
            TypeSpec::new("zip", 0.02, 30_000, 1.0, G::Zip),
            TypeSpec::new("gz", 0.01, 15_000, 1.0, G::Gzip),
        ]
    }

    /// Picks a type from the mix by weight.
    pub fn pick_type<'a>(&'a self, rng: &mut StdRng) -> &'a TypeSpec {
        let total: f64 = self.mix.iter().map(|t| t.weight).sum();
        let mut roll = rng.gen_range(0.0..total);
        for t in &self.mix {
            if roll < t.weight {
                return t;
            }
            roll -= t.weight;
        }
        self.mix.last().expect("mix is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_spec_dimensions() {
        let s = CorpusSpec::paper();
        assert_eq!(s.total_files, 5_099);
        assert_eq!(s.total_dirs, 511);
        assert!(!s.mix.is_empty());
        let total_weight: f64 = s.mix.iter().map(|t| t.weight).sum();
        assert!((total_weight - 1.0).abs() < 0.02, "weights ≈ 1, got {total_weight}");
    }

    #[test]
    fn size_sampling_is_clamped_and_centered() {
        let spec = TypeSpec::new("txt", 1.0, 2_000, 1.2, GeneratorKind::Txt);
        let mut rng = StdRng::seed_from_u64(3);
        let sizes: Vec<usize> = (0..2000).map(|_| spec.sample_size(&mut rng)).collect();
        assert!(sizes.iter().all(|&s| (64..=262_144).contains(&s)));
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!(
            (1_200..=3_200).contains(&median),
            "median {median} should be near 2000"
        );
        // The small-file tail exists (the §V-C population).
        let tiny = sizes.iter().filter(|&&s| s < 512).count();
        assert!(tiny > 50, "expected a sub-512B tail, got {tiny}");
    }

    #[test]
    fn pick_type_respects_weights() {
        let spec = CorpusSpec::paper();
        let mut rng = StdRng::seed_from_u64(4);
        let mut pdf = 0;
        let n = 10_000;
        for _ in 0..n {
            if spec.pick_type(&mut rng).extension == "pdf" {
                pdf += 1;
            }
        }
        let frac = pdf as f64 / n as f64;
        assert!((0.10..=0.20).contains(&frac), "pdf fraction {frac}");
    }

    #[test]
    fn all_generators_produce_content() {
        let mut rng = StdRng::seed_from_u64(5);
        for t in CorpusSpec::default_mix() {
            let data = t.generator.generate(&mut rng, 4096);
            assert!(!data.is_empty(), "{}", t.extension);
        }
    }
}
