//! Nested directory-tree generation.
//!
//! The paper's corpus spreads 5,099 files over "a nested directory tree
//! with 511 total directories". Figure 4 draws that tree rooted at the
//! documents folder; families traverse it in visibly different orders, so
//! the tree must have real depth and branching rather than being flat.

use cryptodrop_vfs::VPath;
use rand::rngs::StdRng;
use rand::Rng;

const DIR_NAMES: &[&str] = &[
    "projects", "archive", "finance", "reports", "photos", "music", "taxes", "clients",
    "personal", "work", "travel", "receipts", "contracts", "presentations", "drafts", "old",
    "backup", "shared", "family", "school", "research", "invoices", "meetings", "notes",
    "templates", "exports", "scans", "letters", "budgets", "plans",
];

/// Maximum directory nesting below the root.
pub const MAX_DEPTH: usize = 6;

/// Generates `total_dirs` directory paths (including the root itself),
/// forming a random tree of bounded depth.
///
/// # Panics
///
/// Panics if `total_dirs` is zero (the root always exists).
pub fn generate_tree(rng: &mut StdRng, root: &VPath, total_dirs: usize) -> Vec<VPath> {
    assert!(total_dirs >= 1, "the root itself counts as a directory");
    let mut dirs: Vec<VPath> = vec![root.clone()];
    let mut counter = 0usize;
    while dirs.len() < total_dirs {
        // Bias parent selection toward shallower directories so the tree
        // branches out rather than degenerating into a chain.
        let idx = rng.gen_range(0..dirs.len()).min(rng.gen_range(0..dirs.len()));
        let parent = dirs[idx].clone();
        if parent.depth() >= root.depth() + MAX_DEPTH {
            continue;
        }
        let base = DIR_NAMES[rng.gen_range(0..DIR_NAMES.len())];
        let name = if rng.gen_bool(0.5) {
            format!("{base}-{counter}")
        } else {
            format!("{base} {}", rng.gen_range(2001..2016))
        };
        counter += 1;
        let child = parent.join(&name);
        if !dirs.contains(&child) {
            dirs.push(child);
        }
    }
    dirs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn root() -> VPath {
        VPath::new("/docs")
    }

    #[test]
    fn generates_exact_count_including_root() {
        let mut rng = StdRng::seed_from_u64(1);
        let dirs = generate_tree(&mut rng, &root(), 511);
        assert_eq!(dirs.len(), 511);
        assert_eq!(dirs[0], root());
    }

    #[test]
    fn all_dirs_are_under_root_and_unique() {
        let mut rng = StdRng::seed_from_u64(2);
        let dirs = generate_tree(&mut rng, &root(), 200);
        let set: std::collections::HashSet<_> = dirs.iter().collect();
        assert_eq!(set.len(), dirs.len());
        assert!(dirs.iter().all(|d| d.starts_with(&root())));
    }

    #[test]
    fn parents_always_present() {
        let mut rng = StdRng::seed_from_u64(3);
        let dirs = generate_tree(&mut rng, &root(), 300);
        let set: std::collections::HashSet<_> = dirs.iter().cloned().collect();
        for d in &dirs {
            if d != &root() {
                assert!(set.contains(&d.parent().unwrap()), "orphan {d}");
            }
        }
    }

    #[test]
    fn depth_is_bounded_and_tree_is_nested() {
        let mut rng = StdRng::seed_from_u64(4);
        let dirs = generate_tree(&mut rng, &root(), 511);
        let rd = root().depth();
        let max = dirs.iter().map(VPath::depth).max().unwrap();
        assert!(max <= rd + MAX_DEPTH);
        assert!(max >= rd + 3, "tree should actually nest, max depth {max}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            generate_tree(&mut a, &root(), 100),
            generate_tree(&mut b, &root(), 100)
        );
    }

    #[test]
    fn single_dir_is_just_root() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(generate_tree(&mut rng, &root(), 1), vec![root()]);
    }
}
