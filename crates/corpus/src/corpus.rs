//! Corpus generation and staging.

use std::collections::BTreeMap;

use cryptodrop_vfs::{Vfs, VfsResult, VPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::english::EnglishGenerator;
use crate::spec::CorpusSpec;
use crate::tree::generate_tree;

/// One generated corpus file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusFile {
    /// Absolute path under the corpus root.
    pub path: VPath,
    /// The file content (held by the template; staged by copy).
    pub data: Vec<u8>,
    /// Whether the file is marked read-only when staged.
    pub read_only: bool,
    /// The extension used when naming the file.
    pub extension: String,
    /// Whether this file is a decoy (bait): woven in by
    /// [`Corpus::with_decoys`], never part of the real document set, and
    /// meant to be registered with the detector so any modification is an
    /// instant detection.
    pub decoy: bool,
}

/// A generated document corpus: a reusable template that can be staged
/// into any number of fresh filesystems (one per experiment run).
///
/// # Examples
///
/// ```
/// use cryptodrop_corpus::{Corpus, CorpusSpec};
/// use cryptodrop_vfs::Vfs;
///
/// let corpus = Corpus::generate(&CorpusSpec::sized(100, 12));
/// assert_eq!(corpus.file_count(), 100);
///
/// let mut fs = Vfs::new();
/// corpus.stage_into(&mut fs).unwrap();
/// assert_eq!(fs.file_count(), 100);
/// assert_eq!(fs.dir_count(), corpus.dir_count() + 3); // +/Users, +/Users/victim, +/
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corpus {
    root: VPath,
    files: Vec<CorpusFile>,
    dirs: Vec<VPath>,
}

impl Corpus {
    /// Generates a corpus from a spec. Deterministic per spec.
    pub fn generate(spec: &CorpusSpec) -> Corpus {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let dirs = generate_tree(&mut rng, &spec.root, spec.total_dirs.max(1));
        let mut namer = EnglishGenerator::new();
        let mut files = Vec::with_capacity(spec.total_files);
        let mut used: BTreeMap<VPath, ()> = BTreeMap::new();
        while files.len() < spec.total_files {
            let t = spec.pick_type(&mut rng);
            let dir = &dirs[rng.gen_range(0..dirs.len())];
            let mut path = dir.join(format!("{}.{}", namer.file_stem(&mut rng), t.extension));
            // Resolve name collisions deterministically.
            while used.contains_key(&path) {
                path = dir.join(format!("{}.{}", namer.file_stem(&mut rng), t.extension));
            }
            used.insert(path.clone(), ());
            let size = t.sample_size(&mut rng);
            let data = t.generator.generate(&mut rng, size);
            let read_only = rng.gen_bool(spec.read_only_fraction);
            files.push(CorpusFile {
                path,
                data,
                read_only,
                extension: t.extension.clone(),
                decoy: false,
            });
        }
        Corpus {
            root: spec.root.clone(),
            files,
            dirs,
        }
    }

    /// Stages the corpus into a filesystem via unfiltered admin writes
    /// (the experimental setup phase — no monitored process is involved).
    ///
    /// # Errors
    ///
    /// Propagates [`cryptodrop_vfs::VfsError`] if staging collides with
    /// existing content.
    pub fn stage_into(&self, fs: &mut Vfs) -> VfsResult<()> {
        for dir in &self.dirs {
            fs.admin().create_dir_all(dir)?;
        }
        for f in &self.files {
            fs.admin().write_file(&f.path, &f.data)?;
            if f.read_only {
                fs.admin().set_read_only(&f.path, true)?;
            }
        }
        Ok(())
    }

    /// A copy of this corpus without files smaller than `min_size` bytes —
    /// the paper's §V-C ablation ("we reran one of these samples with a
    /// corpus missing all of the files with sizes < 512B").
    pub fn without_small_files(&self, min_size: usize) -> Corpus {
        Corpus {
            root: self.root.clone(),
            files: self
                .files
                .iter()
                .filter(|f| f.data.len() >= min_size)
                .cloned()
                .collect(),
            dirs: self.dirs.clone(),
        }
    }

    /// A copy of this corpus with `count` decoy (bait) files woven in.
    ///
    /// Decoys look like real user documents — bait stems ("passwords",
    /// "tax_return", ...) with content from the spec's own type mix, so
    /// their magic numbers and entropy profiles are indistinguishable
    /// from the surrounding corpus — and half of them carry a leading
    /// underscore so an in-order directory walker meets bait before real
    /// documents. Deterministic per spec seed; the real files are
    /// untouched, so detector behavior on them is unchanged. Register
    /// the woven paths with the engine via
    /// [`decoy_paths`](Self::decoy_paths) (e.g.
    /// `SessionBuilder::decoys`).
    pub fn with_decoys(&self, spec: &CorpusSpec, count: usize) -> Corpus {
        /// Stems no legitimate workflow would modify but every
        /// data-hungry attacker wants.
        const DECOY_STEMS: &[&str] = &[
            "passwords",
            "backup_codes",
            "bank_statements",
            "tax_return_final",
            "bitcoin_wallet",
            "recovery_keys",
            "payroll_2016",
            "insurance_scans",
            "accounts",
            "family_records",
        ];
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xDEC0_17BA_17F1_1E55);
        let mut files = self.files.clone();
        let mut used: BTreeMap<VPath, ()> =
            files.iter().map(|f| (f.path.clone(), ())).collect();
        // Bait placement follows the attacker, not the user: a quarter of
        // the decoys sit in the traversal root (hit first by pre-order and
        // breadth-first walkers), a quarter in the deepest directory (hit
        // first by deepest-first walkers), and the rest are scattered so
        // shuffled and size-ordered sweeps meet bait mid-run too.
        let deepest = self
            .dirs
            .iter()
            .max_by_key(|d| (d.depth(), std::cmp::Reverse(d.as_str())))
            .unwrap_or(&self.root);
        for i in 0..count {
            let t = spec.pick_type(&mut rng);
            let dir = match i % 4 {
                0 => &self.root,
                1 => deepest,
                _ => &self.dirs[rng.gen_range(0..self.dirs.len())],
            };
            let stem = DECOY_STEMS[i % DECOY_STEMS.len()];
            // Half the decoys sort to the front of their directory.
            let name = if i % 2 == 0 {
                format!("_{stem}.{}", t.extension)
            } else {
                format!("{stem}.{}", t.extension)
            };
            let mut path = dir.join(&name);
            let mut bump = 0u32;
            while used.contains_key(&path) {
                bump += 1;
                path = dir.join(format!("{stem}_{bump}.{}", t.extension));
            }
            used.insert(path.clone(), ());
            let size = t.sample_size(&mut rng);
            let data = t.generator.generate(&mut rng, size);
            files.push(CorpusFile {
                path,
                data,
                read_only: false,
                extension: t.extension.clone(),
                decoy: true,
            });
        }
        Corpus {
            root: self.root.clone(),
            files,
            dirs: self.dirs.clone(),
        }
    }

    /// The paths of the woven decoy files (empty unless
    /// [`with_decoys`](Self::with_decoys) was used).
    pub fn decoy_paths(&self) -> impl Iterator<Item = &VPath> {
        self.files.iter().filter(|f| f.decoy).map(|f| &f.path)
    }

    /// Number of decoy files.
    pub fn decoy_count(&self) -> usize {
        self.files.iter().filter(|f| f.decoy).count()
    }

    /// Number of real (non-decoy) files — the denominator for
    /// files-lost metrics, which must never count sacrificial bait.
    pub fn real_file_count(&self) -> usize {
        self.files.len() - self.decoy_count()
    }

    /// The corpus root (the protected documents directory).
    pub fn root(&self) -> &VPath {
        &self.root
    }

    /// The generated files.
    pub fn files(&self) -> &[CorpusFile] {
        &self.files
    }

    /// The generated directories (including the root).
    pub fn dirs(&self) -> &[VPath] {
        &self.dirs
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of directories, including the root.
    pub fn dir_count(&self) -> usize {
        self.dirs.len()
    }

    /// Total content bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.data.len() as u64).sum()
    }

    /// The number of files smaller than `size` bytes.
    pub fn files_smaller_than(&self, size: usize) -> usize {
        self.files.iter().filter(|f| f.data.len() < size).count()
    }

    /// Counts files per extension.
    pub fn extension_histogram(&self) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for f in &self.files {
            *h.entry(f.extension.clone()).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_sniff::{sniff, FileType};

    fn small() -> Corpus {
        Corpus::generate(&CorpusSpec::sized(200, 25))
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::sized(50, 8);
        assert_eq!(Corpus::generate(&spec), Corpus::generate(&spec));
    }

    #[test]
    fn different_seed_differs() {
        let a = CorpusSpec::sized(50, 8);
        let mut b = a.clone();
        b.seed ^= 1;
        assert_ne!(Corpus::generate(&a), Corpus::generate(&b));
    }

    #[test]
    fn counts_match_spec() {
        let c = small();
        assert_eq!(c.file_count(), 200);
        assert_eq!(c.dir_count(), 25);
        assert!(c.total_bytes() > 0);
    }

    #[test]
    fn unique_paths_under_root() {
        let c = small();
        let set: std::collections::HashSet<_> = c.files().iter().map(|f| &f.path).collect();
        assert_eq!(set.len(), c.file_count());
        assert!(c.files().iter().all(|f| f.path.starts_with(c.root())));
    }

    #[test]
    fn staging_round_trip() {
        let c = small();
        let mut fs = Vfs::new();
        c.stage_into(&mut fs).unwrap();
        assert_eq!(fs.file_count(), c.file_count());
        for f in c.files().iter().take(20) {
            assert_eq!(fs.admin().read_file(&f.path).unwrap(), f.data);
            assert_eq!(fs.admin().metadata(&f.path).unwrap().read_only, f.read_only);
        }
    }

    #[test]
    fn some_files_are_read_only() {
        let c = Corpus::generate(&CorpusSpec::sized(1000, 50));
        let ro = c.files().iter().filter(|f| f.read_only).count();
        assert!(ro > 5 && ro < 60, "read-only count {ro}");
    }

    #[test]
    fn small_file_population_exists() {
        let c = Corpus::generate(&CorpusSpec::sized(2000, 100));
        let tiny = c.files_smaller_than(512);
        assert!(tiny > 3, "expected a sub-512B population, got {tiny}");
        let filtered = c.without_small_files(512);
        assert_eq!(filtered.files_smaller_than(512), 0);
        assert_eq!(filtered.file_count(), c.file_count() - tiny);
        assert_eq!(filtered.dir_count(), c.dir_count());
    }

    #[test]
    fn contents_sniff_as_declared_types() {
        let c = small();
        for f in c.files() {
            let t = sniff(&f.data);
            let ok = match f.extension.as_str() {
                "pdf" => t == FileType::Pdf,
                "docx" => t == FileType::Docx,
                "xlsx" => t == FileType::Xlsx,
                "pptx" => t == FileType::Pptx,
                "odt" => t == FileType::Odt,
                "doc" => t == FileType::OleCompound,
                "rtf" => t == FileType::Rtf,
                "jpg" => t == FileType::Jpeg,
                "png" => t == FileType::Png,
                "gif" => t == FileType::Gif,
                "bmp" => t == FileType::Bmp,
                "mp3" => t == FileType::Mp3,
                "wav" => t == FileType::Wav,
                "zip" => t == FileType::Zip,
                "gz" => t == FileType::Gzip,
                "html" => t == FileType::Html,
                "xml" => t == FileType::Xml,
                "json" => t == FileType::Json,
                "csv" => t == FileType::Csv,
                "txt" | "md" | "log" => t == FileType::Utf8Text,
                other => panic!("unexpected extension {other}"),
            };
            assert!(ok, "{} sniffed as {t:?}", f.path);
        }
    }

    #[test]
    fn decoy_weaving_is_additive_and_deterministic() {
        let spec = CorpusSpec::sized(200, 25);
        let base = Corpus::generate(&spec);
        let baited = base.with_decoys(&spec, 12);
        // Additive: the real document set is byte-identical.
        assert_eq!(base.decoy_count(), 0);
        assert_eq!(baited.decoy_count(), 12);
        assert_eq!(baited.real_file_count(), base.file_count());
        assert_eq!(baited.file_count(), base.file_count() + 12);
        assert_eq!(&baited.files()[..base.file_count()], base.files());
        // Deterministic per seed.
        assert_eq!(baited, base.with_decoys(&spec, 12));
        // Unique paths under the root, realistic extensions from the mix.
        let set: std::collections::HashSet<_> =
            baited.files().iter().map(|f| &f.path).collect();
        assert_eq!(set.len(), baited.file_count());
        for p in baited.decoy_paths() {
            assert!(p.starts_with(baited.root()));
        }
        // Decoy content sniffs as its declared type, like any real file.
        for f in baited.files().iter().filter(|f| f.decoy) {
            assert_ne!(sniff(&f.data), FileType::Data, "{}", f.path);
        }
    }

    #[test]
    fn decoys_stage_like_real_files() {
        let spec = CorpusSpec::sized(100, 10);
        let baited = Corpus::generate(&spec).with_decoys(&spec, 6);
        let mut fs = Vfs::new();
        baited.stage_into(&mut fs).unwrap();
        assert_eq!(fs.file_count(), 106);
        for p in baited.decoy_paths() {
            assert!(fs.admin().metadata(p).is_ok());
        }
    }

    #[test]
    fn extension_histogram_sums_to_total() {
        let c = small();
        let h = c.extension_histogram();
        let sum: usize = h.values().sum();
        assert_eq!(sum, c.file_count());
        assert!(h.contains_key("pdf"));
    }
}
