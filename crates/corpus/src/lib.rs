//! Synthetic user-document corpus generation.
//!
//! The paper's evaluation (§V-A) runs every ransomware sample against a
//! corpus of **5,099 files spread over a nested tree of 511 directories**,
//! assembled from the Govdocs1 threads, an OOXML document set, the OPF
//! format corpus, and the Coldwell audio files, proportioned to match
//! measured user document directories. Those corpora cannot be shipped
//! here, so this crate generates an *indicator-faithful* synthetic
//! equivalent (see DESIGN.md §1 for the substitution argument):
//!
//! * every file carries correct **magic numbers** for its declared type,
//! * every format matches its real-world **entropy profile** (English text
//!   ≈ 4.2 bits/byte, OOXML/JPEG/MP3 ≈ 7.8–7.95, PDF a 6.5–7.4 mixture,
//!   BMP/WAV mid-range),
//! * a deliberate **sub-512-byte population** of text files exists, the
//!   population whose missing sdhash digests drive the paper's §V-C
//!   CTB-Locker analysis,
//! * a small fraction of files is **read-only**, reproducing the §V-C
//!   GPcode observation.
//!
//! Generation is deterministic per [`CorpusSpec`]: experiments are
//! reproducible, and a single generated [`Corpus`] template is staged into
//! a fresh [`Vfs`](cryptodrop_vfs::Vfs) per sample run.
//!
//! # Examples
//!
//! ```
//! use cryptodrop_corpus::{Corpus, CorpusSpec};
//!
//! // The paper-scale corpus (5,099 files / 511 dirs) — or a smaller one:
//! let corpus = Corpus::generate(&CorpusSpec::sized(250, 30));
//! assert_eq!(corpus.file_count(), 250);
//! assert!(corpus.total_bytes() > 1_000_000);
//! // The §V-C sub-512B tail exists at paper scale (~25-30 of 5,099 files).
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
pub mod english;
pub mod gen;
pub mod spec;
pub mod tree;

pub use corpus::{Corpus, CorpusFile};
pub use spec::{CorpusSpec, GeneratorKind, TypeSpec};
