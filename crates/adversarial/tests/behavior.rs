//! Behavioural pins for the evasive strategies and the heavy-writers:
//! each strategy must actually starve the indicator it claims to starve,
//! and each heavy-writer must finish unsuspended at default thresholds.

use cryptodrop::{Config, CryptoDrop, ScoreConfig, Session};
use cryptodrop_adversarial::{
    evasive_suite, heavy_writer_suite, Collusion, LowEntropyEncoder, PartialEncryptor, SlowRoll,
};
use cryptodrop_corpus::{Corpus, CorpusSpec};
use cryptodrop_vfs::{Vfs, Workload, WorkloadCtx, WorkloadOutcome};

struct Run {
    detected: bool,
    max_score: u32,
    union: bool,
    outcome: WorkloadOutcome,
    clock_end: u64,
}

fn run(corpus: &Corpus, config: &Config, workload: &dyn Workload, seed: u64) -> Run {
    let mut fs = Vfs::new();
    corpus.stage_into(&mut fs).expect("fresh filesystem");
    let session: Session = CryptoDrop::builder()
        .config(config.clone())
        .build()
        .expect("valid config");
    session.attach(&mut fs);
    let ctx = WorkloadCtx::spawn(&mut fs, workload, corpus.root(), seed);
    workload.stage(&mut fs, &ctx).expect("staging succeeds");
    let outcome = workload.drive(&mut fs, &ctx);
    session.drain();
    let mut r = Run {
        detected: false,
        max_score: 0,
        union: false,
        outcome,
        clock_end: fs.clock_handle().now_nanos(),
    };
    for &pid in &ctx.pids {
        r.detected |= fs.is_suspended(pid);
        if let Some(s) = session.summary(pid) {
            r.max_score = r.max_score.max(s.score);
            r.union |= s.union_triggered;
        }
    }
    r
}

fn corpus() -> Corpus {
    Corpus::generate(&CorpusSpec::sized(240, 40))
}

fn default_config(c: &Corpus) -> Config {
    Config::protecting(c.root().as_str())
}

#[test]
fn partial_encryptor_denies_the_union_indication() {
    let c = corpus();
    let r = run(&c, &default_config(&c), &PartialEncryptor::default(), 11);
    // Still detected — but only through the non-union threshold, so it
    // buys extra victims compared to a full Class A overwrite.
    assert!(r.detected, "score {}", r.max_score);
    assert!(
        !r.union,
        "surviving file tails must keep similarity matching"
    );
}

#[test]
fn slow_roll_spends_hours_of_simulated_clock() {
    let c = corpus();
    let strategy = SlowRoll {
        pause_nanos: 90_000_000_000,
        max_files: None,
    };
    let r = run(&c, &default_config(&c), &strategy, 12);
    assert!(r.detected, "pausing does not shed accumulated score");
    let touched = r.outcome.files_touched as u64 + r.outcome.read_only_skipped as u64;
    assert!(
        r.clock_end >= touched * 90_000_000_000,
        "clock {} ns after {touched} files",
        r.clock_end
    );
}

#[test]
fn collusion_starves_the_writer_entropy_baseline() {
    let c = corpus();
    let cfg = default_config(&c);
    let split = run(&c, &cfg, &Collusion::default(), 13);
    // The writer never reads, so union indication (which needs the
    // entropy primary) is impossible; detection only happens through the
    // slower non-union path.
    assert!(!split.union, "write-only pid has no entropy baseline");
    let solo = run(&c, &cfg, &Collusion { max_files: None, colluding: false }, 13);
    assert!(solo.detected && split.detected);
    assert!(
        split.outcome.files_touched > solo.outcome.files_touched,
        "split {} vs solo {} files lost",
        split.outcome.files_touched,
        solo.outcome.files_touched
    );
}

#[test]
fn bounded_collusion_completes_undetected() {
    let c = corpus();
    let cfg = default_config(&c);
    let split = run(&c, &cfg, &Collusion::bounded(12), 14);
    assert!(!split.detected, "score {}", split.max_score);
    assert!(split.outcome.completed);
    assert_eq!(split.outcome.files_touched, 12);
    let solo = run(&c, &cfg, &Collusion::solo(12), 14);
    assert!(
        solo.detected,
        "control arm: same 12-file plan under one pid must be caught (score {})",
        solo.max_score
    );
}

#[test]
fn low_entropy_encoder_never_trips_the_entropy_indicator() {
    let c = corpus();
    // Remove the entropy indicator's points entirely: if the strategy
    // works, the score is identical with and without them.
    let cfg = default_config(&c);
    let without = Config {
        score: ScoreConfig {
            points_entropy_delta: 0,
            ..cfg.score.clone()
        },
        ..cfg.clone()
    };
    let armored = run(&c, &cfg, &LowEntropyEncoder::default(), 15);
    let armored_no_entropy = run(&c, &without, &LowEntropyEncoder::default(), 15);
    assert_eq!(
        armored.max_score, armored_no_entropy.max_score,
        "hex armor must make the entropy indicator worthless"
    );
    assert!(!armored.union);
}

#[test]
fn evasive_suite_has_four_distinctly_named_strategies() {
    let suite = evasive_suite();
    assert_eq!(suite.len(), 4);
    let names: std::collections::BTreeSet<String> =
        suite.iter().map(|w| w.name()).collect();
    assert_eq!(names.len(), 4);
    for w in &suite {
        assert!(!w.pid_plan().is_empty());
    }
}

#[test]
fn heavy_writers_finish_unsuspended_at_default_thresholds() {
    let c = corpus();
    let cfg = default_config(&c);
    for (i, w) in heavy_writer_suite().iter().enumerate() {
        let r = run(&c, &cfg, w.as_ref(), 0x4EA0 + i as u64);
        assert!(
            !r.detected,
            "{} suspended with score {}",
            w.name(),
            r.max_score
        );
        assert!(r.outcome.completed, "{} did not finish", w.name());
        assert!(r.outcome.files_touched > 0, "{} did nothing", w.name());
    }
}
