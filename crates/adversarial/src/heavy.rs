//! Benign heavy-writers: honest applications whose I/O profile brushes
//! against one CryptoDrop indicator each.
//!
//! The Figure 6 applications exercise ordinary desktop behaviour; these
//! four stress the *worst plausible* benign cases — whole-tree readers,
//! bulk high-entropy writers, in-place rewriters, and delete-and-rename
//! churners — and the adversarial study asserts all of them finish with
//! zero suspensions at the default thresholds.

use cryptodrop_benign::compress;
use cryptodrop_benign::helpers::{find_files, overwrite_in_place, read_whole, write_new};
use cryptodrop_vfs::{
    OpenOptions, VfsError, VPath, Workload, WorkloadCtx, WorkloadOutcome,
};

/// I/O chunk size shared by the heavy-writers.
const CHUNK: usize = 16 * 1024;

/// Maps any error to a finished-early outcome, flagging suspension.
fn fold_err(out: &mut WorkloadOutcome, e: &VfsError) {
    if matches!(e, VfsError::ProcessSuspended(_)) {
        out.suspended = true;
    }
}

/// A nightly backup tool: reads every file under the protected tree and
/// mirrors it into an archive directory *outside* the tree.
///
/// From the filter's perspective this process only ever reads protected
/// data — the heaviest possible funneling pressure (every file type read,
/// none written) with nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupMirror {
    /// Where the mirror lands (outside the protected tree).
    pub archive_root: VPath,
    /// At most this many files are mirrored.
    pub limit: usize,
}

impl Default for BackupMirror {
    fn default() -> Self {
        Self {
            archive_root: VPath::new("/Backups/nightly"),
            limit: 500,
        }
    }
}

impl Workload for BackupMirror {
    fn name(&self) -> String {
        "backup-mirror".into()
    }

    fn pid_plan(&self) -> Vec<String> {
        vec!["backup-mirror.exe".into()]
    }

    fn drive(&self, fs: &mut cryptodrop_vfs::Vfs, ctx: &WorkloadCtx) -> WorkloadOutcome {
        let pid = ctx.pid();
        let mut out = WorkloadOutcome::default();
        let files = match find_files(fs, pid, &ctx.root, None, self.limit) {
            Ok(f) => f,
            Err(e) => {
                fold_err(&mut out, &e);
                return out;
            }
        };
        for path in &files {
            let rel = path
                .strip_prefix(&ctx.root)
                .unwrap_or(path.as_str())
                .to_string();
            let dest = self.archive_root.join(&rel);
            let result = read_whole(fs, pid, path, CHUNK)
                .and_then(|data| write_new(fs, pid, &dest, &data, CHUNK));
            match result {
                Ok(()) => {
                    out.files_touched += 1;
                    out.artifacts_written += 1;
                }
                Err(e) => {
                    fold_err(&mut out, &e);
                    if out.suspended {
                        return out;
                    }
                }
            }
        }
        out.completed = true;
        out
    }
}

/// A `logrotate`-style nightly compression job: compresses documents into
/// sibling `.gz` files, keeps the originals, and stops at a per-run byte
/// budget.
///
/// This is the paper's 7-zip case pushed harder — disparate reads and
/// high-entropy writes *inside* the protected tree — but no original is
/// ever modified or deleted, so similarity and type change never fire on
/// user data. The byte budget is what makes the job *plausibly* benign:
/// every entropy-delta award is a write of ciphertext-looking bytes, so a
/// compressor's score scales with bytes written, and an unbounded sweep
/// of the whole tree is exactly the §V-F 7-zip false positive the paper
/// concedes. A bounded nightly batch stays under the threshold by
/// construction, at any corpus scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressorSweep {
    /// At most this many files are compressed.
    pub limit: usize,
    /// Compressed output bytes written before the run stops.
    pub byte_budget: usize,
}

impl Default for CompressorSweep {
    fn default() -> Self {
        Self {
            limit: 24,
            byte_budget: 512 * 1024,
        }
    }
}

impl Workload for CompressorSweep {
    fn name(&self) -> String {
        "compressor-sweep".into()
    }

    fn pid_plan(&self) -> Vec<String> {
        vec!["compressor-sweep.exe".into()]
    }

    fn drive(&self, fs: &mut cryptodrop_vfs::Vfs, ctx: &WorkloadCtx) -> WorkloadOutcome {
        let pid = ctx.pid();
        let mut out = WorkloadOutcome::default();
        let files = match find_files(fs, pid, &ctx.root, None, self.limit) {
            Ok(f) => f,
            Err(e) => {
                fold_err(&mut out, &e);
                return out;
            }
        };
        let mut written = 0usize;
        for path in &files {
            if written >= self.byte_budget {
                break;
            }
            if path.extension().as_deref() == Some("gz") {
                continue;
            }
            let dest = path.with_appended_suffix(".gz");
            let result = read_whole(fs, pid, path, CHUNK).and_then(|data| {
                let packed = compress(&data);
                written += packed.len();
                write_new(fs, pid, &dest, &packed, CHUNK)
            });
            match result {
                Ok(()) => {
                    out.files_touched += 1;
                    out.artifacts_written += 1;
                }
                Err(e) => {
                    fold_err(&mut out, &e);
                    if out.suspended {
                        return out;
                    }
                }
            }
        }
        out.completed = true;
        out
    }
}

/// An updater applying small delta patches, in place, to its own install
/// tree under the protected root.
///
/// Real updaters patch program files they own, never the user's
/// documents — so [`stage`](Workload::stage) plants an application
/// directory of resource blobs inside the protected tree and
/// [`drive`](Workload::drive) rewrites each one with a short patched
/// window. Each rewrite preserves everything but that window: sniffed
/// type unchanged, similarity near-identical, entropy delta ~0. The
/// heaviest *in-place-write* workload that should still score zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareUpdater {
    /// Number of install-tree files staged and patched.
    pub limit: usize,
    /// Patch window size in bytes.
    pub window: usize,
}

impl Default for SoftwareUpdater {
    fn default() -> Self {
        Self {
            limit: 40,
            window: 32,
        }
    }
}

impl SoftwareUpdater {
    fn install_dir(&self, root: &VPath) -> VPath {
        root.join("apps/acme-suite")
    }

    fn asset(&self, dir: &VPath, i: usize) -> VPath {
        dir.join(format!("resource_{i:03}.dat"))
    }

    /// A deterministic pseudo-binary resource blob: mixed text headers
    /// and xorshifted payload, so reads/writes look like real program
    /// assets rather than constant filler.
    fn blob(&self, seed: u64, i: usize) -> Vec<u8> {
        let mut data = format!("ACME-RES v1.0 asset={i:03} build={seed:08x}\n").into_bytes();
        let mut x = seed ^ (0x9E37_79B9 + i as u64);
        let len = 6 * 1024 + (i % 7) * 4 * 1024;
        while data.len() < len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Keep the payload byte range printable-ish: moderate entropy,
            // nothing an entropy indicator would read as ciphertext.
            data.push(b' ' + (x % 64) as u8);
        }
        data
    }
}

impl Workload for SoftwareUpdater {
    fn name(&self) -> String {
        "software-updater".into()
    }

    fn pid_plan(&self) -> Vec<String> {
        vec!["software-updater.exe".into()]
    }

    fn stage(
        &self,
        fs: &mut cryptodrop_vfs::Vfs,
        ctx: &WorkloadCtx,
    ) -> cryptodrop_vfs::VfsResult<()> {
        let dir = self.install_dir(&ctx.root);
        for i in 0..self.limit {
            fs.admin()
                .write_file(&self.asset(&dir, i), &self.blob(ctx.seed, i))?;
        }
        Ok(())
    }

    fn drive(&self, fs: &mut cryptodrop_vfs::Vfs, ctx: &WorkloadCtx) -> WorkloadOutcome {
        let pid = ctx.pid();
        let mut out = WorkloadOutcome::default();
        let dir = self.install_dir(&ctx.root);
        let files: Vec<VPath> = (0..self.limit).map(|i| self.asset(&dir, i)).collect();
        for (i, path) in files.iter().enumerate() {
            let result = read_whole(fs, pid, path, CHUNK).and_then(|mut data| {
                if data.len() < self.window * 3 {
                    return Ok(()); // too small to carry a patch window
                }
                let offset = data.len() / 2;
                let stamp = format!("patch-{:08x}-{i:04}", ctx.seed as u32);
                for (dst, src) in data[offset..offset + self.window]
                    .iter_mut()
                    .zip(stamp.bytes().cycle())
                {
                    *dst = src;
                }
                overwrite_in_place(fs, pid, path, &data, CHUNK)
            });
            match result {
                Ok(()) => out.files_touched += 1,
                Err(e) => {
                    fold_err(&mut out, &e);
                    if out.suspended {
                        return out;
                    }
                }
            }
        }
        out.completed = true;
        out
    }
}

/// A log rotator living inside the protected tree: appends low-entropy
/// lines, then rotates `app.log → app.log.1 → …`, deleting the oldest
/// generation.
///
/// Deletion and rename churn on protected paths is exactly what the
/// deletion indicator watches; staying within the deletion allowance is
/// what keeps this honest workload at zero points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRotator {
    /// Rotated generations kept on disk (`app.log.1 ..`).
    pub keep: usize,
    /// Log lines appended before the rotation.
    pub appends: usize,
}

impl Default for LogRotator {
    fn default() -> Self {
        Self {
            keep: 3,
            appends: 40,
        }
    }
}

impl LogRotator {
    fn log_dir(&self, root: &VPath) -> VPath {
        root.join("logs")
    }

    fn generation(&self, dir: &VPath, n: usize) -> VPath {
        if n == 0 {
            dir.join("app.log")
        } else {
            dir.join(format!("app.log.{n}"))
        }
    }

    fn line(&self, seed: u64, n: usize) -> String {
        format!(
            "2016-02-29T12:{:02}:{:02}Z INFO  svc[{seed:04x}] request served in {} ms\n",
            n / 60 % 60,
            n % 60,
            (seed as usize + n * 7) % 90 + 3
        )
    }
}

impl Workload for LogRotator {
    fn name(&self) -> String {
        "log-rotator".into()
    }

    fn pid_plan(&self) -> Vec<String> {
        vec!["log-rotator.exe".into()]
    }

    fn stage(&self, fs: &mut cryptodrop_vfs::Vfs, ctx: &WorkloadCtx) -> cryptodrop_vfs::VfsResult<()> {
        let dir = self.log_dir(&ctx.root);
        for n in 0..=self.keep {
            let mut content = String::new();
            for i in 0..30 {
                content.push_str(&self.line(ctx.seed + n as u64, i));
            }
            fs.admin()
                .write_file(&self.generation(&dir, n), content.as_bytes())?;
        }
        Ok(())
    }

    fn drive(&self, fs: &mut cryptodrop_vfs::Vfs, ctx: &WorkloadCtx) -> WorkloadOutcome {
        let pid = ctx.pid();
        let dir = self.log_dir(&ctx.root);
        let active = self.generation(&dir, 0);
        let mut out = WorkloadOutcome::default();

        // Append a burst of lines to the active log.
        let append = (|| {
            let len = fs.metadata(pid, &active)?.len;
            let h = fs.open(pid, &active, OpenOptions::modify())?;
            let result = (|| {
                fs.seek(pid, h, len)?;
                for i in 0..self.appends {
                    fs.write(pid, h, self.line(ctx.seed, 1000 + i).as_bytes())?;
                }
                Ok(())
            })();
            let close = fs.close(pid, h);
            result?;
            close
        })();
        if let Err(e) = append {
            fold_err(&mut out, &e);
            if out.suspended {
                return out;
            }
        } else {
            out.files_touched += 1;
        }

        // Rotate: drop the oldest generation, shift the rest up, start a
        // fresh active log.
        let rotate = (|| {
            fs.delete(pid, &self.generation(&dir, self.keep))?;
            for n in (0..self.keep).rev() {
                fs.rename(
                    pid,
                    &self.generation(&dir, n),
                    &self.generation(&dir, n + 1),
                    false,
                )?;
            }
            write_new(fs, pid, &active, self.line(ctx.seed, 2000).as_bytes(), CHUNK)
        })();
        match rotate {
            Ok(()) => out.artifacts_written += 1,
            Err(e) => {
                fold_err(&mut out, &e);
                if out.suspended {
                    return out;
                }
            }
        }
        out.completed = true;
        out
    }
}
