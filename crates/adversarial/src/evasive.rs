//! Evasive attacker strategies: each starves one CryptoDrop indicator.
//!
//! Every strategy is a [`Workload`], so it runs through the same
//! process-attributed filesystem operations as the paper's sample set and
//! is scored by exactly the same filter. The interesting question per
//! strategy is *which* indicator it denies the detector and what that
//! costs in files lost before suspension (experiments study
//! `adversarial`, DESIGN.md §15).

use cryptodrop_benign::helpers::{overwrite_in_place, read_whole};
use cryptodrop_malware::cipher::{derive_key, ChaCha20, Cipher};
use cryptodrop_malware::{plan, TraversalOrder};
use cryptodrop_vfs::{
    OpenOptions, ProcessId, Vfs, VfsError, VfsResult, VPath, Workload, WorkloadCtx,
    WorkloadOutcome,
};

/// I/O chunk size shared by all strategies.
const CHUNK: usize = 16 * 1024;

/// Builds the deterministic per-run stream cipher every strategy uses.
/// ChaCha20 preserves length, so in-place overwrites need no truncation.
fn stream_cipher(seed: u64) -> ChaCha20 {
    ChaCha20::new(derive_key(seed), derive_key(seed ^ 0xAD5E_C0DE))
}

/// Clears the read-only attribute when it would block an in-place write,
/// like all but one of the paper's samples (§V-C).
fn ensure_writable(fs: &mut Vfs, pid: ProcessId, path: &VPath) -> VfsResult<()> {
    match fs.metadata(pid, path) {
        Ok(m) if m.read_only => fs.set_read_only(pid, path, false),
        Ok(_) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Walks the protected tree with the reader pid and returns the victim
/// paths, translating suspension into an outcome the caller can return.
fn victim_paths(
    fs: &mut Vfs,
    pid: ProcessId,
    root: &VPath,
    out: &mut WorkloadOutcome,
) -> Option<Vec<VPath>> {
    match plan(fs, pid, root, TraversalOrder::DepthFirstPreOrder, None) {
        Ok(targets) => Some(targets.into_iter().map(|t| t.path).collect()),
        Err(VfsError::ProcessSuspended(_)) => {
            out.suspended = true;
            None
        }
        Err(_) => Some(Vec::new()),
    }
}

/// LockBit-style partial encryption: only the first
/// [`head_bytes`](Self::head_bytes) of every file are overwritten with
/// ciphertext.
///
/// The magic bytes die (type change fires) and the head is high-entropy
/// (entropy delta fires), but the untouched tail keeps the similarity
/// indicator matching on all but the smallest files — so the union
/// indication never completes and the score must grind to the full
/// non-union threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialEncryptor {
    /// Bytes encrypted at the head of each victim (default 4 KiB).
    pub head_bytes: usize,
    /// Stop after this many files (`None` = the whole tree).
    pub max_files: Option<usize>,
}

impl Default for PartialEncryptor {
    fn default() -> Self {
        Self {
            head_bytes: 4096,
            max_files: None,
        }
    }
}

impl PartialEncryptor {
    fn hit(
        &self,
        fs: &mut Vfs,
        pid: ProcessId,
        path: &VPath,
        cipher: &dyn Cipher,
    ) -> VfsResult<()> {
        ensure_writable(fs, pid, path)?;
        // Never consume more than a quarter of the file, so the surviving
        // tail keeps sdhash similarity far above the match threshold.
        // Files under sdhash's 512-byte digest floor can be taken whole —
        // the similarity indicator abstains on them anyway.
        let len = fs.metadata(pid, path)?.len as usize;
        let take = if len < 512 {
            self.head_bytes
        } else {
            self.head_bytes.min(len / 4)
        };
        let h = fs.open(pid, path, OpenOptions::modify())?;
        let result = (|| {
            let head = fs.read(pid, h, take.max(1))?;
            if head.is_empty() {
                return Ok(());
            }
            fs.seek(pid, h, 0)?;
            fs.write(pid, h, &cipher.encrypt(&head)).map(|_| ())
        })();
        let close = fs.close(pid, h);
        result?;
        close
    }
}

impl Workload for PartialEncryptor {
    fn name(&self) -> String {
        format!("partial-encryptor (first {} KiB)", self.head_bytes / 1024)
    }

    fn pid_plan(&self) -> Vec<String> {
        vec!["partial-encryptor.exe".into()]
    }

    fn drive(&self, fs: &mut Vfs, ctx: &WorkloadCtx) -> WorkloadOutcome {
        let pid = ctx.pid();
        let cipher = stream_cipher(ctx.seed);
        let mut out = WorkloadOutcome::default();
        let Some(paths) = victim_paths(fs, pid, &ctx.root, &mut out) else {
            return out;
        };
        let limit = self.max_files.unwrap_or(usize::MAX);
        for path in paths.iter().take(limit) {
            match self.hit(fs, pid, path, &cipher) {
                Ok(()) => out.files_touched += 1,
                Err(VfsError::ProcessSuspended(_)) => {
                    out.suspended = true;
                    return out;
                }
                Err(_) => out.read_only_skipped += 1,
            }
        }
        out.completed = true;
        out
    }
}

/// Full in-place encryption spread over hours of simulated clock: the
/// strategy pauses [`pause_nanos`](Self::pause_nanos) between victims.
///
/// Under the default (permanent) scoreboard the reputation score is
/// cumulative and time-blind, so CryptoDrop's detection is unmoved — but
/// any defense reasoning about *rates* (bursts, I/O throttling budgets,
/// score decay policies) sees a process writing less than one file a
/// minute; the adversarial study's pause × decay-policy sweep measures
/// exactly what each policy trades away against this strategy. The pause
/// advances the shared [`ClockHandle`](cryptodrop_vfs::ClockHandle),
/// which is why the `Workload` context carries a typed clock instead of
/// raw nanos.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowRoll {
    /// Simulated pause between victims (default 90 s — an 800-file corpus
    /// stretches the attack over 20 hours).
    pub pause_nanos: u64,
    /// Stop after this many files (`None` = the whole tree).
    pub max_files: Option<usize>,
}

impl Default for SlowRoll {
    fn default() -> Self {
        Self {
            pause_nanos: 90_000_000_000,
            max_files: None,
        }
    }
}

impl Workload for SlowRoll {
    fn name(&self) -> String {
        format!("slow-roll ({} s/file)", self.pause_nanos / 1_000_000_000)
    }

    fn pid_plan(&self) -> Vec<String> {
        vec!["slow-roll.exe".into()]
    }

    fn drive(&self, fs: &mut Vfs, ctx: &WorkloadCtx) -> WorkloadOutcome {
        let pid = ctx.pid();
        let cipher = stream_cipher(ctx.seed);
        let mut out = WorkloadOutcome::default();
        let Some(paths) = victim_paths(fs, pid, &ctx.root, &mut out) else {
            return out;
        };
        let limit = self.max_files.unwrap_or(usize::MAX);
        for path in paths.iter().take(limit) {
            let result = ensure_writable(fs, pid, path)
                .and_then(|()| read_whole(fs, pid, path, CHUNK))
                .and_then(|data| overwrite_in_place(fs, pid, path, &cipher.encrypt(&data), CHUNK));
            match result {
                Ok(()) => out.files_touched += 1,
                Err(VfsError::ProcessSuspended(_)) => {
                    out.suspended = true;
                    return out;
                }
                Err(_) => out.read_only_skipped += 1,
            }
            ctx.clock.advance(self.pause_nanos);
        }
        out.completed = true;
        out
    }
}

/// Multi-process collusion: a reader pid and a writer pid split the
/// attack so neither accumulates a complete indicator set on its own.
///
/// The writer never reads, so its *per-process* entropy-delta tracker has
/// no read-side mean; the reader never writes, so it caps out at
/// funneling points. Per-process reputation was the paper's design choice
/// (§IV-B) and this strategy originally exploited it — until per-file
/// read baselines started following the file from the reader's family to
/// the writer's, restoring the entropy leg of the union
/// (`tests/adversarial.rs` pins the detection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collusion {
    /// Stop after this many files (`None` = the whole tree).
    pub max_files: Option<usize>,
    /// When `false`, the same plan runs under a single pid — the control
    /// arm showing the split is what defeats the union indication.
    pub colluding: bool,
}

impl Default for Collusion {
    fn default() -> Self {
        Self {
            max_files: None,
            colluding: true,
        }
    }
}

impl Collusion {
    /// A bounded colluding run: stops after `max_files` victims.
    pub fn bounded(max_files: usize) -> Self {
        Self {
            max_files: Some(max_files),
            ..Self::default()
        }
    }

    /// The single-process control arm with the same bound.
    pub fn solo(max_files: usize) -> Self {
        Self {
            max_files: Some(max_files),
            colluding: false,
        }
    }
}

impl Workload for Collusion {
    fn name(&self) -> String {
        if self.colluding {
            "collusion (reader pid + writer pid)".into()
        } else {
            "collusion control (single pid)".into()
        }
    }

    fn pid_plan(&self) -> Vec<String> {
        if self.colluding {
            vec!["collusion-reader.exe".into(), "collusion-writer.exe".into()]
        } else {
            vec!["collusion-solo.exe".into()]
        }
    }

    fn drive(&self, fs: &mut Vfs, ctx: &WorkloadCtx) -> WorkloadOutcome {
        let reader = ctx.pids[0];
        let writer = *ctx.pids.last().expect("pid plan is non-empty");
        let cipher = stream_cipher(ctx.seed);
        let mut out = WorkloadOutcome::default();
        let Some(paths) = victim_paths(fs, reader, &ctx.root, &mut out) else {
            return out;
        };
        let limit = self.max_files.unwrap_or(usize::MAX);
        for path in paths.iter().take(limit) {
            let result = read_whole(fs, reader, path, CHUNK).and_then(|data| {
                ensure_writable(fs, writer, path)?;
                overwrite_in_place(fs, writer, path, &cipher.encrypt(&data), CHUNK)
            });
            match result {
                Ok(()) => out.files_touched += 1,
                Err(VfsError::ProcessSuspended(_)) => {
                    out.suspended = true;
                    return out;
                }
                Err(_) => out.read_only_skipped += 1,
            }
        }
        out.completed = true;
        out
    }
}

/// Encrypt-then-encode: ciphertext leaves the process hex-armored at a
/// flat 4.0 bits/byte.
///
/// Most documents sit between 4 and 8 bits/byte, so the write-side
/// entropy mean lands *below* the read-side mean and the Δe ≥ 0.1 check
/// can never pass. Text victims even keep their sniffed type (hex is
/// printable ASCII); the detector is left with similarity and — for
/// binary victims — type changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LowEntropyEncoder {
    /// Stop after this many files (`None` = the whole tree).
    pub max_files: Option<usize>,
}

/// Hex-armors a buffer: doubles the length, caps entropy at 4 bits/byte.
fn hex_armor(data: &[u8]) -> Vec<u8> {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = Vec::with_capacity(data.len() * 2);
    for b in data {
        out.push(TABLE[(b >> 4) as usize]);
        out.push(TABLE[(b & 0xF) as usize]);
    }
    out
}

impl Workload for LowEntropyEncoder {
    fn name(&self) -> String {
        "low-entropy encoder (hex-armored)".into()
    }

    fn pid_plan(&self) -> Vec<String> {
        vec!["low-entropy-encoder.exe".into()]
    }

    fn drive(&self, fs: &mut Vfs, ctx: &WorkloadCtx) -> WorkloadOutcome {
        let pid = ctx.pid();
        let cipher = stream_cipher(ctx.seed);
        let mut out = WorkloadOutcome::default();
        let Some(paths) = victim_paths(fs, pid, &ctx.root, &mut out) else {
            return out;
        };
        let limit = self.max_files.unwrap_or(usize::MAX);
        for path in paths.iter().take(limit) {
            let result = ensure_writable(fs, pid, path)
                .and_then(|()| read_whole(fs, pid, path, CHUNK))
                .and_then(|data| {
                    overwrite_in_place(fs, pid, path, &hex_armor(&cipher.encrypt(&data)), CHUNK)
                });
            match result {
                Ok(()) => out.files_touched += 1,
                Err(VfsError::ProcessSuspended(_)) => {
                    out.suspended = true;
                    return out;
                }
                Err(_) => out.read_only_skipped += 1,
            }
        }
        out.completed = true;
        out
    }
}
