//! Adversarial workloads for the CryptoDrop reproduction.
//!
//! The paper evaluates CryptoDrop against ransomware that behaves like
//! ransomware: it reads documents, writes ciphertext, and destroys the
//! originals as fast as it can. This crate asks the follow-up question an
//! attacker would ask — *which indicator can I starve?* — and the question
//! a deployment would ask — *which honest application looks worst?* Both
//! sides are expressed as [`Workload`](cryptodrop_vfs::Workload)
//! implementations, so the experiments runner, the fleet tenants, and the
//! deception study drive them exactly like the 492 paper samples and the
//! Figure 6 applications.
//!
//! # Evasive strategies ([`evasive`])
//!
//! * [`PartialEncryptor`] — LockBit-style first-N-KiB encryption. The
//!   tail of every file survives, so the similarity indicator keeps
//!   matching and the union indication never completes.
//! * [`SlowRoll`] — full encryption spread over hours of simulated
//!   clock, pausing between victims. Score accumulation is time-blind,
//!   but rate- or window-based defenses are not.
//! * [`Collusion`] — a reader process and a writer process split the
//!   attack. The writer never reads and the reader never writes, so
//!   neither accumulates a complete indicator set on its own; per-file
//!   read-baseline inheritance is the engine defense that rejoins the
//!   split evidence.
//! * [`LowEntropyEncoder`] — encrypt-then-hex-armor. Ciphertext leaves
//!   the process at 4.0 bits/byte, below most document entropies, so the
//!   entropy-delta indicator never fires.
//!
//! # Benign heavy-writers ([`heavy`])
//!
//! * [`BackupMirror`] — reads the whole protected tree, archives it
//!   outside the tree (reads-only from the filter's perspective).
//! * [`CompressorSweep`] — `gzip -k`-style sweep writing high-entropy
//!   siblings next to the originals, which it keeps.
//! * [`SoftwareUpdater`] — in-place delta patches: high similarity, no
//!   type change, near-zero entropy delta.
//! * [`LogRotator`] — low-entropy appends plus a rotation that renames
//!   and deletes within the deletion allowance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evasive;
pub mod heavy;

pub use evasive::{Collusion, LowEntropyEncoder, PartialEncryptor, SlowRoll};
pub use heavy::{BackupMirror, CompressorSweep, LogRotator, SoftwareUpdater};

use cryptodrop_vfs::Workload;

/// The four evasive strategies at their report-stable default settings.
pub fn evasive_suite() -> Vec<Box<dyn Workload + Send + Sync>> {
    vec![
        Box::new(PartialEncryptor::default()),
        Box::new(SlowRoll::default()),
        Box::new(Collusion::default()),
        Box::new(LowEntropyEncoder::default()),
    ]
}

/// The four benign heavy-writer stress workloads at their defaults.
pub fn heavy_writer_suite() -> Vec<Box<dyn Workload + Send + Sync>> {
    vec![
        Box::new(BackupMirror::default()),
        Box::new(CompressorSweep::default()),
        Box::new(SoftwareUpdater::default()),
        Box::new(LogRotator::default()),
    ]
}
