//! Property-based tests for the sniffer.

use cryptodrop_sniff::{sniff, FileType};
use proptest::prelude::*;

/// A deterministic keystream for "encrypting" buffers in tests.
fn keystream(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 24) as u8
        })
        .collect()
}

proptest! {
    /// Sniffing never panics on arbitrary input.
    #[test]
    fn total_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let _ = sniff(&data);
    }

    /// Sniffing is deterministic.
    #[test]
    fn deterministic(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(sniff(&data), sniff(&data));
    }

    /// Stream-encrypting any file with a recognized *structured* type
    /// (magic-number formats) almost surely changes its sniffed type —
    /// the heart of the file-type-change indicator. We assert the weaker,
    /// always-true form: the ciphertext never keeps a structured magic type
    /// unless the keystream happens to preserve the magic bytes, which the
    /// filter below excludes.
    #[test]
    fn encryption_destroys_magic(seed in 1u64.., body in proptest::collection::vec(any::<u8>(), 16..2048)) {
        let mut pdf = b"%PDF-1.5\n".to_vec();
        pdf.extend_from_slice(&body);
        prop_assert_eq!(sniff(&pdf), FileType::Pdf);
        let ks = keystream(pdf.len(), seed);
        let ct: Vec<u8> = pdf.iter().zip(&ks).map(|(b, k)| b ^ k).collect();
        // Exclude the (astronomically unlikely, but possible for tiny
        // keystream coincidences) case of a preserved prefix.
        prop_assume!(&ct[..5] != b"%PDF-");
        prop_assert_ne!(sniff(&ct), FileType::Pdf);
    }

    /// ASCII alphanumeric prose (no structure) classifies as a text type,
    /// never as binary data.
    #[test]
    fn printable_ascii_is_text(words in proptest::collection::vec("[a-z]{1,10}", 1..64)) {
        let text = words.join(" ");
        let t = sniff(text.as_bytes());
        prop_assert!(
            matches!(t, FileType::Utf8Text | FileType::Base64Text),
            "got {t:?} for {text:?}"
        );
    }

    /// Prefixing a valid magic signature always yields that signature's
    /// type family (ZIP may refine into a document type, never anything
    /// else).
    #[test]
    fn magic_prefix_wins(tail in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut png = vec![0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A];
        png.extend_from_slice(&tail);
        prop_assert_eq!(sniff(&png), FileType::Png);

        let mut zip = vec![b'P', b'K', 0x03, 0x04];
        zip.extend_from_slice(&tail);
        let t = sniff(&zip);
        prop_assert!(
            matches!(
                t,
                FileType::Zip
                    | FileType::Docx
                    | FileType::Xlsx
                    | FileType::Pptx
                    | FileType::Odt
                    | FileType::Ods
                    | FileType::Odp
            ),
            "zip container refined to {t:?}"
        );
    }
}
