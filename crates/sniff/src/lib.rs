//! Content-based file-type identification (a `libmagic` analogue).
//!
//! CryptoDrop's first primary indicator, *file type changes* (paper §III-A),
//! tracks a file's type "both before and after a file is written" using the
//! `file` utility's magic-number approach. This crate reimplements the
//! relevant slice of that capability:
//!
//! * a [`magic`] signature database covering the formats that dominate user
//!   document directories (office documents, images, audio, archives,
//!   executables),
//! * ZIP-container introspection to distinguish `.docx`/`.xlsx`/`.pptx` and
//!   OpenDocument files from plain archives,
//! * [`text`] heuristics for encodings and structured text (HTML, XML,
//!   JSON, CSV, base64),
//! * a `data` fallback for unrecognized bytes — which is where encrypted
//!   content lands, making the *type change to `Data`* signal that the
//!   indicator keys on.
//!
//! # Examples
//!
//! ```
//! use cryptodrop_sniff::{sniff, FileType};
//!
//! assert_eq!(sniff(b"%PDF-1.5 ..."), FileType::Pdf);
//! assert_eq!(sniff(b"plain notes\n"), FileType::Utf8Text);
//! // Ciphertext has no recognizable structure:
//! let ciphertext = [0x9f, 0x02, 0xe1, 0x77, 0x5b, 0xc8, 0x01, 0xfe];
//! assert_eq!(sniff(&ciphertext), FileType::Data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod magic;
pub mod text;
pub mod types;

pub use magic::{match_magic, Signature, SIGNATURES};
pub use text::classify_text;
pub use types::{FileCategory, FileType};

/// Identifies the type of `bytes` from content alone.
///
/// Binary magic signatures are consulted first, then text heuristics;
/// unrecognized content is classified as [`FileType::Data`] and empty input
/// as [`FileType::Empty`].
pub fn sniff(bytes: &[u8]) -> FileType {
    match match_magic(bytes) {
        Some(t) => t,
        None => classify_text(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_order_binary_before_text() {
        // "%PDF-" is printable text, but the magic signature must win.
        assert_eq!(sniff(b"%PDF-1.4\n%plain looking"), FileType::Pdf);
        // RTF too.
        assert_eq!(sniff(b"{\\rtf1 hello}"), FileType::Rtf);
    }

    #[test]
    fn empty_input() {
        assert_eq!(sniff(b""), FileType::Empty);
    }

    #[test]
    fn type_change_scenario_encryption() {
        // The core indicator scenario: a recognizable document becomes
        // unrecognizable after "encryption" (here, a byte inversion that
        // destroys the magic bytes).
        let original = b"%PDF-1.5 content of a pdf".to_vec();
        let encrypted: Vec<u8> = original.iter().map(|b| !b).collect();
        assert_eq!(sniff(&original), FileType::Pdf);
        assert_eq!(sniff(&encrypted), FileType::Data);
    }
}
