//! The file-type taxonomy.

use serde::{Deserialize, Serialize};

/// A broad category of file content, used by the corpus model and by the
/// file-type-funneling indicator's coarse statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FileCategory {
    /// Word-processing and page-layout documents.
    Document,
    /// Spreadsheets.
    Spreadsheet,
    /// Slide decks.
    Presentation,
    /// Raster images.
    Image,
    /// Audio files.
    Audio,
    /// Video containers.
    Video,
    /// Compressed archives.
    Archive,
    /// Executables and libraries.
    Executable,
    /// Plain and structured text.
    Text,
    /// Databases.
    Database,
    /// Anything else, including unrecognized binary data.
    Other,
}

/// The file type as determined from content ("magic numbers"), analogous to
/// the `file` utility's classification the paper uses for its file-type
/// indicator (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FileType {
    // Documents
    /// Adobe PDF.
    Pdf,
    /// Microsoft Word 2007+ (OOXML).
    Docx,
    /// Microsoft Excel 2007+ (OOXML).
    Xlsx,
    /// Microsoft PowerPoint 2007+ (OOXML).
    Pptx,
    /// OpenDocument Text.
    Odt,
    /// OpenDocument Spreadsheet.
    Ods,
    /// OpenDocument Presentation.
    Odp,
    /// Legacy Microsoft Office (OLE Compound File: .doc/.xls/.ppt).
    OleCompound,
    /// Rich Text Format.
    Rtf,
    // Images
    /// JPEG image.
    Jpeg,
    /// PNG image.
    Png,
    /// GIF image.
    Gif,
    /// Windows bitmap.
    Bmp,
    /// TIFF image.
    Tiff,
    /// Windows icon.
    Ico,
    /// WebP image.
    WebP,
    // Audio / video
    /// MP3 audio.
    Mp3,
    /// RIFF/WAVE audio.
    Wav,
    /// Ogg container.
    Ogg,
    /// FLAC audio.
    Flac,
    /// Standard MIDI.
    Midi,
    /// MP4 container.
    Mp4,
    /// RIFF/AVI video.
    Avi,
    // Archives
    /// ZIP archive (not recognized as an OOXML/ODF container).
    Zip,
    /// gzip compressed data.
    Gzip,
    /// 7-Zip archive.
    SevenZip,
    /// RAR archive.
    Rar,
    // Executables
    /// Windows PE executable.
    Pe,
    /// ELF executable.
    Elf,
    /// Windows shortcut (.lnk).
    Lnk,
    // Databases
    /// SQLite 3 database.
    Sqlite,
    // Text family (content heuristics, no magic bytes)
    /// HTML document.
    Html,
    /// XML document.
    Xml,
    /// JSON data.
    Json,
    /// Comma-separated values.
    Csv,
    /// UTF-8 (or ASCII) text.
    Utf8Text,
    /// UTF-16 text (with byte-order mark).
    Utf16Text,
    /// Base64-encoded text.
    Base64Text,
    // Fallbacks
    /// Zero-length file.
    Empty,
    /// Unrecognized binary data — what `file` prints as "data". Encrypted
    /// content lands here.
    Data,
}

impl FileType {
    /// The broad category of this type.
    pub fn category(self) -> FileCategory {
        use FileCategory as C;
        use FileType as T;
        match self {
            T::Pdf | T::Docx | T::Odt | T::OleCompound | T::Rtf => C::Document,
            T::Xlsx | T::Ods => C::Spreadsheet,
            T::Pptx | T::Odp => C::Presentation,
            T::Jpeg | T::Png | T::Gif | T::Bmp | T::Tiff | T::Ico | T::WebP => C::Image,
            T::Mp3 | T::Wav | T::Ogg | T::Flac | T::Midi => C::Audio,
            T::Mp4 | T::Avi => C::Video,
            T::Zip | T::Gzip | T::SevenZip | T::Rar => C::Archive,
            T::Pe | T::Elf | T::Lnk => C::Executable,
            T::Sqlite => C::Database,
            T::Html | T::Xml | T::Json | T::Csv | T::Utf8Text | T::Utf16Text | T::Base64Text => {
                C::Text
            }
            T::Empty | T::Data => C::Other,
        }
    }

    /// A human-readable description in the style of the `file` utility.
    pub fn description(self) -> &'static str {
        use FileType as T;
        match self {
            T::Pdf => "PDF document",
            T::Docx => "Microsoft Word 2007+",
            T::Xlsx => "Microsoft Excel 2007+",
            T::Pptx => "Microsoft PowerPoint 2007+",
            T::Odt => "OpenDocument Text",
            T::Ods => "OpenDocument Spreadsheet",
            T::Odp => "OpenDocument Presentation",
            T::OleCompound => "Composite Document File V2 Document",
            T::Rtf => "Rich Text Format data",
            T::Jpeg => "JPEG image data",
            T::Png => "PNG image data",
            T::Gif => "GIF image data",
            T::Bmp => "PC bitmap",
            T::Tiff => "TIFF image data",
            T::Ico => "MS Windows icon resource",
            T::WebP => "RIFF (little-endian) data, Web/P image",
            T::Mp3 => "Audio file with ID3 / MPEG ADTS layer III",
            T::Wav => "RIFF (little-endian) data, WAVE audio",
            T::Ogg => "Ogg data",
            T::Flac => "FLAC audio bitstream data",
            T::Midi => "Standard MIDI data",
            T::Mp4 => "ISO Media, MP4 v2",
            T::Avi => "RIFF (little-endian) data, AVI",
            T::Zip => "Zip archive data",
            T::Gzip => "gzip compressed data",
            T::SevenZip => "7-zip archive data",
            T::Rar => "RAR archive data",
            T::Pe => "PE32 executable (console) Intel 80386, for MS Windows",
            T::Elf => "ELF executable",
            T::Lnk => "MS Windows shortcut",
            T::Sqlite => "SQLite 3.x database",
            T::Html => "HTML document, UTF-8 Unicode text",
            T::Xml => "XML 1.0 document, UTF-8 Unicode text",
            T::Json => "JSON data",
            T::Csv => "CSV text",
            T::Utf8Text => "UTF-8 Unicode text",
            T::Utf16Text => "Unicode text, UTF-16",
            T::Base64Text => "ASCII text (base64 encoded)",
            T::Empty => "empty",
            T::Data => "data",
        }
    }

    /// The conventional file extension for this type, if one exists.
    pub fn canonical_extension(self) -> Option<&'static str> {
        use FileType as T;
        Some(match self {
            T::Pdf => "pdf",
            T::Docx => "docx",
            T::Xlsx => "xlsx",
            T::Pptx => "pptx",
            T::Odt => "odt",
            T::Ods => "ods",
            T::Odp => "odp",
            T::OleCompound => "doc",
            T::Rtf => "rtf",
            T::Jpeg => "jpg",
            T::Png => "png",
            T::Gif => "gif",
            T::Bmp => "bmp",
            T::Tiff => "tiff",
            T::Ico => "ico",
            T::WebP => "webp",
            T::Mp3 => "mp3",
            T::Wav => "wav",
            T::Ogg => "ogg",
            T::Flac => "flac",
            T::Midi => "mid",
            T::Mp4 => "mp4",
            T::Avi => "avi",
            T::Zip => "zip",
            T::Gzip => "gz",
            T::SevenZip => "7z",
            T::Rar => "rar",
            T::Pe => "exe",
            T::Elf => None?,
            T::Lnk => "lnk",
            T::Sqlite => "db",
            T::Html => "html",
            T::Xml => "xml",
            T::Json => "json",
            T::Csv => "csv",
            T::Utf8Text => "txt",
            T::Utf16Text => "txt",
            T::Base64Text => "txt",
            T::Empty | T::Data => None?,
        })
    }

    /// Returns `true` for formats whose bodies are already compressed and
    /// therefore high-entropy (the paper's §V-D observation that the top
    /// attacked formats "represent compressed, high-entropy files").
    pub fn is_high_entropy_format(self) -> bool {
        use FileType as T;
        matches!(
            self,
            T::Docx
                | T::Xlsx
                | T::Pptx
                | T::Odt
                | T::Ods
                | T::Odp
                | T::Jpeg
                | T::Png
                | T::WebP
                | T::Mp3
                | T::Ogg
                | T::Flac
                | T::Mp4
                | T::Zip
                | T::Gzip
                | T::SevenZip
                | T::Rar
                | T::Pdf
        )
    }
}

impl std::fmt::Display for FileType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_sensible() {
        assert_eq!(FileType::Pdf.category(), FileCategory::Document);
        assert_eq!(FileType::Xlsx.category(), FileCategory::Spreadsheet);
        assert_eq!(FileType::Pptx.category(), FileCategory::Presentation);
        assert_eq!(FileType::Jpeg.category(), FileCategory::Image);
        assert_eq!(FileType::Mp3.category(), FileCategory::Audio);
        assert_eq!(FileType::Zip.category(), FileCategory::Archive);
        assert_eq!(FileType::Data.category(), FileCategory::Other);
        assert_eq!(FileType::Csv.category(), FileCategory::Text);
    }

    #[test]
    fn descriptions_nonempty_and_distinctive() {
        use std::collections::HashSet;
        let all = [
            FileType::Pdf,
            FileType::Docx,
            FileType::Xlsx,
            FileType::Pptx,
            FileType::Jpeg,
            FileType::Png,
            FileType::Mp3,
            FileType::Zip,
            FileType::Data,
            FileType::Empty,
        ];
        let set: HashSet<&str> = all.iter().map(|t| t.description()).collect();
        assert_eq!(set.len(), all.len(), "descriptions must be distinct");
    }

    #[test]
    fn high_entropy_formats() {
        assert!(FileType::Docx.is_high_entropy_format());
        assert!(FileType::Pdf.is_high_entropy_format());
        assert!(FileType::Jpeg.is_high_entropy_format());
        assert!(!FileType::Utf8Text.is_high_entropy_format());
        assert!(!FileType::Bmp.is_high_entropy_format());
        assert!(!FileType::Wav.is_high_entropy_format());
    }

    #[test]
    fn canonical_extensions() {
        assert_eq!(FileType::Docx.canonical_extension(), Some("docx"));
        assert_eq!(FileType::Data.canonical_extension(), None);
        assert_eq!(FileType::Empty.canonical_extension(), None);
    }

    #[test]
    fn display_matches_description() {
        assert_eq!(FileType::Pdf.to_string(), FileType::Pdf.description());
    }
}
