//! Heuristic classification of text-like content.
//!
//! Applied when no binary magic signature matches. Mirrors the behaviour of
//! the `file` utility's language/text tests: detect the encoding first
//! (UTF-16 BOM, UTF-8 validity, printability), then refine into structured
//! text formats (HTML, XML, JSON, CSV, base64).

use crate::types::FileType;

/// How many leading bytes to inspect for structure detection.
const SCAN_LIMIT: usize = 8 * 1024;

/// Classifies a buffer that matched no binary signature.
///
/// Returns [`FileType::Empty`] for zero-length input, a text type when the
/// buffer is printable text, and [`FileType::Data`] otherwise.
pub fn classify_text(bytes: &[u8]) -> FileType {
    if bytes.is_empty() {
        return FileType::Empty;
    }
    // UTF-16 byte order marks.
    if bytes.len() >= 2 && (bytes[..2] == [0xFF, 0xFE] || bytes[..2] == [0xFE, 0xFF]) {
        return FileType::Utf16Text;
    }
    // Strip a UTF-8 BOM if present.
    let body = if bytes.len() >= 3 && bytes[..3] == [0xEF, 0xBB, 0xBF] {
        &bytes[3..]
    } else {
        bytes
    };
    let truncated = body.len() > SCAN_LIMIT;
    let window = &body[..body.len().min(SCAN_LIMIT)];
    let Ok(text) = std::str::from_utf8(window) else {
        // The window may split a multi-byte sequence at its end; retry with
        // up to 3 bytes trimmed before giving up.
        for trim in 1..=3.min(window.len()) {
            if let Ok(text) = std::str::from_utf8(&window[..window.len() - trim]) {
                return refine_text(text, truncated);
            }
        }
        return FileType::Data;
    };
    refine_text(text, truncated)
}

fn refine_text(text: &str, truncated: bool) -> FileType {
    if !is_mostly_printable(text) {
        return FileType::Data;
    }
    let trimmed = text.trim_start();
    let lower_head: String = trimmed.chars().take(64).collect::<String>().to_ascii_lowercase();
    if lower_head.starts_with("<!doctype html") || lower_head.starts_with("<html") {
        return FileType::Html;
    }
    if lower_head.starts_with("<?xml") {
        return FileType::Xml;
    }
    if looks_like_json(trimmed, truncated) {
        return FileType::Json;
    }
    if looks_like_csv(text) {
        return FileType::Csv;
    }
    if looks_like_base64(text) {
        return FileType::Base64Text;
    }
    FileType::Utf8Text
}

/// Text is "printable" when control characters (other than whitespace) make
/// up under 1% of the sample — the same spirit as `file`'s ASCII test.
fn is_mostly_printable(text: &str) -> bool {
    let mut total = 0usize;
    let mut control = 0usize;
    for c in text.chars() {
        total += 1;
        if c.is_control() && !matches!(c, '\n' | '\r' | '\t') {
            control += 1;
        }
    }
    total > 0 && control * 100 <= total
}

/// A shallow JSON shape test: starts with `{` or `[`, ends (ignoring
/// whitespace) with the matching bracket, and contains a quoted key early
/// on. When the sample is a truncated window of a larger file, the closing
/// bracket cannot be required and a `"key":` pattern substitutes for it.
/// Deliberately cheap — this is a sniffer, not a parser.
fn looks_like_json(text: &str, truncated: bool) -> bool {
    let t = text.trim();
    let close = match t.as_bytes().first() {
        Some(b'{') => '}',
        Some(b'[') => ']',
        _ => return false,
    };
    let head: String = t.chars().take(256).collect();
    if truncated {
        // A quoted string followed by a colon is JSON's signature shape.
        return head
            .match_indices('"')
            .any(|(i, _)| head[i + 1..].contains("\":"));
    }
    if !t.ends_with(close) {
        return false;
    }
    head.contains('"') || head.chars().any(|c| c.is_ascii_digit())
}

/// CSV: at least two non-empty lines with a consistent count of *field
/// separators* — commas not followed by a space. English prose also
/// contains commas, but virtually always as ", " pairs, so requiring bare
/// commas keeps prose out.
fn looks_like_csv(text: &str) -> bool {
    let mut counts = Vec::new();
    for line in text.lines().take(8) {
        if line.is_empty() {
            continue;
        }
        counts.push(bare_comma_count(line));
        if counts.len() >= 4 {
            break;
        }
    }
    counts.len() >= 2 && counts[0] >= 1 && counts.iter().all(|&c| c == counts[0])
}

/// Counts commas that are not followed by whitespace.
fn bare_comma_count(line: &str) -> usize {
    let bytes = line.as_bytes();
    bytes
        .iter()
        .enumerate()
        .filter(|&(i, &b)| {
            b == b','
                && bytes
                    .get(i + 1)
                    .is_none_or(|&n| n != b' ' && n != b'\t')
        })
        .count()
}

/// Base64: lines composed solely of the base64 alphabet, at least 40
/// significant characters, with proper `=` padding only at the very end.
fn looks_like_base64(text: &str) -> bool {
    let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
    if compact.len() < 40 {
        return false;
    }
    let body = compact.trim_end_matches('=');
    if compact.len() - body.len() > 2 {
        return false;
    }
    body.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '/')
        // Require a mixed alphabet so ordinary words do not qualify.
        && body.chars().any(|c| c.is_ascii_uppercase())
        && body.chars().any(|c| c.is_ascii_lowercase())
        && body.chars().any(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_binary() {
        assert_eq!(classify_text(b""), FileType::Empty);
        assert_eq!(classify_text(&[0x00, 0x01, 0x02, 0xFF]), FileType::Data);
        // High-entropy ciphertext-like bytes are "data". (Avoid starting
        // with FF FE / FE FF, which would be a UTF-16 byte-order mark.)
        let cipher: Vec<u8> = (0..=255u8).map(|b| b.wrapping_mul(167)).collect();
        assert_eq!(classify_text(&cipher), FileType::Data);
    }

    #[test]
    fn plain_text() {
        assert_eq!(
            classify_text(b"Dear diary, today I wrote a filesystem.\n"),
            FileType::Utf8Text
        );
        // UTF-8 with a BOM.
        let mut bom = vec![0xEF, 0xBB, 0xBF];
        bom.extend_from_slice("héllo wörld, ünicode".as_bytes());
        assert_eq!(classify_text(&bom), FileType::Utf8Text);
    }

    #[test]
    fn utf16_boms() {
        assert_eq!(classify_text(&[0xFF, 0xFE, b'h', 0, b'i', 0]), FileType::Utf16Text);
        assert_eq!(classify_text(&[0xFE, 0xFF, 0, b'h', 0, b'i']), FileType::Utf16Text);
    }

    #[test]
    fn html_and_xml() {
        assert_eq!(
            classify_text(b"<!DOCTYPE html><html><body>x</body></html>"),
            FileType::Html
        );
        assert_eq!(classify_text(b"  <html lang=\"en\"><head>"), FileType::Html);
        assert_eq!(
            classify_text(b"<?xml version=\"1.0\"?><root/>"),
            FileType::Xml
        );
    }

    #[test]
    fn json_shapes() {
        assert_eq!(classify_text(br#"{"key": "value", "n": 3}"#), FileType::Json);
        assert_eq!(classify_text(b"[1, 2, 3]"), FileType::Json);
        assert_eq!(classify_text(b"{not json"), FileType::Utf8Text);
        assert_eq!(classify_text(b"plain prose with, commas"), FileType::Utf8Text);
    }

    #[test]
    fn csv_detection() {
        assert_eq!(
            classify_text(b"name,age,city\nalice,30,lisbon\nbob,25,porto\n"),
            FileType::Csv
        );
        // Inconsistent field counts are not CSV.
        assert_eq!(
            classify_text(b"a,b,c\nd,e\nf,g,h\n"),
            FileType::Utf8Text
        );
        // A single line is not CSV.
        assert_eq!(classify_text(b"a,b,c"), FileType::Utf8Text);
    }

    #[test]
    fn base64_detection() {
        let b64 = b"TWFuIGlzIGRpc3Rpbmd1aXNoZWQsIG5vdCBvbmx5IGJ5IGhpcyByZWFzb24g\nYnV0IGJ5IHRoaXMgc2luZ3VsYXIgcGFzc2lvbg==";
        assert_eq!(classify_text(b64), FileType::Base64Text);
        // Too short.
        assert_eq!(classify_text(b"SGVsbG8="), FileType::Utf8Text);
        // Ordinary words are not base64 despite the alphabet.
        assert_eq!(
            classify_text(b"the quick brown fox jumps over the lazy dog again"),
            FileType::Utf8Text
        );
    }

    #[test]
    fn window_boundary_multibyte_is_tolerated() {
        // Build text slightly over the scan window ending mid-codepoint.
        let mut text = "a".repeat(SCAN_LIMIT - 1);
        text.push('é'); // 2-byte UTF-8 char straddling the window edge
        text.push_str(&"b".repeat(16));
        assert_eq!(classify_text(text.as_bytes()), FileType::Utf8Text);
    }

    #[test]
    fn mostly_printable_threshold() {
        assert!(is_mostly_printable("normal text\nwith lines\t"));
        let noisy: String = std::iter::repeat_n('\u{1}', 50).chain("ok".chars()).collect();
        assert!(!is_mostly_printable(&noisy));
        assert!(!is_mostly_printable(""));
    }
}
