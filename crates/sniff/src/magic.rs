//! The magic-number signature database.
//!
//! Mirrors the approach of the `file` utility's magic database (paper
//! §III-A): each signature describes "the order and position of specific
//! byte values unique to a file type". Signatures are checked in priority
//! order; ZIP containers are further introspected to distinguish OOXML and
//! OpenDocument formats from plain archives.

use crate::types::FileType;

/// One magic-number signature.
#[derive(Debug, Clone, Copy)]
pub struct Signature {
    /// The file type this signature identifies.
    pub file_type: FileType,
    /// Byte offset at which the pattern must appear.
    pub offset: usize,
    /// The literal byte pattern.
    pub pattern: &'static [u8],
    /// An optional second pattern at a second offset (e.g. RIFF + WAVE).
    pub second: Option<(usize, &'static [u8])>,
}

impl Signature {
    const fn simple(file_type: FileType, pattern: &'static [u8]) -> Self {
        Self {
            file_type,
            offset: 0,
            pattern,
            second: None,
        }
    }

    const fn at(file_type: FileType, offset: usize, pattern: &'static [u8]) -> Self {
        Self {
            file_type,
            offset,
            pattern,
            second: None,
        }
    }

    const fn pair(
        file_type: FileType,
        pattern: &'static [u8],
        second_offset: usize,
        second_pattern: &'static [u8],
    ) -> Self {
        Self {
            file_type,
            offset: 0,
            pattern,
            second: Some((second_offset, second_pattern)),
        }
    }

    /// Tests this signature against a buffer.
    pub fn matches(&self, bytes: &[u8]) -> bool {
        let hit = |offset: usize, pattern: &[u8]| {
            bytes.len() >= offset + pattern.len() && &bytes[offset..offset + pattern.len()] == pattern
        };
        hit(self.offset, self.pattern)
            && self.second.is_none_or(|(off, pat)| hit(off, pat))
    }
}

/// The built-in signature database, in match-priority order.
///
/// More specific signatures (longer patterns, paired patterns) come before
/// generic ones so that, e.g., WAV (RIFF+WAVE) wins over a bare RIFF check.
pub const SIGNATURES: &[Signature] = &[
    // Paired RIFF containers first.
    Signature::pair(FileType::Wav, b"RIFF", 8, b"WAVE"),
    Signature::pair(FileType::Avi, b"RIFF", 8, b"AVI "),
    Signature::pair(FileType::WebP, b"RIFF", 8, b"WEBP"),
    // Documents.
    Signature::simple(FileType::Pdf, b"%PDF-"),
    Signature::simple(FileType::Rtf, b"{\\rtf"),
    Signature::simple(
        FileType::OleCompound,
        &[0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1],
    ),
    // Images.
    Signature::simple(FileType::Png, &[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]),
    Signature::simple(FileType::Jpeg, &[0xFF, 0xD8, 0xFF]),
    Signature::simple(FileType::Gif, b"GIF87a"),
    Signature::simple(FileType::Gif, b"GIF89a"),
    Signature::simple(FileType::Tiff, &[0x49, 0x49, 0x2A, 0x00]),
    Signature::simple(FileType::Tiff, &[0x4D, 0x4D, 0x00, 0x2A]),
    Signature::simple(FileType::Bmp, b"BM"),
    // Audio / video.
    Signature::simple(FileType::Mp3, b"ID3"),
    Signature::simple(FileType::Mp3, &[0xFF, 0xFB]),
    Signature::simple(FileType::Mp3, &[0xFF, 0xF3]),
    Signature::simple(FileType::Mp3, &[0xFF, 0xF2]),
    Signature::simple(FileType::Ogg, b"OggS"),
    Signature::simple(FileType::Flac, b"fLaC"),
    Signature::simple(FileType::Midi, b"MThd"),
    Signature::at(FileType::Mp4, 4, b"ftyp"),
    // Archives (ZIP is refined by container introspection in the sniffer).
    Signature::simple(FileType::Zip, &[b'P', b'K', 0x03, 0x04]),
    Signature::simple(FileType::Gzip, &[0x1F, 0x8B]),
    Signature::simple(FileType::SevenZip, &[b'7', b'z', 0xBC, 0xAF, 0x27, 0x1C]),
    Signature::simple(FileType::Rar, &[b'R', b'a', b'r', b'!', 0x1A, 0x07]),
    // Executables and system formats.
    Signature::simple(FileType::Elf, &[0x7F, b'E', b'L', b'F']),
    Signature::simple(FileType::Lnk, &[0x4C, 0x00, 0x00, 0x00, 0x01, 0x14, 0x02, 0x00]),
    Signature::simple(FileType::Pe, b"MZ"),
    // Databases.
    Signature::simple(FileType::Sqlite, b"SQLite format 3\x00"),
    // Windows icon: weak signature, checked last among binaries.
    Signature::simple(FileType::Ico, &[0x00, 0x00, 0x01, 0x00]),
];

/// How many leading bytes of a ZIP container to scan for member names when
/// distinguishing OOXML/ODF documents from plain archives.
const CONTAINER_SCAN_LIMIT: usize = 16 * 1024;

/// Matches a buffer against the signature database, refining ZIP containers
/// into their document formats. Returns `None` if no binary signature
/// matches (the caller then applies text heuristics).
pub fn match_magic(bytes: &[u8]) -> Option<FileType> {
    let base = SIGNATURES.iter().find(|s| s.matches(bytes))?.file_type;
    if base == FileType::Zip {
        Some(refine_zip(bytes))
    } else {
        Some(base)
    }
}

/// Distinguishes OOXML (docx/xlsx/pptx) and OpenDocument (odt/ods/odp)
/// containers from plain ZIP archives by scanning the leading local-file
/// headers for characteristic member names, as `file`'s magic database does.
fn refine_zip(bytes: &[u8]) -> FileType {
    let window = &bytes[..bytes.len().min(CONTAINER_SCAN_LIMIT)];
    // OpenDocument declares its type in an uncompressed `mimetype` member
    // that must be the first entry in the archive.
    if find(window, b"mimetypeapplication/vnd.oasis.opendocument.text").is_some() {
        return FileType::Odt;
    }
    if find(window, b"mimetypeapplication/vnd.oasis.opendocument.spreadsheet").is_some() {
        return FileType::Ods;
    }
    if find(window, b"mimetypeapplication/vnd.oasis.opendocument.presentation").is_some() {
        return FileType::Odp;
    }
    // OOXML is identified by its package layout.
    let has_content_types = find(window, b"[Content_Types].xml").is_some();
    if has_content_types || find(window, b"_rels/.rels").is_some() {
        if find(window, b"word/").is_some() {
            return FileType::Docx;
        }
        if find(window, b"xl/").is_some() {
            return FileType::Xlsx;
        }
        if find(window, b"ppt/").is_some() {
            return FileType::Pptx;
        }
    }
    FileType::Zip
}

/// Naive substring search (needles here are short and windows small).
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack
        .windows(needle.len())
        .position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zip_with_member(name: &[u8]) -> Vec<u8> {
        // A minimal fake local-file-header prefix: PK\x03\x04 + filler +
        // the member name, which is all the refiner inspects.
        let mut v = vec![b'P', b'K', 0x03, 0x04];
        v.extend_from_slice(&[0u8; 26]);
        v.extend_from_slice(b"[Content_Types].xml");
        v.extend_from_slice(&[b'P', b'K', 0x03, 0x04]);
        v.extend_from_slice(&[0u8; 26]);
        v.extend_from_slice(name);
        v.extend_from_slice(&[0u8; 64]);
        v
    }

    #[test]
    fn basic_signatures() {
        assert_eq!(match_magic(b"%PDF-1.5 blah"), Some(FileType::Pdf));
        assert_eq!(
            match_magic(&[0xFF, 0xD8, 0xFF, 0xE0, 0x00]),
            Some(FileType::Jpeg)
        );
        assert_eq!(match_magic(b"GIF89a......"), Some(FileType::Gif));
        assert_eq!(match_magic(b"{\\rtf1\\ansi"), Some(FileType::Rtf));
        assert_eq!(match_magic(b"ID3\x04rest"), Some(FileType::Mp3));
        assert_eq!(match_magic(b"MZ\x90\x00"), Some(FileType::Pe));
        assert_eq!(match_magic(b"SQLite format 3\x00"), Some(FileType::Sqlite));
        assert_eq!(match_magic(&[0x7F, b'E', b'L', b'F', 2]), Some(FileType::Elf));
        assert_eq!(match_magic(&[0x1F, 0x8B, 0x08]), Some(FileType::Gzip));
        assert_eq!(
            match_magic(&[b'7', b'z', 0xBC, 0xAF, 0x27, 0x1C, 0]),
            Some(FileType::SevenZip)
        );
    }

    #[test]
    fn paired_riff_signatures() {
        let mut wav = b"RIFF".to_vec();
        wav.extend_from_slice(&[0; 4]);
        wav.extend_from_slice(b"WAVEfmt ");
        assert_eq!(match_magic(&wav), Some(FileType::Wav));

        let mut avi = b"RIFF".to_vec();
        avi.extend_from_slice(&[0; 4]);
        avi.extend_from_slice(b"AVI LIST");
        assert_eq!(match_magic(&avi), Some(FileType::Avi));

        // A bare RIFF header with an unknown form type matches nothing.
        let mut riff = b"RIFF".to_vec();
        riff.extend_from_slice(&[0; 4]);
        riff.extend_from_slice(b"XXXX");
        assert_eq!(match_magic(&riff), None);
    }

    #[test]
    fn offset_signature_mp4() {
        let mut mp4 = vec![0x00, 0x00, 0x00, 0x20];
        mp4.extend_from_slice(b"ftypisom");
        assert_eq!(match_magic(&mp4), Some(FileType::Mp4));
    }

    #[test]
    fn zip_refinement() {
        assert_eq!(match_magic(&zip_with_member(b"word/document.xml")), Some(FileType::Docx));
        assert_eq!(match_magic(&zip_with_member(b"xl/workbook.xml")), Some(FileType::Xlsx));
        assert_eq!(
            match_magic(&zip_with_member(b"ppt/presentation.xml")),
            Some(FileType::Pptx)
        );
        assert_eq!(match_magic(&zip_with_member(b"random/file.bin")), Some(FileType::Zip));

        let mut odt = vec![b'P', b'K', 0x03, 0x04];
        odt.extend_from_slice(&[0u8; 26]);
        odt.extend_from_slice(b"mimetypeapplication/vnd.oasis.opendocument.text");
        assert_eq!(match_magic(&odt), Some(FileType::Odt));
    }

    #[test]
    fn truncated_buffers_do_not_match() {
        assert_eq!(match_magic(b"%PD"), None);
        assert_eq!(match_magic(b""), None);
        assert_eq!(match_magic(b"P"), None);
    }

    #[test]
    fn signature_matches_respects_offset_bounds() {
        let sig = Signature::at(FileType::Mp4, 4, b"ftyp");
        assert!(!sig.matches(b"ftyp"), "pattern at wrong offset");
        assert!(!sig.matches(b"xxxxfty"), "buffer too short");
        assert!(sig.matches(b"xxxxftyp"));
    }

    #[test]
    fn find_edge_cases() {
        assert_eq!(find(b"", b"x"), None);
        assert_eq!(find(b"abc", b""), None);
        assert_eq!(find(b"abc", b"abcd"), None);
        assert_eq!(find(b"xxabcxx", b"abc"), Some(2));
    }
}
