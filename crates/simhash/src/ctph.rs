//! Context-triggered piecewise hashing (an ssdeep-style digest).
//!
//! The paper cites Kornblum's CTPH alongside sdhash as the family of
//! "similarity-preserving hash functions" its similarity indicator builds
//! on (§III-B, refs 27 and 40), and selected sdhash. This module provides
//! the CTPH alternative so the benchmark suite can compare the two schemes
//! (the `primitives` bench's similarity ablation).
//!
//! A CTPH signature is a short base64 string: the input is split at
//! content-defined trigger points chosen by a rolling hash, each piece is
//! hashed, and each piece hash contributes one character. Signatures at two
//! adjacent block sizes are kept so that inputs of different lengths remain
//! comparable.

use serde::{Deserialize, Serialize};

use crate::hash::{fnv1a, RollingHash};

/// Target signature length in characters, as in ssdeep.
const SPAMSUM_LENGTH: usize = 64;
/// The minimum block size.
const MIN_BLOCKSIZE: u64 = 3;
/// Base64 alphabet for signature characters.
const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
/// Two signatures must share a common substring of this length to score at
/// all (ssdeep's anti-coincidence guard).
const MIN_COMMON_SUBSTRING: usize = 7;

/// A context-triggered piecewise hash of one input.
///
/// # Examples
///
/// ```
/// use cryptodrop_simhash::CtphDigest;
///
/// let doc: Vec<u8> = (0..200u32)
///     .flat_map(|i| format!("line {i} of a long document\n").into_bytes())
///     .collect();
/// let d = CtphDigest::compute(&doc);
/// assert_eq!(d.similarity(&d), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtphDigest {
    blocksize: u64,
    sig1: String,
    sig2: String,
}

impl CtphDigest {
    /// Computes the digest of `data`.
    ///
    /// Unlike [`SdDigest`](crate::SdDigest), CTPH produces a digest for any
    /// input, though very short inputs yield short, weak signatures.
    pub fn compute(data: &[u8]) -> CtphDigest {
        let mut blocksize = initial_blocksize(data.len());
        loop {
            let (sig1, sig2) = signatures(data, blocksize);
            // ssdeep retries at a smaller block size when the signature
            // comes out too short to be meaningful.
            if sig1.len() < SPAMSUM_LENGTH / 2 && blocksize > MIN_BLOCKSIZE {
                blocksize /= 2;
                continue;
            }
            return CtphDigest {
                blocksize,
                sig1,
                sig2,
            };
        }
    }

    /// The block size the signature was computed at.
    pub fn blocksize(&self) -> u64 {
        self.blocksize
    }

    /// The primary signature string (for display and tests).
    pub fn signature(&self) -> String {
        format!("{}:{}:{}", self.blocksize, self.sig1, self.sig2)
    }

    /// The similarity of two digests, 0–100.
    ///
    /// Digests are comparable when their block sizes are equal or adjacent
    /// (one is double the other); incomparable digests score 0.
    pub fn similarity(&self, other: &CtphDigest) -> u32 {
        let (b1, b2) = (self.blocksize, other.blocksize);
        if b1 == b2 {
            let s1 = score_strings(&self.sig1, &other.sig1, b1);
            let s2 = score_strings(&self.sig2, &other.sig2, b1 * 2);
            s1.max(s2)
        } else if b1 == b2 * 2 {
            score_strings(&self.sig1, &other.sig2, b1)
        } else if b2 == b1 * 2 {
            score_strings(&self.sig2, &other.sig1, b2)
        } else {
            0
        }
    }
}

/// The smallest block size `3 · 2^i` whose expected signature length fits
/// in [`SPAMSUM_LENGTH`].
fn initial_blocksize(len: usize) -> u64 {
    let mut b = MIN_BLOCKSIZE;
    while (b as usize) * SPAMSUM_LENGTH < len {
        b *= 2;
    }
    b
}

/// Generates the two signatures (block size `b` and `2b`) in one pass.
fn signatures(data: &[u8], blocksize: u64) -> (String, String) {
    let mut roll = RollingHash::new();
    let mut piece1: u64 = 0x28021967; // spamsum's HASH_INIT flavour
    let mut piece2: u64 = 0x28021967;
    let mut sig1 = Vec::new();
    let mut sig2 = Vec::new();
    for &byte in data {
        let r = roll.roll(byte) as u64;
        piece1 = piece1.wrapping_mul(0x01000193) ^ byte as u64;
        piece2 = piece2.wrapping_mul(0x01000193) ^ byte as u64;
        if r % blocksize == blocksize - 1
            && sig1.len() < SPAMSUM_LENGTH - 1 {
                sig1.push(B64[(piece1 % 64) as usize]);
                piece1 = 0x28021967;
            }
        if r % (blocksize * 2) == blocksize * 2 - 1 && sig2.len() < SPAMSUM_LENGTH / 2 - 1 {
            sig2.push(B64[(piece2 % 64) as usize]);
            piece2 = 0x28021967;
        }
    }
    // Trailing piece, as in spamsum, captures the final partial block.
    if !data.is_empty() {
        sig1.push(B64[(fnv1a(&piece1.to_le_bytes()) % 64) as usize]);
        sig2.push(B64[(fnv1a(&piece2.to_le_bytes()) % 64) as usize]);
    }
    (
        String::from_utf8(sig1).expect("base64 alphabet"),
        String::from_utf8(sig2).expect("base64 alphabet"),
    )
}

/// Scores two signature strings at a given block size, ssdeep-style.
fn score_strings(s1: &str, s2: &str, blocksize: u64) -> u32 {
    if s1.is_empty() || s2.is_empty() {
        return 0;
    }
    if !has_common_substring(s1.as_bytes(), s2.as_bytes(), MIN_COMMON_SUBSTRING) {
        return 0;
    }
    let e = edit_distance(s1.as_bytes(), s2.as_bytes()) as u64;
    let l1 = s1.len() as u64;
    let l2 = s2.len() as u64;
    // Scale the edit distance to the signature length, then invert into a
    // 0..=100 match score.
    let scaled = e * SPAMSUM_LENGTH as u64 / (l1 + l2);
    let scaled = (scaled * 100) / SPAMSUM_LENGTH as u64;
    let mut score = 100u64.saturating_sub(scaled);
    // Cap scores for small block sizes to avoid over-claiming on tiny
    // inputs (ssdeep's blocksize guard).
    let cap = blocksize / MIN_BLOCKSIZE * l1.min(l2);
    if score > cap {
        score = cap;
    }
    score.min(100) as u32
}

/// Whether the inputs share any substring of length `n`.
fn has_common_substring(a: &[u8], b: &[u8], n: usize) -> bool {
    if a.len() < n || b.len() < n {
        return false;
    }
    // Signatures are ≤ 64 chars; the quadratic scan is fine.
    a.windows(n).any(|w| b.windows(n).any(|v| v == w))
}

/// Classic Levenshtein distance with substitution cost 2 (insert/delete 1),
/// matching spamsum's weighting.
fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + if ca == cb { 0 } else { 2 };
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(n: usize) -> Vec<u8> {
        let para = b"Context triggered piecewise hashes split the input at \
                     rolling-hash trigger points so local changes only perturb \
                     nearby signature characters. ";
        para.iter().cycle().take(n).copied().collect()
    }

    fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn self_similarity_is_100() {
        let d = CtphDigest::compute(&text(10_000));
        assert_eq!(d.similarity(&d), 100);
    }

    #[test]
    fn empty_input_has_empty_but_valid_digest() {
        let d = CtphDigest::compute(b"");
        assert_eq!(d.blocksize(), MIN_BLOCKSIZE);
        assert_eq!(d.similarity(&d), 0, "nothing in common with nothing");
    }

    #[test]
    fn random_vs_random_is_low() {
        let a = CtphDigest::compute(&random_bytes(16_384, 1));
        let b = CtphDigest::compute(&random_bytes(16_384, 2));
        assert!(a.similarity(&b) <= 20, "got {}", a.similarity(&b));
    }

    #[test]
    fn encryption_destroys_ctph_similarity() {
        let plain = text(16_384);
        let key = random_bytes(plain.len(), 77);
        let cipher: Vec<u8> = plain.iter().zip(&key).map(|(p, k)| p ^ k).collect();
        let a = CtphDigest::compute(&plain);
        let b = CtphDigest::compute(&cipher);
        assert!(a.similarity(&b) <= 20, "got {}", a.similarity(&b));
    }

    #[test]
    fn local_edit_keeps_similarity() {
        let base = text(16_384);
        let mut edited = base.clone();
        for byte in edited.iter_mut().skip(8000).take(64) {
            *byte = b'#';
        }
        let a = CtphDigest::compute(&base);
        let b = CtphDigest::compute(&edited);
        assert!(a.similarity(&b) >= 40, "got {}", a.similarity(&b));
    }

    #[test]
    fn signature_format() {
        let d = CtphDigest::compute(&text(5000));
        let sig = d.signature();
        let parts: Vec<&str> = sig.split(':').collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], d.blocksize().to_string());
        assert!(!parts[1].is_empty());
    }

    #[test]
    fn incompatible_blocksizes_score_zero() {
        let small = CtphDigest::compute(&text(1000));
        let huge = CtphDigest::compute(&text(4_000_000));
        assert!(huge.blocksize() > small.blocksize() * 2);
        assert_eq!(small.similarity(&huge), 0);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance(b"", b""), 0);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance(b"", b"ab"), 2);
        assert_eq!(edit_distance(b"abc", b"abd"), 2, "substitution costs 2");
        assert_eq!(edit_distance(b"abc", b"abcd"), 1);
    }

    #[test]
    fn common_substring_guard() {
        assert!(has_common_substring(b"abcdefghij", b"xxabcdefgxx", 7));
        assert!(!has_common_substring(b"abcdefghij", b"klmnopqrst", 7));
        assert!(!has_common_substring(b"short", b"short", 7));
    }

    #[test]
    fn blocksize_grows_with_input() {
        assert_eq!(initial_blocksize(0), MIN_BLOCKSIZE);
        assert_eq!(initial_blocksize(192), MIN_BLOCKSIZE);
        assert!(initial_blocksize(1_000_000) > 1000);
    }
}
