//! The 2048-bit Bloom filters that make up an sdhash digest.

use serde::{Deserialize, Serialize};

/// Filter size in bits (256 bytes), as in sdhash.
pub const FILTER_BITS: usize = 2048;
/// Filter size in bytes.
pub const FILTER_BYTES: usize = FILTER_BITS / 8;
/// Number of index bits taken from each hash word (2^11 = 2048).
const INDEX_BITS: u32 = 11;
/// Number of bits set per inserted feature (one per SHA-1 word).
pub const HASHES_PER_FEATURE: usize = 5;
/// Maximum features per filter before a new filter is started, as in
/// sdhash.
pub const MAX_FEATURES_PER_FILTER: usize = 160;

/// A 2048-bit Bloom filter holding up to
/// [`MAX_FEATURES_PER_FILTER`] similarity features.
///
/// # Examples
///
/// ```
/// use cryptodrop_simhash::bloom::BloomFilter;
/// use cryptodrop_simhash::hash::sha1_words;
///
/// let mut f = BloomFilter::new();
/// f.insert(&sha1_words(b"some 64-byte feature...."));
/// assert_eq!(f.features(), 1);
/// assert!(f.set_bits() >= 1 && f.set_bits() <= 5);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>, // FILTER_BITS / 64 words
    features: u16,
}

impl BloomFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        Self {
            bits: vec![0u64; FILTER_BITS / 64],
            features: 0,
        }
    }

    /// Inserts a feature from its five hash words, setting one bit per word.
    pub fn insert(&mut self, words: &[u32; HASHES_PER_FEATURE]) {
        for &w in words {
            let idx = (w & ((1 << INDEX_BITS) - 1)) as usize;
            self.bits[idx / 64] |= 1u64 << (idx % 64);
        }
        self.features = self.features.saturating_add(1);
    }

    /// The number of features inserted.
    pub fn features(&self) -> usize {
        self.features as usize
    }

    /// Returns `true` when the filter has reached its feature capacity.
    pub fn is_full(&self) -> bool {
        self.features() >= MAX_FEATURES_PER_FILTER
    }

    /// The number of set bits.
    pub fn set_bits(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// The number of bits set in both `self` and `other`.
    pub fn common_bits(&self, other: &BloomFilter) -> u32 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Estimates the similarity of two filters on a 0–100 scale.
    ///
    /// Following sdhash's filter scoring: the observed overlap is compared
    /// against the expected *chance* overlap of two independent filters
    /// with the same bit densities; only overlap beyond a cutoff above
    /// chance counts, scaled by the maximum possible overlap.
    pub fn score(&self, other: &BloomFilter) -> u32 {
        let n1 = self.set_bits() as f64;
        let n2 = other.set_bits() as f64;
        if n1 == 0.0 || n2 == 0.0 {
            return 0;
        }
        let common = self.common_bits(other) as f64;
        let expected_chance = n1 * n2 / FILTER_BITS as f64;
        let max_common = n1.min(n2);
        // Cutoff: chance overlap plus a guard band, so random filters score
        // 0 rather than small positive values. The band is the larger of
        // 30% of the headroom (sdhash's proportional cut) and six standard
        // deviations of the chance-overlap distribution — the latter keeps
        // sparse filters, whose proportional band is small in absolute
        // bits, from scoring on statistical flukes.
        let p = (n1.max(n2) / FILTER_BITS as f64).min(1.0);
        let sigma = (max_common * p * (1.0 - p)).sqrt();
        let band = (0.3 * (max_common - expected_chance)).max(6.0 * sigma);
        let cutoff = expected_chance + band;
        if common <= cutoff || max_common <= cutoff {
            return 0;
        }
        let score = 100.0 * (common - cutoff) / (max_common - cutoff);
        score.round().clamp(0.0, 100.0) as u32
    }
}

impl Default for BloomFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BloomFilter")
            .field("features", &self.features)
            .field("set_bits", &self.set_bits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha1_words;

    fn feature(i: u64) -> [u32; 5] {
        sha1_words(&i.to_le_bytes())
    }

    #[test]
    fn empty_filter() {
        let f = BloomFilter::new();
        assert_eq!(f.features(), 0);
        assert_eq!(f.set_bits(), 0);
        assert!(!f.is_full());
        assert_eq!(f.score(&BloomFilter::new()), 0);
    }

    #[test]
    fn insert_sets_at_most_five_bits() {
        let mut f = BloomFilter::new();
        f.insert(&feature(1));
        assert!(f.set_bits() >= 1 && f.set_bits() <= 5);
        assert_eq!(f.features(), 1);
    }

    #[test]
    fn capacity() {
        let mut f = BloomFilter::new();
        for i in 0..MAX_FEATURES_PER_FILTER as u64 {
            f.insert(&feature(i));
        }
        assert!(f.is_full());
    }

    #[test]
    fn identical_filters_score_100() {
        let mut f = BloomFilter::new();
        for i in 0..64u64 {
            f.insert(&feature(i));
        }
        assert_eq!(f.score(&f.clone()), 100);
    }

    #[test]
    fn disjoint_filters_score_0() {
        let mut a = BloomFilter::new();
        let mut b = BloomFilter::new();
        for i in 0..80u64 {
            a.insert(&feature(i));
            b.insert(&feature(i + 10_000));
        }
        assert_eq!(a.score(&b), 0, "independent feature sets look random");
    }

    #[test]
    fn partial_overlap_scores_between() {
        let mut a = BloomFilter::new();
        let mut b = BloomFilter::new();
        for i in 0..100u64 {
            a.insert(&feature(i));
        }
        for i in 50..150u64 {
            b.insert(&feature(i));
        }
        let s = a.score(&b);
        assert!(s > 0 && s < 100, "half overlap scored {s}");
    }

    #[test]
    fn score_is_symmetric() {
        let mut a = BloomFilter::new();
        let mut b = BloomFilter::new();
        for i in 0..90u64 {
            a.insert(&feature(i));
        }
        for i in 30..160u64 {
            b.insert(&feature(i));
        }
        assert_eq!(a.score(&b), b.score(&a));
    }

    #[test]
    fn more_overlap_scores_higher() {
        let mut base = BloomFilter::new();
        for i in 0..100u64 {
            base.insert(&feature(i));
        }
        let mut prev = 0;
        for shared in [20u64, 50, 80, 100] {
            let mut other = BloomFilter::new();
            for i in 0..shared {
                other.insert(&feature(i));
            }
            for i in shared..100 {
                other.insert(&feature(i + 50_000));
            }
            let s = base.score(&other);
            assert!(s >= prev, "monotonicity violated at {shared}: {s} < {prev}");
            prev = s;
        }
        assert_eq!(prev, 100);
    }

    #[test]
    fn debug_shows_counts() {
        let mut f = BloomFilter::new();
        f.insert(&feature(9));
        let dbg = format!("{f:?}");
        assert!(dbg.contains("features"));
    }
}
