//! Cheap 64-bit content fingerprints for snapshot-cache keys.
//!
//! The analysis engine snapshots a file (type sniff + sdhash digest +
//! entropy) every time the file is about to change. Most of those
//! snapshots are recomputed over content that has not changed since the
//! last snapshot — a write-open of a file the engine just refreshed at
//! close time, or a close that wrote the very bytes that were read. A
//! fingerprint lets the engine detect "content unchanged" with a single
//! linear pass and skip the full (digest-bearing) recompute.
//!
//! The fingerprint is FNV-1a over the full content with the length folded
//! in, finished with an avalanche mix. It is **not** cryptographic: an
//! adversary who can engineer a 64-bit collision could make the engine
//! reuse a stale snapshot, but the reused snapshot describes content with
//! the same fingerprint *and the same length*, and a collision still
//! requires defeating a 2⁻⁶⁴ birthday bound per file — far more effort
//! than the evasion channels the paper already accepts (§V-F).

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the 64-bit content fingerprint of `data`.
///
/// Equal contents always produce equal fingerprints; distinct contents
/// (including distinct contents of the same length) produce distinct
/// fingerprints except with probability ~2⁻⁶⁴.
///
/// The value must stay in lockstep with
/// `cryptodrop_entropy::ByteHistogram::from_bytes_with_fingerprint`,
/// which computes the same function fused with a histogram pass.
///
/// # Examples
///
/// ```
/// use cryptodrop_simhash::content_fingerprint;
///
/// let a = content_fingerprint(b"the report, v1");
/// let b = content_fingerprint(b"the report, v2");
/// assert_ne!(a, b);
/// assert_eq!(a, content_fingerprint(b"the report, v1"));
/// ```
pub fn content_fingerprint(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    finish_fingerprint(h, data.len() as u64)
}

/// Folds the content length into a raw FNV-1a state and applies a final
/// avalanche mix (splitmix64 finalizer), so short inputs still spread
/// across all 64 bits.
///
/// Exposed so a caller already making a pass over the bytes (e.g. a
/// histogram build) can maintain the FNV state itself and finish it here
/// without a second traversal.
pub fn finish_fingerprint(raw_fnv: u64, len: u64) -> u64 {
    let mut h = raw_fnv ^ len.wrapping_mul(FNV_PRIME);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// The FNV-1a constants, exposed for fused implementations that fold
/// bytes themselves (offset basis, prime).
pub const FNV1A: (u64, u64) = (FNV_OFFSET, FNV_PRIME);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(content_fingerprint(b"abc"), content_fingerprint(b"abc"));
        assert_eq!(content_fingerprint(b""), content_fingerprint(b""));
    }

    #[test]
    fn distinct_contents_distinct_fingerprints() {
        assert_ne!(content_fingerprint(b"abc"), content_fingerprint(b"abd"));
        assert_ne!(content_fingerprint(b"abc"), content_fingerprint(b"acb"));
        assert_ne!(content_fingerprint(b""), content_fingerprint(b"\0"));
    }

    #[test]
    fn length_is_significant() {
        // Same FNV byte stream prefix, different lengths.
        assert_ne!(content_fingerprint(b"aa"), content_fingerprint(b"aaa"));
        assert_ne!(content_fingerprint(&[0u8; 16]), content_fingerprint(&[0u8; 17]));
    }

    #[test]
    fn single_bit_flips_spread() {
        // Every single-bit flip of a small buffer changes the fingerprint.
        let base = b"fingerprint avalanche probe".to_vec();
        let fp = content_fingerprint(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fp, content_fingerprint(&flipped), "byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn manual_fold_matches() {
        let data = b"fold parity";
        let (offset, prime) = FNV1A;
        let mut h = offset;
        for &b in data {
            h ^= u64::from(b);
            h = h.wrapping_mul(prime);
        }
        assert_eq!(
            finish_fingerprint(h, data.len() as u64),
            content_fingerprint(data)
        );
    }
}
