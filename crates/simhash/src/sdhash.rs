//! An sdhash-style similarity digest (Roussev, "Data Fingerprinting with
//! Similarity Digests", 2010).
//!
//! The paper's second primary indicator (§III-B) compares the sdhash
//! digests of a file before and after modification: a score of 100 means
//! the contents are almost surely homologous, while "a confidence score of
//! 0 is statistically comparable to that of two blobs of random data" —
//! which is exactly what encryption produces. sdhash is also unable to
//! produce digests for very small inputs, a limitation the evaluation leans
//! on (§V-C: files under 512 bytes defeat the similarity indicator and
//! delay union detection).
//!
//! The implementation follows the published scheme:
//!
//! 1. slide a 64-byte feature window over the input, computing each
//!    window's empirical entropy incrementally in O(1) per position;
//! 2. assign each feature an entropy-derived *precedence rank*, discarding
//!    trivially weak (near-zero entropy) and near-saturated features;
//! 3. select *popular* features — those that are the leftmost rank-maximum
//!    of at least [`POPULARITY_THRESHOLD`] of the sliding 64-position
//!    neighborhoods containing them;
//! 4. hash each selected feature with SHA-1 and insert it into a sequence
//!    of 2048-bit Bloom filters, at most 160 features per filter;
//! 5. compare digests filter-by-filter: each filter of the shorter digest
//!    is scored against its best match in the other digest, and the scores
//!    are averaged into a 0–100 confidence.

use std::collections::VecDeque;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::bloom::BloomFilter;
use crate::hash::sha1_words;

/// The sliding feature size, in bytes.
pub const FEATURE_SIZE: usize = 64;
/// The popularity neighborhood size, in window positions.
pub const POPULARITY_WINDOW: usize = 64;
/// A feature must win at least this many neighborhoods to be selected.
pub const POPULARITY_THRESHOLD: u32 = 16;
/// Inputs shorter than this produce no digest (paper §V-C: "sdhash is
/// unable to generate similarity scores for such small files").
pub const MIN_FILE_SIZE: usize = 512;

/// Entropy ranks are scaled to 0..=1000 (6 bits max for 64-byte windows).
const ENTROPY_SCALE: u32 = 1000;
/// Features with scaled entropy below this are too weak to be
/// discriminating (long runs, padding).
const MIN_ENTROPY: u32 = 100;
/// Features with scaled entropy above this are near-saturated and excluded
/// (sdhash's guard against header/table artifacts).
const MAX_ENTROPY: u32 = 990;

/// A similarity digest: a sequence of Bloom filters summarizing the input's
/// statistically improbable features.
///
/// # Examples
///
/// ```
/// use cryptodrop_simhash::SdDigest;
///
/// let doc: Vec<u8> = (0..4096u32)
///     .flat_map(|i| format!("paragraph {i} of the report\n").into_bytes())
///     .collect();
/// let digest = SdDigest::compute(&doc).expect("large enough input");
/// assert_eq!(digest.similarity(&digest), 100);
///
/// // Tiny inputs yield no digest at all:
/// assert!(SdDigest::compute(&doc[..256]).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdDigest {
    filters: Vec<BloomFilter>,
    features: usize,
    input_len: usize,
}

impl SdDigest {
    /// Computes the digest of `data`.
    ///
    /// Returns `None` when the input is shorter than [`MIN_FILE_SIZE`] or
    /// contains no selectable features (e.g. a constant buffer), matching
    /// sdhash's refusal to digest inputs it cannot characterize.
    pub fn compute(data: &[u8]) -> Option<SdDigest> {
        Self::compute_with_cache(data).map(|(digest, _)| digest)
    }

    /// Computes the digest together with a [`FeatureCache`] enabling later
    /// incremental recomputation via [`SdDigest::recompute_dirty`].
    ///
    /// Returns `None` under the same conditions as [`SdDigest::compute`].
    pub fn compute_with_cache(data: &[u8]) -> Option<(SdDigest, FeatureCache)> {
        if data.len() < MIN_FILE_SIZE {
            return None;
        }
        let ranks = precedence_ranks(data);
        let features: Vec<CachedFeature> = select_popular(&ranks)
            .into_iter()
            .map(|idx| CachedFeature {
                pos: idx as u32,
                words: sha1_words(&data[idx..idx + FEATURE_SIZE]),
            })
            .collect();
        let digest = build_digest(&features, data.len())?;
        Some((
            digest,
            FeatureCache {
                features,
                input_len: data.len(),
            },
        ))
    }

    /// Recomputes the digest of `data` given a [`FeatureCache`] from a
    /// previous content state and the byte extents that changed since.
    ///
    /// Features are re-selected only inside the dirty windows plus the
    /// rolling horizon (`FEATURE_SIZE − 1` window positions back for ranks,
    /// a further `POPULARITY_WINDOW − 1` each way for popularity); the
    /// unchanged feature runs are spliced from the cache without re-hashing.
    /// The result is **bit-identical** to a from-scratch
    /// [`SdDigest::compute`] of `data` — precedence ranks use an exact
    /// fixed-point accumulator, so a windowed recompute cannot drift from a
    /// full pass.
    ///
    /// Caller contract: every byte of `data` that differs from the cached
    /// content (at the same offset) lies inside some `(start, end)` extent,
    /// `data` is no shorter than the cached input, and any tail growth is
    /// covered by an extent. Returns `None` when `data` shrank (callers
    /// should fall back to a full recompute), is shorter than
    /// [`MIN_FILE_SIZE`], or no features remain after the splice.
    pub fn recompute_dirty(
        cache: &FeatureCache,
        data: &[u8],
        dirty: &[(usize, usize)],
    ) -> Option<(SdDigest, FeatureCache)> {
        let n = data.len();
        if n < MIN_FILE_SIZE || n < cache.input_len {
            return None;
        }
        let windows = n - FEATURE_SIZE + 1;
        let win = POPULARITY_WINDOW.min(windows);
        debug_assert!(win == POPULARITY_WINDOW, "MIN_FILE_SIZE keeps windows >= 64");

        // A changed byte range [s, e) alters ranks of window positions
        // [s − (FEATURE_SIZE−1), e), and popularity a further win−1
        // positions on each side of those.
        let horizon = (FEATURE_SIZE - 1) + (win - 1);
        let mut regions: Vec<(usize, usize)> = Vec::new();
        for &(s, e) in dirty {
            let e = e.min(n);
            if s >= e {
                continue;
            }
            let lo = s.saturating_sub(horizon);
            let hi = (e + win - 1).min(windows);
            if lo < hi {
                regions.push((lo, hi));
            }
        }
        regions.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(regions.len());
        for (lo, hi) in regions {
            match merged.last_mut() {
                Some((_, last_hi)) if lo <= *last_hi => *last_hi = (*last_hi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }

        let mut fresh: Vec<CachedFeature> = Vec::new();
        for &(lo, hi) in &merged {
            region_features(data, windows, win, lo, hi, &mut fresh);
        }

        // Splice: cached features outside every recomputed region, merged in
        // position order with the freshly selected ones.
        let outside = |pos: usize| {
            merged
                .binary_search_by(|&(lo, hi)| {
                    if pos < lo {
                        std::cmp::Ordering::Greater
                    } else if pos >= hi {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .is_err()
        };
        let mut features = Vec::with_capacity(cache.features.len() + fresh.len());
        let mut fresh_iter = fresh.into_iter().peekable();
        for f in &cache.features {
            let pos = f.pos as usize;
            if pos >= windows || !outside(pos) {
                continue;
            }
            while let Some(nf) = fresh_iter.peek() {
                if (nf.pos as usize) < pos {
                    let nf = *nf;
                    fresh_iter.next();
                    features.push(nf);
                } else {
                    break;
                }
            }
            features.push(*f);
        }
        features.extend(fresh_iter);

        let digest = build_digest(&features, n)?;
        Some((
            digest,
            FeatureCache {
                features,
                input_len: n,
            },
        ))
    }

    /// The similarity confidence between two digests, 0–100.
    ///
    /// 100 indicates a high likelihood the inputs are homologous; 0 is
    /// "statistically comparable to two blobs of random data".
    pub fn similarity(&self, other: &SdDigest) -> u32 {
        let (short, long) = if self.filters.len() <= other.filters.len() {
            (self, other)
        } else {
            (other, self)
        };
        // Weight each filter's best match by its feature count so a
        // sparsely-filled trailing filter cannot dominate the average.
        let mut total = 0u64;
        let mut weight = 0u64;
        for f in &short.filters {
            if f.features() == 0 {
                continue;
            }
            let best = long.filters.iter().map(|g| f.score(g)).max().unwrap_or(0);
            total += best as u64 * f.features() as u64;
            weight += f.features() as u64;
        }
        total.checked_div(weight).unwrap_or(0) as u32
    }

    /// The number of selected features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// The number of Bloom filters in the digest.
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// The length of the digested input, in bytes.
    pub fn input_len(&self) -> usize {
        self.input_len
    }
}

/// One selected feature retained for incremental recomputation: its window
/// position and its SHA-1 words (so splicing never re-hashes unchanged
/// features).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CachedFeature {
    pos: u32,
    words: [u32; 5],
}

/// The selected-feature list behind a digest, kept alongside the snapshot
/// so [`SdDigest::recompute_dirty`] can splice unchanged feature runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureCache {
    features: Vec<CachedFeature>,
    input_len: usize,
}

impl FeatureCache {
    /// The length of the input the cache describes, in bytes.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// The number of cached features.
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }
}

/// Packs a sorted feature list into the Bloom-filter sequence (at most 160
/// features per filter). Returns `None` for an empty list, matching
/// [`SdDigest::compute`]'s refusal to emit empty digests.
fn build_digest(features: &[CachedFeature], input_len: usize) -> Option<SdDigest> {
    if features.is_empty() {
        return None;
    }
    let mut filters = vec![BloomFilter::new()];
    for f in features {
        if filters.last().expect("non-empty").is_full() {
            filters.push(BloomFilter::new());
        }
        filters.last_mut().expect("non-empty").insert(&f.words);
    }
    Some(SdDigest {
        filters,
        features: features.len(),
        input_len,
    })
}

/// 32.32 fixed-point scale for the window-entropy accumulator. Integer
/// accumulation is exact, so a recompute that starts mid-file produces the
/// same per-window sums — bit for bit — as a full left-to-right pass, which
/// is what makes windowed re-selection safe to splice.
const RANK_FX: f64 = (1u64 << 32) as f64;

/// `round(c · log2(c) · 2^32)` for counts 0..=64.
fn clog_fx() -> &'static [i64; FEATURE_SIZE + 1] {
    static TABLE: OnceLock<[i64; FEATURE_SIZE + 1]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0i64; FEATURE_SIZE + 1];
        for (c, slot) in t.iter_mut().enumerate().skip(2) {
            *slot = (c as f64 * (c as f64).log2() * RANK_FX).round() as i64;
        }
        t
    })
}

/// Computes each 64-byte window's precedence rank in O(n).
///
/// Window entropy is maintained incrementally: with `S = Σ c·log2(c)` over
/// the window's byte counts (in exact fixed point), `H = log2(W) − S/W`,
/// and sliding the window adjusts `S` by two table lookups.
fn precedence_ranks(data: &[u8]) -> Vec<u32> {
    let n = data.len();
    debug_assert!(n >= FEATURE_SIZE);
    ranks_in(data, 0, n - FEATURE_SIZE + 1)
}

/// Precedence ranks for window positions `lo..hi` only (requires
/// `hi + FEATURE_SIZE − 1 <= data.len()`). Exactly equal to the
/// corresponding slice of [`precedence_ranks`] thanks to the fixed-point
/// accumulator.
fn ranks_in(data: &[u8], lo: usize, hi: usize) -> Vec<u32> {
    debug_assert!(lo < hi && hi + FEATURE_SIZE - 1 <= data.len());
    let clog = clog_fx();
    let mut counts = [0usize; 256];
    let mut s = 0i64;
    for &b in &data[lo..lo + FEATURE_SIZE] {
        let c = counts[b as usize];
        s += clog[c + 1] - clog[c];
        counts[b as usize] = c + 1;
    }
    let w = FEATURE_SIZE as f64;
    let max_h = w.log2(); // 6 bits

    let mut ranks = Vec::with_capacity(hi - lo);
    for i in lo..hi {
        if i > lo {
            // Slide: remove data[i-1], add data[i + FEATURE_SIZE - 1].
            let out = data[i - 1] as usize;
            let c = counts[out];
            s += clog[c - 1] - clog[c];
            counts[out] = c - 1;
            let inc = data[i + FEATURE_SIZE - 1] as usize;
            let c = counts[inc];
            s += clog[c + 1] - clog[c];
            counts[inc] = c + 1;
        }
        let h = (max_h - (s as f64 / RANK_FX) / w).max(0.0);
        let scaled = ((h / max_h) * ENTROPY_SCALE as f64).round() as u32;
        ranks.push(rank_of(scaled.min(ENTROPY_SCALE)));
    }
    ranks
}

/// Re-selects features for window positions `lo..hi` of `data`, appending
/// them to `out` in position order.
///
/// Replicates [`select_popular`]'s window-counting rule exactly, restricted
/// to the complete neighborhoods that can credit a position in the region:
/// window starts in `[lo − (win−1), min(hi − 1, windows − win)]`.
fn region_features(
    data: &[u8],
    windows: usize,
    win: usize,
    lo: usize,
    hi: usize,
    out: &mut Vec<CachedFeature>,
) {
    debug_assert!(lo < hi && hi <= windows && win <= windows);
    let r_lo = lo.saturating_sub(win - 1);
    let r_hi = (hi + win - 1).min(windows);
    let ranks = ranks_in(data, r_lo, r_hi);
    let q_hi = (hi - 1).min(windows - win);
    let mut pop = vec![0u32; hi - lo];
    let mut deque: VecDeque<usize> = VecDeque::new();
    if q_hi + win > r_lo {
        for i in r_lo..(q_hi + win) {
            let ri = i - r_lo;
            // Maintain decreasing ranks; equal ranks keep the earlier index
            // at the front so the leftmost maximum wins (as in
            // `select_popular`).
            while let Some(&back) = deque.back() {
                if ranks[back] < ranks[ri] {
                    deque.pop_back();
                } else {
                    break;
                }
            }
            deque.push_back(ri);
            if i + 1 >= r_lo + win {
                let q = i + 1 - win; // absolute start of the complete window
                while let Some(&front) = deque.front() {
                    if front + r_lo < q {
                        deque.pop_front();
                    } else {
                        break;
                    }
                }
                if let Some(&front) = deque.front() {
                    let p = front + r_lo;
                    if p >= lo && p < hi {
                        pop[p - lo] += 1;
                    }
                }
            }
        }
    }
    for p in lo..hi {
        if ranks[p - r_lo] > 0 && pop[p - lo] >= POPULARITY_THRESHOLD {
            out.push(CachedFeature {
                pos: p as u32,
                words: sha1_words(&data[p..p + FEATURE_SIZE]),
            });
        }
    }
}

/// Maps a scaled entropy value to a precedence rank; 0 means "never
/// select". The rank peaks in the upper-middle entropy range where features
/// are most discriminating, mirroring the shape of sdhash's empirical
/// precedence table.
fn rank_of(scaled_entropy: u32) -> u32 {
    if !(MIN_ENTROPY..=MAX_ENTROPY).contains(&scaled_entropy) {
        return 0;
    }
    ENTROPY_SCALE - (650i64 - scaled_entropy as i64).unsigned_abs() as u32
}

/// Selects the indices of popular features: for every length-64 run of
/// consecutive window positions, the leftmost position with maximal rank
/// gets a popularity point; positions with at least
/// [`POPULARITY_THRESHOLD`] points (and nonzero rank) are selected.
///
/// Implemented with a monotonic deque for O(n) total work.
fn select_popular(ranks: &[u32]) -> Vec<usize> {
    let n = ranks.len();
    let mut popularity = vec![0u32; n];
    let win = POPULARITY_WINDOW.min(n);
    let mut deque: VecDeque<usize> = VecDeque::new();
    for i in 0..n {
        // Maintain decreasing ranks; equal ranks keep the earlier index at
        // the front so the leftmost maximum wins.
        while let Some(&back) = deque.back() {
            if ranks[back] < ranks[i] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        if let Some(&front) = deque.front() {
            if front + win == i + 1 && deque.len() > 1 {
                // front leaving the window next iteration is handled below.
            }
        }
        // Window [i + 1 - win, i] is complete once i + 1 >= win.
        if i + 1 >= win {
            let start = i + 1 - win;
            while let Some(&front) = deque.front() {
                if front < start {
                    deque.pop_front();
                } else {
                    break;
                }
            }
            if let Some(&front) = deque.front() {
                popularity[front] += 1;
            }
        }
    }
    (0..n)
        .filter(|&i| ranks[i] > 0 && popularity[i] >= POPULARITY_THRESHOLD)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift bytes.
    fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    /// English-ish structured text.
    fn text_bytes(n: usize) -> Vec<u8> {
        let para = b"The quarterly report shows steady growth in all regions. \
                     Management expects the trend to continue through the next \
                     fiscal year, barring unusual market conditions. ";
        para.iter().cycle().take(n).copied().collect()
    }

    #[test]
    fn small_inputs_have_no_digest() {
        assert!(SdDigest::compute(b"").is_none());
        assert!(SdDigest::compute(&text_bytes(511)).is_none());
        assert!(SdDigest::compute(&text_bytes(512)).is_some());
    }

    #[test]
    fn constant_input_has_no_digest() {
        assert!(SdDigest::compute(&vec![0u8; 4096]).is_none());
        assert!(SdDigest::compute(&vec![0xAA; 4096]).is_none());
    }

    #[test]
    fn self_similarity_is_100() {
        for data in [text_bytes(2048), random_bytes(2048, 7)] {
            let d = SdDigest::compute(&data).unwrap();
            assert_eq!(d.similarity(&d), 100);
        }
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = SdDigest::compute(&text_bytes(4096)).unwrap();
        let b = SdDigest::compute(&random_bytes(4096, 3)).unwrap();
        assert_eq!(a.similarity(&b), b.similarity(&a));
    }

    #[test]
    fn random_blobs_score_near_zero() {
        let a = SdDigest::compute(&random_bytes(8192, 1)).unwrap();
        let b = SdDigest::compute(&random_bytes(8192, 2)).unwrap();
        let s = a.similarity(&b);
        assert!(s <= 5, "independent random blobs scored {s}");
    }

    #[test]
    fn encryption_destroys_similarity() {
        // The indicator's core scenario (paper §III-B): plaintext vs its
        // "ciphertext" should score ~0.
        let plain = text_bytes(8192);
        let key = random_bytes(plain.len(), 99);
        let cipher: Vec<u8> = plain.iter().zip(&key).map(|(p, k)| p ^ k).collect();
        let dp = SdDigest::compute(&plain).unwrap();
        let dc = SdDigest::compute(&cipher).unwrap();
        let s = dp.similarity(&dc);
        assert!(s <= 5, "plaintext vs ciphertext scored {s}");
    }

    #[test]
    fn small_edits_keep_high_similarity() {
        let base = text_bytes(8192);
        let mut edited = base.clone();
        // Flip a handful of bytes scattered through the file.
        for i in (0..edited.len()).step_by(1500) {
            edited[i] = edited[i].wrapping_add(13);
        }
        let a = SdDigest::compute(&base).unwrap();
        let b = SdDigest::compute(&edited).unwrap();
        let s = a.similarity(&b);
        assert!(s >= 50, "lightly edited file scored only {s}");
    }

    #[test]
    fn appended_content_keeps_similarity() {
        let base = text_bytes(8192);
        let mut longer = base.clone();
        longer.extend_from_slice(&text_bytes(1024));
        let a = SdDigest::compute(&base).unwrap();
        let b = SdDigest::compute(&longer).unwrap();
        assert!(a.similarity(&b) >= 60);
    }

    #[test]
    fn unrelated_text_scores_low() {
        let a = SdDigest::compute(&text_bytes(8192)).unwrap();
        let other: Vec<u8> = b"zx81 qwerty dvorak colemak azerty keyboard layouts \
                               differ substantially in their letter placements!!! "
            .iter()
            .cycle()
            .take(8192)
            .copied()
            .collect();
        let b = SdDigest::compute(&other).unwrap();
        let s = a.similarity(&b);
        assert!(s < 40, "unrelated periodic texts scored {s}");
    }

    #[test]
    fn digest_metadata() {
        let data = text_bytes(4096);
        let d = SdDigest::compute(&data).unwrap();
        assert!(d.features() > 0);
        assert!(d.filter_count() >= 1);
        assert_eq!(d.input_len(), 4096);
    }

    #[test]
    fn large_input_spills_into_multiple_filters() {
        let d = SdDigest::compute(&random_bytes(256 * 1024, 5)).unwrap();
        assert!(
            d.filter_count() > 1,
            "256 KiB of random data should exceed one filter ({} features)",
            d.features()
        );
    }

    #[test]
    fn rank_of_boundaries() {
        assert_eq!(rank_of(0), 0);
        assert_eq!(rank_of(MIN_ENTROPY - 1), 0);
        assert!(rank_of(MIN_ENTROPY) > 0);
        assert!(rank_of(650) > rank_of(400));
        assert!(rank_of(650) > rank_of(MAX_ENTROPY));
        assert_eq!(rank_of(MAX_ENTROPY + 1), 0);
        assert_eq!(rank_of(ENTROPY_SCALE), 0);
    }

    #[test]
    fn select_popular_degenerate_inputs() {
        assert!(select_popular(&[]).is_empty());
        assert!(select_popular(&[0; 10]).is_empty());
        // A single dominant rank in a long run is selected.
        let mut ranks = vec![500u32; 200];
        ranks[100] = 900;
        let sel = select_popular(&ranks);
        assert!(sel.contains(&100));
    }

    #[test]
    fn compute_with_cache_matches_compute() {
        for data in [text_bytes(2048), random_bytes(4096, 21)] {
            let plain = SdDigest::compute(&data).unwrap();
            let (cached, cache) = SdDigest::compute_with_cache(&data).unwrap();
            assert_eq!(plain, cached);
            assert_eq!(cache.feature_count(), cached.features());
            assert_eq!(cache.input_len(), data.len());
        }
    }

    #[test]
    fn empty_dirty_set_rebuilds_identical_digest() {
        let data = text_bytes(4096);
        let (digest, cache) = SdDigest::compute_with_cache(&data).unwrap();
        let (rebuilt, cache2) = SdDigest::recompute_dirty(&cache, &data, &[]).unwrap();
        assert_eq!(digest, rebuilt);
        assert_eq!(cache, cache2);
    }

    #[test]
    fn shrunk_input_refuses_incremental() {
        let data = text_bytes(4096);
        let (_, cache) = SdDigest::compute_with_cache(&data).unwrap();
        assert!(SdDigest::recompute_dirty(&cache, &data[..2048], &[(0, 2048)]).is_none());
    }

    /// Property test: for random dirty-extent patterns (overwrites and tail
    /// growth), the spliced digest and feature cache are bit-identical to a
    /// from-scratch recompute of the final bytes — the incremental-vs-full
    /// equivalence the engine's close path relies on.
    #[test]
    fn dirty_recompute_matches_from_scratch() {
        let mut seed = 0xD1537_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..40 {
            // Mix structured and random content so both feature-rich and
            // feature-poor neighborhoods get exercised.
            let len = MIN_FILE_SIZE + (next() as usize % 8192);
            let mut data = if case % 2 == 0 {
                text_bytes(len)
            } else {
                let mut d = text_bytes(len);
                let r = random_bytes(len / 3, next() | 1);
                d[..r.len()].copy_from_slice(&r);
                d
            };
            let (_, cache) = match SdDigest::compute_with_cache(&data) {
                Some(v) => v,
                None => continue,
            };
            let mut dirty: Vec<(usize, usize)> = Vec::new();
            for _ in 0..1 + next() % 5 {
                if next() % 5 == 0 {
                    // Tail growth, recorded as a dirty extent.
                    let old_len = data.len();
                    let extra: Vec<u8> = (0..1 + next() as usize % 700).map(|_| next() as u8).collect();
                    data.extend_from_slice(&extra);
                    dirty.push((old_len, data.len()));
                } else {
                    let start = next() as usize % data.len();
                    let end = (start + 1 + next() as usize % 300).min(data.len());
                    for b in &mut data[start..end] {
                        *b = next() as u8;
                    }
                    dirty.push((start, end));
                }
            }
            let spliced = SdDigest::recompute_dirty(&cache, &data, &dirty);
            let scratch = SdDigest::compute_with_cache(&data);
            match (spliced, scratch) {
                (Some((d, c)), Some((d2, c2))) => {
                    assert_eq!(d, d2, "case {case}: spliced digest must equal from-scratch");
                    assert_eq!(c, c2, "case {case}: spliced cache must equal from-scratch");
                    assert_eq!(d.similarity(&d2), 100);
                }
                (None, None) => {}
                (a, b) => panic!(
                    "case {case}: incremental {:?} vs full {:?} disagree on digestibility",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
    }

    #[test]
    fn incremental_entropy_matches_direct() {
        // Cross-check precedence_ranks' incremental entropy against a
        // direct per-window computation.
        let data = random_bytes(1024, 11);
        let ranks = precedence_ranks(&data);
        for (i, &r) in ranks.iter().enumerate().step_by(97) {
            let window = &data[i..i + FEATURE_SIZE];
            let mut counts = [0u32; 256];
            for &b in window {
                counts[b as usize] += 1;
            }
            let mut h = 0.0f64;
            for &c in counts.iter() {
                if c > 0 {
                    let p = c as f64 / FEATURE_SIZE as f64;
                    h -= p * p.log2();
                }
            }
            let scaled = ((h / 6.0) * 1000.0).round() as u32;
            assert_eq!(r, rank_of(scaled.min(1000)), "window {i}");
        }
    }
}
