//! An sdhash-style similarity digest (Roussev, "Data Fingerprinting with
//! Similarity Digests", 2010).
//!
//! The paper's second primary indicator (§III-B) compares the sdhash
//! digests of a file before and after modification: a score of 100 means
//! the contents are almost surely homologous, while "a confidence score of
//! 0 is statistically comparable to that of two blobs of random data" —
//! which is exactly what encryption produces. sdhash is also unable to
//! produce digests for very small inputs, a limitation the evaluation leans
//! on (§V-C: files under 512 bytes defeat the similarity indicator and
//! delay union detection).
//!
//! The implementation follows the published scheme:
//!
//! 1. slide a 64-byte feature window over the input, computing each
//!    window's empirical entropy incrementally in O(1) per position;
//! 2. assign each feature an entropy-derived *precedence rank*, discarding
//!    trivially weak (near-zero entropy) and near-saturated features;
//! 3. select *popular* features — those that are the leftmost rank-maximum
//!    of at least [`POPULARITY_THRESHOLD`] of the sliding 64-position
//!    neighborhoods containing them;
//! 4. hash each selected feature with SHA-1 and insert it into a sequence
//!    of 2048-bit Bloom filters, at most 160 features per filter;
//! 5. compare digests filter-by-filter: each filter of the shorter digest
//!    is scored against its best match in the other digest, and the scores
//!    are averaged into a 0–100 confidence.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::bloom::BloomFilter;
use crate::hash::sha1_words;

/// The sliding feature size, in bytes.
pub const FEATURE_SIZE: usize = 64;
/// The popularity neighborhood size, in window positions.
pub const POPULARITY_WINDOW: usize = 64;
/// A feature must win at least this many neighborhoods to be selected.
pub const POPULARITY_THRESHOLD: u32 = 16;
/// Inputs shorter than this produce no digest (paper §V-C: "sdhash is
/// unable to generate similarity scores for such small files").
pub const MIN_FILE_SIZE: usize = 512;

/// Entropy ranks are scaled to 0..=1000 (6 bits max for 64-byte windows).
const ENTROPY_SCALE: u32 = 1000;
/// Features with scaled entropy below this are too weak to be
/// discriminating (long runs, padding).
const MIN_ENTROPY: u32 = 100;
/// Features with scaled entropy above this are near-saturated and excluded
/// (sdhash's guard against header/table artifacts).
const MAX_ENTROPY: u32 = 990;

/// A similarity digest: a sequence of Bloom filters summarizing the input's
/// statistically improbable features.
///
/// # Examples
///
/// ```
/// use cryptodrop_simhash::SdDigest;
///
/// let doc: Vec<u8> = (0..4096u32)
///     .flat_map(|i| format!("paragraph {i} of the report\n").into_bytes())
///     .collect();
/// let digest = SdDigest::compute(&doc).expect("large enough input");
/// assert_eq!(digest.similarity(&digest), 100);
///
/// // Tiny inputs yield no digest at all:
/// assert!(SdDigest::compute(&doc[..256]).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdDigest {
    filters: Vec<BloomFilter>,
    features: usize,
    input_len: usize,
}

impl SdDigest {
    /// Computes the digest of `data`.
    ///
    /// Returns `None` when the input is shorter than [`MIN_FILE_SIZE`] or
    /// contains no selectable features (e.g. a constant buffer), matching
    /// sdhash's refusal to digest inputs it cannot characterize.
    pub fn compute(data: &[u8]) -> Option<SdDigest> {
        if data.len() < MIN_FILE_SIZE {
            return None;
        }
        let ranks = precedence_ranks(data);
        let selected = select_popular(&ranks);
        let mut filters = vec![BloomFilter::new()];
        let mut features = 0usize;
        for idx in selected {
            let words = sha1_words(&data[idx..idx + FEATURE_SIZE]);
            if filters.last().expect("non-empty").is_full() {
                filters.push(BloomFilter::new());
            }
            filters.last_mut().expect("non-empty").insert(&words);
            features += 1;
        }
        if features == 0 {
            return None;
        }
        Some(SdDigest {
            filters,
            features,
            input_len: data.len(),
        })
    }

    /// The similarity confidence between two digests, 0–100.
    ///
    /// 100 indicates a high likelihood the inputs are homologous; 0 is
    /// "statistically comparable to two blobs of random data".
    pub fn similarity(&self, other: &SdDigest) -> u32 {
        let (short, long) = if self.filters.len() <= other.filters.len() {
            (self, other)
        } else {
            (other, self)
        };
        // Weight each filter's best match by its feature count so a
        // sparsely-filled trailing filter cannot dominate the average.
        let mut total = 0u64;
        let mut weight = 0u64;
        for f in &short.filters {
            if f.features() == 0 {
                continue;
            }
            let best = long.filters.iter().map(|g| f.score(g)).max().unwrap_or(0);
            total += best as u64 * f.features() as u64;
            weight += f.features() as u64;
        }
        total.checked_div(weight).unwrap_or(0) as u32
    }

    /// The number of selected features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// The number of Bloom filters in the digest.
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// The length of the digested input, in bytes.
    pub fn input_len(&self) -> usize {
        self.input_len
    }
}

/// Computes each 64-byte window's precedence rank in O(n).
///
/// Window entropy is maintained incrementally: with `S = Σ c·log2(c)` over
/// the window's byte counts, `H = log2(W) − S/W`, and sliding the window
/// adjusts `S` by two table lookups.
fn precedence_ranks(data: &[u8]) -> Vec<u32> {
    let n = data.len();
    debug_assert!(n >= FEATURE_SIZE);
    let windows = n - FEATURE_SIZE + 1;

    // clog[c] = c * log2(c), for counts 0..=64.
    let clog: Vec<f64> = (0..=FEATURE_SIZE)
        .map(|c| {
            if c == 0 {
                0.0
            } else {
                c as f64 * (c as f64).log2()
            }
        })
        .collect();

    let mut counts = [0usize; 256];
    let mut s = 0.0f64;
    for &b in &data[..FEATURE_SIZE] {
        let c = counts[b as usize];
        s += clog[c + 1] - clog[c];
        counts[b as usize] = c + 1;
    }
    let w = FEATURE_SIZE as f64;
    let max_h = w.log2(); // 6 bits

    let mut ranks = Vec::with_capacity(windows);
    let mut i = 0usize;
    loop {
        let h = (max_h - s / w).max(0.0);
        let scaled = ((h / max_h) * ENTROPY_SCALE as f64).round() as u32;
        ranks.push(rank_of(scaled.min(ENTROPY_SCALE)));
        if i + FEATURE_SIZE >= n {
            break;
        }
        // Slide: remove data[i], add data[i + FEATURE_SIZE].
        let out = data[i] as usize;
        let c = counts[out];
        s += clog[c - 1] - clog[c];
        counts[out] = c - 1;
        let inc = data[i + FEATURE_SIZE] as usize;
        let c = counts[inc];
        s += clog[c + 1] - clog[c];
        counts[inc] = c + 1;
        i += 1;
    }
    ranks
}

/// Maps a scaled entropy value to a precedence rank; 0 means "never
/// select". The rank peaks in the upper-middle entropy range where features
/// are most discriminating, mirroring the shape of sdhash's empirical
/// precedence table.
fn rank_of(scaled_entropy: u32) -> u32 {
    if !(MIN_ENTROPY..=MAX_ENTROPY).contains(&scaled_entropy) {
        return 0;
    }
    ENTROPY_SCALE - (650i64 - scaled_entropy as i64).unsigned_abs() as u32
}

/// Selects the indices of popular features: for every length-64 run of
/// consecutive window positions, the leftmost position with maximal rank
/// gets a popularity point; positions with at least
/// [`POPULARITY_THRESHOLD`] points (and nonzero rank) are selected.
///
/// Implemented with a monotonic deque for O(n) total work.
fn select_popular(ranks: &[u32]) -> Vec<usize> {
    let n = ranks.len();
    let mut popularity = vec![0u32; n];
    let win = POPULARITY_WINDOW.min(n);
    let mut deque: VecDeque<usize> = VecDeque::new();
    for i in 0..n {
        // Maintain decreasing ranks; equal ranks keep the earlier index at
        // the front so the leftmost maximum wins.
        while let Some(&back) = deque.back() {
            if ranks[back] < ranks[i] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        if let Some(&front) = deque.front() {
            if front + win == i + 1 && deque.len() > 1 {
                // front leaving the window next iteration is handled below.
            }
        }
        // Window [i + 1 - win, i] is complete once i + 1 >= win.
        if i + 1 >= win {
            let start = i + 1 - win;
            while let Some(&front) = deque.front() {
                if front < start {
                    deque.pop_front();
                } else {
                    break;
                }
            }
            if let Some(&front) = deque.front() {
                popularity[front] += 1;
            }
        }
    }
    (0..n)
        .filter(|&i| ranks[i] > 0 && popularity[i] >= POPULARITY_THRESHOLD)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift bytes.
    fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    /// English-ish structured text.
    fn text_bytes(n: usize) -> Vec<u8> {
        let para = b"The quarterly report shows steady growth in all regions. \
                     Management expects the trend to continue through the next \
                     fiscal year, barring unusual market conditions. ";
        para.iter().cycle().take(n).copied().collect()
    }

    #[test]
    fn small_inputs_have_no_digest() {
        assert!(SdDigest::compute(b"").is_none());
        assert!(SdDigest::compute(&text_bytes(511)).is_none());
        assert!(SdDigest::compute(&text_bytes(512)).is_some());
    }

    #[test]
    fn constant_input_has_no_digest() {
        assert!(SdDigest::compute(&vec![0u8; 4096]).is_none());
        assert!(SdDigest::compute(&vec![0xAA; 4096]).is_none());
    }

    #[test]
    fn self_similarity_is_100() {
        for data in [text_bytes(2048), random_bytes(2048, 7)] {
            let d = SdDigest::compute(&data).unwrap();
            assert_eq!(d.similarity(&d), 100);
        }
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = SdDigest::compute(&text_bytes(4096)).unwrap();
        let b = SdDigest::compute(&random_bytes(4096, 3)).unwrap();
        assert_eq!(a.similarity(&b), b.similarity(&a));
    }

    #[test]
    fn random_blobs_score_near_zero() {
        let a = SdDigest::compute(&random_bytes(8192, 1)).unwrap();
        let b = SdDigest::compute(&random_bytes(8192, 2)).unwrap();
        let s = a.similarity(&b);
        assert!(s <= 5, "independent random blobs scored {s}");
    }

    #[test]
    fn encryption_destroys_similarity() {
        // The indicator's core scenario (paper §III-B): plaintext vs its
        // "ciphertext" should score ~0.
        let plain = text_bytes(8192);
        let key = random_bytes(plain.len(), 99);
        let cipher: Vec<u8> = plain.iter().zip(&key).map(|(p, k)| p ^ k).collect();
        let dp = SdDigest::compute(&plain).unwrap();
        let dc = SdDigest::compute(&cipher).unwrap();
        let s = dp.similarity(&dc);
        assert!(s <= 5, "plaintext vs ciphertext scored {s}");
    }

    #[test]
    fn small_edits_keep_high_similarity() {
        let base = text_bytes(8192);
        let mut edited = base.clone();
        // Flip a handful of bytes scattered through the file.
        for i in (0..edited.len()).step_by(1500) {
            edited[i] = edited[i].wrapping_add(13);
        }
        let a = SdDigest::compute(&base).unwrap();
        let b = SdDigest::compute(&edited).unwrap();
        let s = a.similarity(&b);
        assert!(s >= 50, "lightly edited file scored only {s}");
    }

    #[test]
    fn appended_content_keeps_similarity() {
        let base = text_bytes(8192);
        let mut longer = base.clone();
        longer.extend_from_slice(&text_bytes(1024));
        let a = SdDigest::compute(&base).unwrap();
        let b = SdDigest::compute(&longer).unwrap();
        assert!(a.similarity(&b) >= 60);
    }

    #[test]
    fn unrelated_text_scores_low() {
        let a = SdDigest::compute(&text_bytes(8192)).unwrap();
        let other: Vec<u8> = b"zx81 qwerty dvorak colemak azerty keyboard layouts \
                               differ substantially in their letter placements!!! "
            .iter()
            .cycle()
            .take(8192)
            .copied()
            .collect();
        let b = SdDigest::compute(&other).unwrap();
        let s = a.similarity(&b);
        assert!(s < 40, "unrelated periodic texts scored {s}");
    }

    #[test]
    fn digest_metadata() {
        let data = text_bytes(4096);
        let d = SdDigest::compute(&data).unwrap();
        assert!(d.features() > 0);
        assert!(d.filter_count() >= 1);
        assert_eq!(d.input_len(), 4096);
    }

    #[test]
    fn large_input_spills_into_multiple_filters() {
        let d = SdDigest::compute(&random_bytes(256 * 1024, 5)).unwrap();
        assert!(
            d.filter_count() > 1,
            "256 KiB of random data should exceed one filter ({} features)",
            d.features()
        );
    }

    #[test]
    fn rank_of_boundaries() {
        assert_eq!(rank_of(0), 0);
        assert_eq!(rank_of(MIN_ENTROPY - 1), 0);
        assert!(rank_of(MIN_ENTROPY) > 0);
        assert!(rank_of(650) > rank_of(400));
        assert!(rank_of(650) > rank_of(MAX_ENTROPY));
        assert_eq!(rank_of(MAX_ENTROPY + 1), 0);
        assert_eq!(rank_of(ENTROPY_SCALE), 0);
    }

    #[test]
    fn select_popular_degenerate_inputs() {
        assert!(select_popular(&[]).is_empty());
        assert!(select_popular(&[0; 10]).is_empty());
        // A single dominant rank in a long run is selected.
        let mut ranks = vec![500u32; 200];
        ranks[100] = 900;
        let sel = select_popular(&ranks);
        assert!(sel.contains(&100));
    }

    #[test]
    fn incremental_entropy_matches_direct() {
        // Cross-check precedence_ranks' incremental entropy against a
        // direct per-window computation.
        let data = random_bytes(1024, 11);
        let ranks = precedence_ranks(&data);
        for (i, &r) in ranks.iter().enumerate().step_by(97) {
            let window = &data[i..i + FEATURE_SIZE];
            let mut counts = [0u32; 256];
            for &b in window {
                counts[b as usize] += 1;
            }
            let mut h = 0.0f64;
            for &c in counts.iter() {
                if c > 0 {
                    let p = c as f64 / FEATURE_SIZE as f64;
                    h -= p * p.log2();
                }
            }
            let scaled = ((h / 6.0) * 1000.0).round() as u32;
            assert_eq!(r, rank_of(scaled.min(1000)), "window {i}");
        }
    }
}
