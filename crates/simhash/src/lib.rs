//! Similarity-preserving hashes for the CryptoDrop similarity indicator.
//!
//! CryptoDrop's second primary indicator (paper §III-B) measures how
//! *dissimilar* a file has become after modification: "strong encryption
//! should produce output that provides no information about the plaintext
//! content", so comparing the similarity digest of a file's previous
//! version against its new version should yield a near-zero score when
//! ransomware has transformed it, and a high score under ordinary edits.
//!
//! Two digest schemes are provided:
//!
//! * [`SdDigest`] — the sdhash scheme the paper selected (Roussev 2010):
//!   entropy-ranked 64-byte features packed into Bloom filters, scored
//!   0–100. Crucially, inputs under 512 bytes produce **no digest**, the
//!   limitation the paper's §V-C small-file analysis hinges on.
//! * [`CtphDigest`] — Kornblum's context-triggered piecewise hashing
//!   (ssdeep), provided for the similarity-scheme ablation benchmarks.
//!
//! # Examples
//!
//! ```
//! use cryptodrop_simhash::SdDigest;
//!
//! let report: Vec<u8> = (0..300u32)
//!     .flat_map(|i| format!("row {i}: revenue stable, costs declining\n").into_bytes())
//!     .collect();
//!
//! let before = SdDigest::compute(&report).unwrap();
//!
//! // An ordinary edit keeps the digests similar...
//! let mut edited = report.clone();
//! edited.extend_from_slice(b"appendix: updated figures\n");
//! let after_edit = SdDigest::compute(&edited).unwrap();
//! assert!(before.similarity(&after_edit) > 50);
//!
//! // ...while "encryption" (here a keyed byte scramble) zeroes it out.
//! let encrypted: Vec<u8> = report
//!     .iter()
//!     .enumerate()
//!     .map(|(i, b)| b ^ (i as u8).wrapping_mul(151).wrapping_add(43))
//!     .collect();
//! let after_enc = SdDigest::compute(&encrypted).unwrap();
//! assert!(before.similarity(&after_enc) <= 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod ctph;
pub mod fingerprint;
pub mod hash;
pub mod sdhash;

pub use bloom::BloomFilter;
pub use ctph::CtphDigest;
pub use fingerprint::content_fingerprint;
pub use sdhash::{FeatureCache, SdDigest, FEATURE_SIZE, MIN_FILE_SIZE};

/// Convenience: the sdhash similarity of two buffers, or `None` when either
/// side is too small (or too featureless) to digest — the exact condition
/// under which CryptoDrop's similarity indicator must abstain.
pub fn sdhash_similarity(before: &[u8], after: &[u8]) -> Option<u32> {
    let a = SdDigest::compute(before)?;
    let b = SdDigest::compute(after)?;
    Some(a.similarity(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_fn_abstains_on_small_inputs() {
        assert!(sdhash_similarity(b"tiny", b"also tiny").is_none());
        let big = vec![b'x'; 1024]; // constant: no features either
        assert!(sdhash_similarity(&big, &big).is_none());
    }

    #[test]
    fn convenience_fn_scores_real_content() {
        let doc: Vec<u8> = (0..200u32)
            .flat_map(|i| format!("clause {i} of the agreement\n").into_bytes())
            .collect();
        assert_eq!(sdhash_similarity(&doc, &doc), Some(100));
    }
}
