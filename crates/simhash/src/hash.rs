//! Hash primitives used by the similarity digests.
//!
//! Everything here is implemented from scratch (the reproduction mandate
//! includes substrates): a compact SHA-1 for feature hashing — sdhash hashes
//! each selected 64-byte feature with SHA-1 and uses the five 32-bit words
//! to index its Bloom filters — plus FNV-1a and the rolling hash used by the
//! CTPH (ssdeep-style) digest.
//!
//! SHA-1 is used here as a *fingerprint*, exactly as sdhash uses it; its
//! cryptographic weaknesses are irrelevant to similarity digests.

/// Computes the SHA-1 digest of `data` as five big-endian 32-bit words.
///
/// # Examples
///
/// ```
/// use cryptodrop_simhash::hash::sha1_words;
///
/// let words = sha1_words(b"abc");
/// assert_eq!(words[0], 0xa9993e36);
/// ```
pub fn sha1_words(data: &[u8]) -> [u32; 5] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Message padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h
}

/// The SHA-1 digest as a lowercase hex string (for tests and reports).
pub fn sha1_hex(data: &[u8]) -> String {
    sha1_words(data)
        .iter()
        .map(|w| format!("{w:08x}"))
        .collect()
}

/// 64-bit FNV-1a, used as the piecewise hash by the CTPH digest.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The ssdeep-style rolling hash: a window of the last 7 bytes whose value
/// changes cheaply as the window slides, used to pick content-defined
/// trigger points.
#[derive(Debug, Clone, Default)]
pub struct RollingHash {
    window: [u8; Self::WINDOW],
    pos: usize,
    h1: u32,
    h2: u32,
    h3: u32,
}

impl RollingHash {
    /// The rolling window size, as in ssdeep.
    pub const WINDOW: usize = 7;

    /// Creates an empty rolling hash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Slides one byte into the window and returns the updated hash value.
    pub fn roll(&mut self, byte: u8) -> u32 {
        let out = self.window[self.pos % Self::WINDOW];
        self.h2 = self
            .h2
            .wrapping_sub(self.h1)
            .wrapping_add(Self::WINDOW as u32 * byte as u32);
        self.h1 = self.h1.wrapping_add(byte as u32).wrapping_sub(out as u32);
        self.window[self.pos % Self::WINDOW] = byte;
        self.pos += 1;
        self.h3 = (self.h3 << 5) ^ (byte as u32);
        self.h1.wrapping_add(self.h2).wrapping_add(self.h3)
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha1_known_vectors() {
        // FIPS 180-1 test vectors.
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        let a_million: Vec<u8> = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1_hex(&a_million),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn sha1_padding_boundaries() {
        // Lengths straddling the 55/56/64-byte padding edges.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5Au8; len];
            // Self-consistency: incremental lengths give distinct digests.
            let h1 = sha1_hex(&data);
            let mut d2 = data.clone();
            d2.push(0);
            assert_ne!(h1, sha1_hex(&d2));
        }
    }

    #[test]
    fn fnv_distinguishes_and_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"hello"), fnv1a(b"hello"));
    }

    #[test]
    fn rolling_hash_is_windowed() {
        // After the window fills, the hash of the same trailing 7 bytes
        // differs only through h3's shift history; verify the additive parts
        // (h1) depend only on the window.
        let mut r1 = RollingHash::new();
        for b in b"XXXXXXXabcdefg" {
            r1.roll(*b);
        }
        let mut r2 = RollingHash::new();
        for b in b"YYYYYYYabcdefg" {
            r2.roll(*b);
        }
        // h1 component equality is not directly observable; assert instead
        // that rolling is deterministic and sensitive to recent bytes.
        let mut r3 = RollingHash::new();
        let mut last3 = 0;
        for b in b"XXXXXXXabcdefg" {
            last3 = r3.roll(*b);
        }
        let mut r4 = RollingHash::new();
        let mut last4 = 0;
        for b in b"XXXXXXXabcdefh" {
            last4 = r4.roll(*b);
        }
        assert_ne!(last3, last4);
        let mut r5 = RollingHash::new();
        let mut last5 = 0;
        for b in b"XXXXXXXabcdefg" {
            last5 = r5.roll(*b);
        }
        assert_eq!(last3, last5);
    }

    #[test]
    fn rolling_hash_reset() {
        let mut r = RollingHash::new();
        let first = r.roll(42);
        r.roll(17);
        r.reset();
        assert_eq!(r.roll(42), first);
    }
}
