//! Property-based tests for the similarity digests.

use cryptodrop_simhash::{sdhash_similarity, CtphDigest, SdDigest, MIN_FILE_SIZE};
use proptest::prelude::*;

/// Structured, compressible content: repeated phrases with a numeric
/// counter, like real documents.
fn structured(seed: u8, n: usize) -> Vec<u8> {
    (0..)
        .flat_map(|i| format!("record {i} tagged {seed} with stable contents here\n").into_bytes())
        .take(n)
        .collect()
}

proptest! {
    /// Digest computation never panics and small inputs always abstain.
    #[test]
    fn total_and_min_size(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let d = SdDigest::compute(&data);
        if data.len() < MIN_FILE_SIZE {
            prop_assert!(d.is_none());
        }
        let _ = CtphDigest::compute(&data);
    }

    /// Self-similarity is 100 whenever a digest exists.
    #[test]
    fn sd_self_similarity(seed in any::<u8>(), n in 512usize..8192) {
        let data = structured(seed, n);
        if let Some(d) = SdDigest::compute(&data) {
            prop_assert_eq!(d.similarity(&d), 100);
        }
        let c = CtphDigest::compute(&data);
        prop_assert_eq!(c.similarity(&c), 100);
    }

    /// Similarity is symmetric.
    #[test]
    fn sd_symmetry(a in any::<u8>(), b in any::<u8>(), n in 1024usize..4096) {
        let da = SdDigest::compute(&structured(a, n));
        let db = SdDigest::compute(&structured(b, n));
        if let (Some(da), Some(db)) = (da, db) {
            prop_assert_eq!(da.similarity(&db), db.similarity(&da));
        }
    }

    /// Scores always lie in 0..=100.
    #[test]
    fn scores_bounded(
        a in proptest::collection::vec(any::<u8>(), 512..4096),
        b in proptest::collection::vec(any::<u8>(), 512..4096),
    ) {
        if let Some(s) = sdhash_similarity(&a, &b) {
            prop_assert!(s <= 100);
        }
        let ca = CtphDigest::compute(&a);
        let cb = CtphDigest::compute(&b);
        prop_assert!(ca.similarity(&cb) <= 100);
    }

    /// Stream-encrypting structured content always collapses sdhash
    /// similarity to near zero — the invariant the detector relies on.
    #[test]
    fn encryption_collapses_similarity(seed in any::<u8>(), key in 1u64.., n in 2048usize..8192) {
        let plain = structured(seed, n);
        let mut s = key | 1;
        let cipher: Vec<u8> = plain
            .iter()
            .map(|b| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                b ^ (s >> 32) as u8
            })
            .collect();
        if let Some(score) = sdhash_similarity(&plain, &cipher) {
            prop_assert!(score <= 15, "ciphertext scored {score}");
        }
    }

    /// Digesting is deterministic.
    #[test]
    fn deterministic(data in proptest::collection::vec(any::<u8>(), 512..4096)) {
        prop_assert_eq!(SdDigest::compute(&data), SdDigest::compute(&data));
        prop_assert_eq!(CtphDigest::compute(&data), CtphDigest::compute(&data));
    }
}
