//! The copy-on-write shadow store.

// The store sits on the capture hot path of every destructive operation:
// a panic here poisons nothing (parking_lot) but still kills the
// operation that triggered it, so unwrap/expect are banned outright.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use cryptodrop_simhash::content_fingerprint;
use cryptodrop_telemetry::{JournalKind, Telemetry};
use cryptodrop_vfs::shadow::{MutationKind, PreImage, ShadowSink};
use cryptodrop_vfs::{BlobStore, FileId, ProcessId, VPath};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Shadow-store sizing knobs.
///
/// Validated by the core session builder (`ConfigError::ZeroShadowBudget`
/// for a zero byte budget); bare construction is fine for tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowConfig {
    /// Maximum bytes of *unique* pre-image content held (deduplicated
    /// blobs count once). Exceeding the budget evicts the oldest
    /// unpinned entries; pinned entries (families with nonzero
    /// reputation) are never evicted, even if the budget is overrun.
    pub byte_budget: u64,
    /// Maximum number of journal entries held, enforced the same way.
    /// `0` means unbounded.
    pub max_entries: usize,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        Self {
            // Far above any simulated corpus (the paper-scale corpus is
            // ~5.3 GB of simulated bytes, but a single attack's working
            // set is bounded by the detection latency — a median of ~10
            // files). 64 MiB comfortably shadows every experiment here.
            byte_budget: 64 * 1024 * 1024,
            max_entries: 1 << 16,
        }
    }
}

impl ShadowConfig {
    /// A store bounded only by `byte_budget`.
    pub fn with_budget(byte_budget: u64) -> Self {
        Self {
            byte_budget,
            ..Self::default()
        }
    }
}

/// `CacheStats`-style counters describing the store's lifetime activity.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowStats {
    /// Pre-images captured (after coalescing).
    pub captures: u64,
    /// Captures skipped because the file's most recent entry already
    /// holds identical content for the same family.
    pub coalesced: u64,
    /// Captures whose content was already resident (fingerprint dedup) —
    /// a new journal entry, but no new bytes.
    pub dedup_hits: u64,
    /// Entries evicted to honour the byte/entry budgets.
    pub evictions: u64,
    /// Times eviction wanted to free space but every remaining entry was
    /// pinned (the budget is overrun rather than dropping pinned shadows).
    pub pin_overflows: u64,
    /// Journal entries currently held.
    pub entries: u64,
    /// Unique pre-image bytes currently held.
    pub bytes_held: u64,
    /// Entries currently pinned by nonzero-reputation families.
    pub pinned_entries: u64,
    /// Files restored to pre-attack bytes across all recoveries.
    pub files_restored: u64,
    /// Suspect-created files removed across all recoveries.
    pub files_removed: u64,
    /// Suspect renames moved back across all recoveries.
    pub renames_undone: u64,
    /// Recovery actions that could not be applied (evicted shadow,
    /// occupied path).
    pub restore_conflicts: u64,
    /// Pre-image captures that failed (reported through
    /// [`ShadowSink::capture_failed`]). Each poisons that file's restore
    /// for the responsible family into an explicit conflict, exactly like
    /// an eviction.
    pub capture_failures: u64,
}

/// One journaled pre-image (content lives in a shared blob).
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub(crate) seq: u64,
    pub(crate) at_nanos: u64,
    pub(crate) family: ProcessId,
    pub(crate) kind: MutationKind,
    pub(crate) path: VPath,
    pub(crate) file: FileId,
    pub(crate) fp: u64,
    pub(crate) len: u64,
    pub(crate) read_only: bool,
}

/// A suspect rename, remembered so recovery can undo it.
#[derive(Debug, Clone)]
pub(crate) struct RenameNote {
    pub(crate) seq: u64,
    pub(crate) family: ProcessId,
    pub(crate) file: FileId,
    pub(crate) from: VPath,
    pub(crate) to: VPath,
}

#[derive(Debug, Default)]
pub(crate) struct Inner {
    /// seq → entry; BTreeMap iteration order *is* capture (LRU) order.
    pub(crate) entries: BTreeMap<u64, Entry>,
    /// file → its entries' seqs, in capture order (all families).
    pub(crate) by_file: HashMap<FileId, Vec<u64>>,
    /// (fingerprint, len) → deduplicated content, in the refcounted
    /// [`BlobStore`] shared with fleet corpus staging.
    blobs: BlobStore,
    /// Files created (no pre-image) by each family root.
    pub(crate) created: HashMap<FileId, ProcessId>,
    /// Renames in capture order.
    pub(crate) renames: Vec<RenameNote>,
    /// family root → latest reputation score (pin source).
    reputation: HashMap<ProcessId, u32>,
    /// `(file, family)` pairs that lost an entry to eviction. Once part
    /// of a file's history for a family is gone, the trailing run
    /// computed from the surviving entries may start too late (its
    /// pre-image already corrupted), so recovery flags the file as a
    /// conflict instead of restoring the wrong bytes.
    evicted: HashSet<(FileId, ProcessId)>,
    next_seq: u64,
    stats: ShadowStats,
}

impl Inner {
    fn pinned(&self, family: ProcessId) -> bool {
        self.reputation.get(&family).copied().unwrap_or(0) > 0
    }

    pub(crate) fn blob(&self, fp: u64, len: u64) -> Option<Arc<Vec<u8>>> {
        self.blobs.get(fp, len)
    }

    /// Whether eviction has destroyed part of `file`'s history as
    /// authored by `family`.
    pub(crate) fn was_evicted(&self, file: FileId, family: ProcessId) -> bool {
        self.evicted.contains(&(file, family))
    }

    /// Removes one entry from every index, returning it and the bytes the
    /// removal released.
    fn remove_entry(&mut self, seq: u64) -> Option<(Entry, u64)> {
        let entry = self.entries.remove(&seq)?;
        if let Some(seqs) = self.by_file.get_mut(&entry.file) {
            seqs.retain(|s| *s != seq);
            if seqs.is_empty() {
                self.by_file.remove(&entry.file);
            }
        }
        let released = self.blobs.release(entry.fp, entry.len);
        Some((entry, released))
    }
}

/// The copy-on-write shadow store. See the [crate docs](crate) for the
/// overall design and restore semantics.
///
/// The store is `Sync` and normally shared as an `Arc`: the same instance
/// serves as the VFS's [`ShadowSink`] (capture side), the engine's
/// reputation feed (pin side) and the recovery entry point (restore
/// side).
#[derive(Debug)]
pub struct ShadowStore {
    cfg: ShadowConfig,
    pub(crate) inner: Mutex<Inner>,
    telemetry: Telemetry,
}

impl ShadowStore {
    /// An empty store with the given budgets and disabled telemetry.
    pub fn new(cfg: ShadowConfig) -> Self {
        Self::with_telemetry(cfg, Telemetry::disabled())
    }

    /// An empty store emitting `recovery.*` metrics and `ShadowEvict`
    /// journal events through `telemetry`.
    pub fn with_telemetry(cfg: ShadowConfig, telemetry: Telemetry) -> Self {
        Self {
            cfg,
            inner: Mutex::new(Inner::default()),
            telemetry,
        }
    }

    /// The configured budgets.
    pub fn config(&self) -> &ShadowConfig {
        &self.cfg
    }

    /// The telemetry handle the store reports through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Updates a process family's reputation score. Entries belonging to
    /// families with nonzero scores are pinned against eviction. The
    /// engine calls this from its scoring path; scores only ever grow.
    pub fn set_reputation(&self, family: ProcessId, score: u32) {
        self.inner.lock().reputation.insert(family, score);
    }

    /// A consistent snapshot of the store's counters.
    pub fn stats(&self) -> ShadowStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats.clone();
        stats.entries = inner.entries.len() as u64;
        stats.bytes_held = inner.blobs.bytes_held();
        stats.pinned_entries = inner
            .entries
            .values()
            .filter(|e| inner.pinned(e.family))
            .count() as u64;
        stats
    }

    /// Unique pre-image bytes currently held.
    pub fn bytes_held(&self) -> u64 {
        self.inner.lock().blobs.bytes_held()
    }

    /// Journal entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evicts oldest-unpinned entries until both budgets are honoured (or
    /// only pinned entries remain). Call with the lock held.
    ///
    /// Under *byte* pressure the victim is the oldest unpinned entry that
    /// would actually release bytes — one holding the last reference to
    /// its dedup'd blob. Evicting a shared-blob entry frees nothing, so
    /// naively walking oldest-first lets one over-budget capture storm
    /// through an unbounded run of zero-release evictions before reaching
    /// an entry that helps; those shared entries are skipped (kept) when
    /// a later unpinned entry can free real bytes. When no unpinned entry
    /// releases anything — or the overage is entry-count only — the
    /// oldest unpinned entry is evicted as before.
    fn enforce_budget(&self, inner: &mut Inner) {
        loop {
            let over_bytes = inner.blobs.bytes_held() > self.cfg.byte_budget;
            let over_entries =
                self.cfg.max_entries != 0 && inner.entries.len() > self.cfg.max_entries;
            if !over_bytes && !over_entries {
                return;
            }
            let mut oldest_unpinned = None;
            let mut releasing = None;
            for e in inner.entries.values() {
                if inner.pinned(e.family) {
                    continue;
                }
                if oldest_unpinned.is_none() {
                    oldest_unpinned = Some(e.seq);
                    if !over_bytes {
                        // Entry-count pressure only: any eviction helps,
                        // take the oldest.
                        break;
                    }
                }
                if over_bytes && inner.blobs.ref_count(e.fp, e.len) == 1 {
                    releasing = Some(e.seq);
                    break;
                }
            }
            let Some(seq) = releasing.or(oldest_unpinned) else {
                inner.stats.pin_overflows += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.counter("recovery.shadow.pin_overflow").inc();
                }
                return;
            };
            let Some((entry, released)) = inner.remove_entry(seq) else {
                // Unreachable (the seq came from the live entry map), but
                // eviction must never panic the capture path.
                return;
            };
            inner.evicted.insert((entry.file, entry.family));
            inner.stats.evictions += 1;
            if self.telemetry.is_enabled() {
                self.telemetry.counter("recovery.shadow.evictions").inc();
                self.telemetry
                    .gauge("recovery.shadow.bytes")
                    .set(inner.blobs.bytes_held() as i64);
            }
            self.telemetry
                .journal_event(entry.at_nanos, entry.family.0, || JournalKind::ShadowEvict {
                    path: entry.path.as_str().to_string(),
                    bytes: released,
                });
        }
    }
}

impl ShadowSink for ShadowStore {
    fn capture(&self, pre: &PreImage<'_>) {
        let fp = content_fingerprint(pre.data);
        let len = pre.data.len() as u64;
        let mut inner = self.inner.lock();

        // Coalesce: the file's most recent shadow already journals this
        // exact (operation, content) for this family — a repeat capture
        // adds nothing.
        if let Some(last_seq) = inner.by_file.get(&pre.file).and_then(|s| s.last()) {
            let last = &inner.entries[last_seq];
            if last.family == pre.family_root
                && last.kind == pre.kind
                && last.fp == fp
                && last.len == len
            {
                inner.stats.coalesced += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.counter("recovery.shadow.coalesced").inc();
                }
                return;
            }
        }

        let (_blob, dedup_hit) = inner.blobs.acquire_with(fp, len, || pre.data.to_vec());
        if dedup_hit {
            inner.stats.dedup_hits += 1;
            if self.telemetry.is_enabled() {
                self.telemetry.counter("recovery.shadow.dedup_hits").inc();
            }
        }

        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.insert(
            seq,
            Entry {
                seq,
                at_nanos: pre.at_nanos,
                family: pre.family_root,
                kind: pre.kind,
                path: pre.path.clone(),
                file: pre.file,
                fp,
                len,
                read_only: pre.read_only,
            },
        );
        inner.by_file.entry(pre.file).or_default().push(seq);
        inner.stats.captures += 1;
        if self.telemetry.is_enabled() {
            self.telemetry.counter("recovery.shadow.captures").inc();
            self.telemetry
                .gauge("recovery.shadow.bytes")
                .set(inner.blobs.bytes_held() as i64);
            self.telemetry
                .gauge("recovery.shadow.entries")
                .set(inner.entries.len() as i64);
        }
        self.enforce_budget(&mut inner);
    }

    fn capture_failed(
        &self,
        _pid: ProcessId,
        family_root: ProcessId,
        file: FileId,
        path: &VPath,
    ) {
        // A lost pre-image leaves this file's journal (for this family)
        // incomplete: restoring from the surviving entries could write
        // back the wrong bytes. Poison the pair exactly like an eviction
        // — recovery will surface an explicit `ShadowEvicted` conflict
        // for the file instead of guessing.
        let mut inner = self.inner.lock();
        inner.evicted.insert((file, family_root));
        inner.stats.capture_failures += 1;
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("recovery.shadow.capture_failures")
                .inc();
            self.telemetry.journal_event(0, family_root.0, || JournalKind::Recovery {
                action: "capture-failed".to_string(),
                path: path.as_str().to_string(),
                bytes: 0,
            });
        }
    }

    fn note_created(&self, _pid: ProcessId, family_root: ProcessId, file: FileId, _path: &VPath) {
        // First creator wins: a file deleted and re-created keeps its
        // original provenance only if the ids differ (they always do —
        // FileIds are never reused).
        self.inner.lock().created.entry(file).or_insert(family_root);
    }

    fn note_rename(
        &self,
        _pid: ProcessId,
        family_root: ProcessId,
        file: FileId,
        from: &VPath,
        to: &VPath,
    ) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.renames.push(RenameNote {
            seq,
            family: family_root,
            file,
            from: from.clone(),
            to: to.clone(),
        });
    }
}

impl ShadowStore {
    /// Folds a finished recovery's outcome into the lifetime counters and
    /// drops the suspect family's journal state (its shadows are no
    /// longer needed; blob bytes shared with other families survive via
    /// refcounts). Called by [`ShadowStore::restore`].
    pub(crate) fn finish_recovery(
        &self,
        family: ProcessId,
        restored: u64,
        removed: u64,
        renamed: u64,
        conflicts: u64,
    ) {
        let mut inner = self.inner.lock();
        inner.stats.files_restored += restored;
        inner.stats.files_removed += removed;
        inner.stats.renames_undone += renamed;
        inner.stats.restore_conflicts += conflicts;
        let victims: Vec<u64> = inner
            .entries
            .values()
            .filter(|e| e.family == family)
            .map(|e| e.seq)
            .collect();
        for seq in victims {
            inner.remove_entry(seq);
        }
        inner.renames.retain(|r| r.family != family);
        inner.created.retain(|_, fam| *fam != family);
        inner.evicted.retain(|(_, fam)| *fam != family);
        if self.telemetry.is_enabled() {
            self.telemetry
                .gauge("recovery.shadow.bytes")
                .set(inner.blobs.bytes_held() as i64);
            self.telemetry
                .gauge("recovery.shadow.entries")
                .set(inner.entries.len() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img<'a>(
        pid: u32,
        kind: MutationKind,
        path: &'a VPath,
        file: u64,
        data: &'a [u8],
    ) -> PreImage<'a> {
        PreImage {
            pid: ProcessId(pid),
            family_root: ProcessId(pid),
            at_nanos: 0,
            kind,
            path,
            file: FileId(file),
            data,
            read_only: false,
        }
    }

    #[test]
    fn capture_dedup_and_coalesce() {
        let store = ShadowStore::new(ShadowConfig::default());
        let a = VPath::new("/a");
        let b = VPath::new("/b");
        store.capture(&img(1, MutationKind::Write, &a, 1, b"same"));
        // Identical content on a *different* file dedups bytes.
        store.capture(&img(1, MutationKind::Write, &b, 2, b"same"));
        // Identical content on the *same* file coalesces entirely.
        store.capture(&img(1, MutationKind::Write, &a, 1, b"same"));
        let stats = store.stats();
        assert_eq!(stats.captures, 2);
        assert_eq!(stats.dedup_hits, 1);
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.bytes_held, 4);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn byte_budget_evicts_oldest_unpinned_first() {
        let store = ShadowStore::new(ShadowConfig {
            byte_budget: 10,
            max_entries: 0,
        });
        let p1 = VPath::new("/1");
        let p2 = VPath::new("/2");
        let p3 = VPath::new("/3");
        store.capture(&img(1, MutationKind::Write, &p1, 1, b"aaaaa")); // 5 bytes
        store.capture(&img(2, MutationKind::Write, &p2, 2, b"bbbbb")); // 10 bytes
        store.capture(&img(3, MutationKind::Write, &p3, 3, b"ccccc")); // 15 -> evict oldest
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.bytes_held, 10);
        let inner = store.inner.lock();
        assert!(!inner.by_file.contains_key(&FileId(1)), "oldest evicted");
        assert!(inner.by_file.contains_key(&FileId(3)));
    }

    #[test]
    fn nonzero_reputation_pins_shadows() {
        let store = ShadowStore::new(ShadowConfig {
            byte_budget: 10,
            max_entries: 0,
        });
        store.set_reputation(ProcessId(1), 42);
        let p1 = VPath::new("/1");
        let p2 = VPath::new("/2");
        let p3 = VPath::new("/3");
        store.capture(&img(1, MutationKind::Write, &p1, 1, b"aaaaa"));
        store.capture(&img(2, MutationKind::Write, &p2, 2, b"bbbbb"));
        store.capture(&img(1, MutationKind::Delete, &p3, 3, b"ccccc"));
        // The unpinned family-2 entry goes; family-1 entries survive.
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.pinned_entries, 2);
        let inner = store.inner.lock();
        assert!(inner.by_file.contains_key(&FileId(1)));
        assert!(!inner.by_file.contains_key(&FileId(2)));
        assert!(inner.by_file.contains_key(&FileId(3)));
    }

    #[test]
    fn all_pinned_overruns_budget_and_counts() {
        let store = ShadowStore::new(ShadowConfig {
            byte_budget: 4,
            max_entries: 0,
        });
        store.set_reputation(ProcessId(1), 1);
        let p1 = VPath::new("/1");
        let p2 = VPath::new("/2");
        store.capture(&img(1, MutationKind::Write, &p1, 1, b"xxxx"));
        store.capture(&img(1, MutationKind::Write, &p2, 2, b"yyyy"));
        let stats = store.stats();
        assert_eq!(stats.evictions, 0);
        assert!(stats.pin_overflows >= 1);
        assert_eq!(stats.bytes_held, 8, "budget overrun rather than unpinning");
    }

    #[test]
    fn entry_budget_enforced() {
        let store = ShadowStore::new(ShadowConfig {
            byte_budget: u64::MAX,
            max_entries: 2,
        });
        for i in 0..5u64 {
            let p = VPath::new(format!("/{i}"));
            let data = vec![i as u8; 3];
            store.capture(&img(9, MutationKind::Write, &p, i + 1, &data));
        }
        let stats = store.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 3);
    }

    #[test]
    fn shared_blob_eviction_prefers_a_releasing_victim() {
        let store = ShadowStore::new(ShadowConfig {
            byte_budget: 6,
            max_entries: 0,
        });
        let p1 = VPath::new("/1");
        let p2 = VPath::new("/2");
        let p3 = VPath::new("/3");
        store.capture(&img(1, MutationKind::Write, &p1, 1, b"dup")); // 3
        store.capture(&img(2, MutationKind::Write, &p2, 2, b"dup")); // dedup: still 3
        store.capture(&img(3, MutationKind::Write, &p3, 3, b"unique")); // 9 > 6
        // Entries 1 and 2 share one blob, so evicting either frees
        // nothing. The victim loop skips them in favour of the one entry
        // whose removal actually releases bytes: one eviction, not a
        // cascade through the whole shared run.
        let stats = store.stats();
        assert_eq!(stats.bytes_held, 3);
        assert_eq!(stats.evictions, 1);
        let inner = store.inner.lock();
        assert!(inner.by_file.contains_key(&FileId(1)));
        assert!(inner.by_file.contains_key(&FileId(2)));
        assert!(!inner.by_file.contains_key(&FileId(3)));
        assert_eq!(inner.entries.len(), 2);
    }

    #[test]
    fn shared_blob_overage_does_not_storm_evict() {
        // Regression: one over-budget capture used to evict an unbounded
        // run of shared-blob entries (each releasing 0 bytes) before
        // reaching an entry that freed anything.
        let store = ShadowStore::new(ShadowConfig {
            byte_budget: 10,
            max_entries: 0,
        });
        let shared = b"aaa"; // 3 bytes, shared across 4 files
        for file in 1..=4u64 {
            let p = VPath::new(format!("/shared/{file}"));
            store.capture(&img(1, MutationKind::Write, &p, file, shared));
        }
        let p5 = VPath::new("/unique/5");
        store.capture(&img(2, MutationKind::Write, &p5, 5, b"bbbbbb")); // 9 total
        let p6 = VPath::new("/unique/6");
        store.capture(&img(3, MutationKind::Write, &p6, 6, b"cccccc")); // 15 > 10
        let stats = store.stats();
        assert_eq!(
            stats.evictions, 1,
            "exactly one releasing victim, no zero-release cascade"
        );
        assert_eq!(stats.bytes_held, 9);
        let inner = store.inner.lock();
        for file in 1..=4u64 {
            assert!(
                inner.by_file.contains_key(&FileId(file)),
                "shared entries survive"
            );
        }
        assert!(!inner.by_file.contains_key(&FileId(5)), "oldest releasing entry evicted");
        assert!(inner.by_file.contains_key(&FileId(6)));
    }

    #[test]
    fn entry_overage_still_evicts_oldest_unpinned() {
        // Entry-count pressure has no byte dimension: the victim stays
        // the oldest unpinned entry even when its blob is shared.
        let store = ShadowStore::new(ShadowConfig {
            byte_budget: u64::MAX,
            max_entries: 2,
        });
        let p1 = VPath::new("/1");
        let p2 = VPath::new("/2");
        let p3 = VPath::new("/3");
        store.capture(&img(1, MutationKind::Write, &p1, 1, b"dup"));
        store.capture(&img(2, MutationKind::Write, &p2, 2, b"dup"));
        store.capture(&img(3, MutationKind::Write, &p3, 3, b"unique"));
        let inner = store.inner.lock();
        assert!(!inner.by_file.contains_key(&FileId(1)), "oldest evicted");
        assert!(inner.by_file.contains_key(&FileId(2)));
        assert!(inner.by_file.contains_key(&FileId(3)));
    }

    #[test]
    fn capture_failed_counts_and_poisons_the_file() {
        let store = ShadowStore::new(ShadowConfig::default());
        let p = VPath::new("/doc");
        store.capture_failed(ProcessId(2), ProcessId(1), FileId(7), &p);
        assert_eq!(store.stats().capture_failures, 1);
        let inner = store.inner.lock();
        assert!(inner.was_evicted(FileId(7), ProcessId(1)));
        assert!(
            !inner.was_evicted(FileId(7), ProcessId(2)),
            "poisoned for the family root, not the child pid"
        );
    }
}
