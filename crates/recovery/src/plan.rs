//! Recovery planning and rollback.

use std::sync::Arc;
use std::time::Instant;

use cryptodrop_telemetry::JournalKind;
use cryptodrop_vfs::{FileId, ProcessId, VPath, Vfs};
use serde::{Deserialize, Serialize};

use crate::store::{RenameNote, ShadowStore};

/// One step of a [`RecoveryPlan`].
#[derive(Debug, Clone)]
pub enum RecoveryAction {
    /// Delete a file the suspect family created (it has no pre-attack
    /// state to restore). Resolved by identity at apply time; a no-op if
    /// the file is already gone.
    Remove {
        /// The suspect-created file.
        file: FileId,
    },
    /// Move a surviving file back to its pre-attack path (undoing the
    /// suspect's renames in one hop).
    MoveBack {
        /// The renamed file.
        file: FileId,
        /// Its pre-attack path.
        to: VPath,
    },
    /// Write a shadowed pre-image back (restoring content and the
    /// read-only attribute).
    Restore {
        /// The file identity at capture time. If it is still alive the
        /// restore targets its current path (keeping the id and any open
        /// handles); otherwise the file is recreated.
        file: FileId,
        /// Where to recreate the file if the identity is dead.
        recreate_at: VPath,
        /// The pre-attack content.
        bytes: Arc<Vec<u8>>,
        /// The content's 64-bit fingerprint (verification aid).
        fingerprint: u64,
        /// The pre-attack read-only attribute.
        read_only: bool,
    },
}

/// A recovery step that could not be applied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryConflict {
    /// The file's shadows were (partially) evicted before suspension:
    /// rolling it back reliably is no longer possible, so it is left
    /// untouched.
    ShadowEvicted {
        /// The affected file.
        file: FileId,
        /// Its last known path.
        path: VPath,
    },
    /// The target path is occupied by a different live file (e.g. a
    /// benign process reused the name after the suspect's delete). The
    /// occupant is preserved.
    PathOccupied {
        /// The file that could not be placed.
        file: FileId,
        /// The contested path.
        path: VPath,
    },
}

/// The transactional rollback plan for one suspect family: everything the
/// family touched, resolved against one consistent snapshot of the shadow
/// journal. Build with [`ShadowStore::plan`], apply with
/// [`ShadowStore::restore`] (or both at once via [`ShadowStore::recover`]).
#[derive(Debug)]
pub struct RecoveryPlan {
    /// The suspect family root the plan rolls back.
    pub family: ProcessId,
    /// Steps in application order: removes, then move-backs, then
    /// restores.
    pub actions: Vec<RecoveryAction>,
    /// Files that cannot be rolled back because their shadows were
    /// evicted (known before application).
    pub evicted: Vec<RecoveryConflict>,
}

impl RecoveryPlan {
    /// Total bytes of content the plan would write back.
    pub fn bytes_to_restore(&self) -> u64 {
        self.actions
            .iter()
            .map(|a| match a {
                RecoveryAction::Restore { bytes, .. } => bytes.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Number of `Restore` actions.
    pub fn restores(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, RecoveryAction::Restore { .. }))
            .count()
    }
}

/// What a [`ShadowStore::restore`] call actually did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The rolled-back family root.
    pub family: ProcessId,
    /// Files whose content was restored from shadows.
    pub files_restored: u64,
    /// Bytes written back.
    pub bytes_restored: u64,
    /// Suspect-created files removed.
    pub files_removed: u64,
    /// Renames undone.
    pub renames_undone: u64,
    /// Steps that could not be applied (evicted shadows, occupied paths).
    pub conflicts: Vec<RecoveryConflict>,
    /// Wall-clock nanoseconds the rollback took.
    pub restore_nanos: u64,
    /// Every restored path with the fingerprint of the restored content.
    pub restored_files: Vec<(VPath, u64)>,
}

impl ShadowStore {
    /// Builds the rollback plan for `family` against the current
    /// filesystem, from one consistent snapshot of the shadow journal.
    ///
    /// Per file the *trailing-run rule* applies (see the [crate
    /// docs](crate)): if the last destructive writer was benign the file
    /// is preserved; otherwise the pre-image of the earliest operation in
    /// the maximal trailing run of suspect-authored ops is selected.
    pub fn plan(&self, family: ProcessId, fs: &mut Vfs) -> RecoveryPlan {
        let inner = self.inner.lock();
        let mut admin_paths = |file: FileId| fs.admin().path_of(file);

        let mut removes = Vec::new();
        let mut move_backs = Vec::new();
        let mut restores = Vec::new();
        let mut evicted = Vec::new();

        // Per-file suspect rename span: the earliest note's `from` is the
        // pre-attack path, the latest note's `to` is where the suspect
        // left the file.
        let mut rename_span: std::collections::HashMap<FileId, (&RenameNote, &RenameNote)> =
            std::collections::HashMap::new();
        for note in &inner.renames {
            if note.family != family {
                continue;
            }
            rename_span
                .entry(note.file)
                .and_modify(|(first, last)| {
                    if note.seq < first.seq {
                        *first = note;
                    }
                    if note.seq > last.seq {
                        *last = note;
                    }
                })
                .or_insert((note, note));
        }

        // Files the suspect created and nobody benign ever wrote to:
        // remove. (A benign write would appear as a shadow entry from a
        // different family and routes the file through the trailing-run
        // logic below instead.)
        let mut removed_files = std::collections::HashSet::new();
        for (&file, &creator) in &inner.created {
            if creator != family {
                continue;
            }
            let benign_touched = inner
                .by_file
                .get(&file)
                .map(|seqs| seqs.iter().any(|s| inner.entries[s].family != family))
                .unwrap_or(false);
            if !benign_touched {
                removes.push(RecoveryAction::Remove { file });
                removed_files.insert(file);
            }
        }

        for (&file, seqs) in &inner.by_file {
            if removed_files.contains(&file) {
                continue;
            }
            let involves_suspect = seqs.iter().any(|s| inner.entries[s].family == family);
            if !involves_suspect {
                continue;
            }
            // Trailing run of suspect-authored entries.
            let last = &inner.entries[seqs.last().expect("by_file never empty")];
            if last.family != family {
                continue; // benign wrote last: its data wins, preserve.
            }
            let run_start = seqs
                .iter()
                .rev()
                .take_while(|s| inner.entries[*s].family == family)
                .last()
                .expect("run has at least the last entry");
            let point = &inner.entries[run_start];
            if inner.was_evicted(file, family) {
                evicted.push(RecoveryConflict::ShadowEvicted {
                    file,
                    path: admin_paths(file).unwrap_or_else(|| point.path.clone()),
                });
                continue;
            }
            let Some(bytes) = inner.blob(point.fp, point.len) else {
                evicted.push(RecoveryConflict::ShadowEvicted {
                    file,
                    path: admin_paths(file).unwrap_or_else(|| point.path.clone()),
                });
                continue;
            };
            restores.push(RecoveryAction::Restore {
                file,
                // A dead file goes back to its pre-attack path: the
                // earliest suspect rename's source if the suspect moved
                // it, else the path recorded at the restore point.
                recreate_at: rename_span
                    .get(&file)
                    .map(|(first, _)| first.from.clone())
                    .unwrap_or_else(|| point.path.clone()),
                bytes,
                fingerprint: point.fp,
                read_only: point.read_only,
            });
        }

        // Undo renames of surviving, non-removed files — but only while
        // the file still sits where the *suspect* left it. If a benign
        // process renamed it afterwards, the benign placement wins.
        for (&file, &(first, last)) in &rename_span {
            if removed_files.contains(&file) {
                continue;
            }
            if let Some(current) = admin_paths(file) {
                if current == last.to && current != first.from {
                    move_backs.push(RecoveryAction::MoveBack {
                        file,
                        to: first.from.clone(),
                    });
                }
            }
        }

        // Deterministic application order (maps iterate arbitrarily).
        let sort_key = |a: &RecoveryAction| match a {
            RecoveryAction::Remove { file } => file.0,
            RecoveryAction::MoveBack { file, .. } => file.0,
            RecoveryAction::Restore { file, .. } => file.0,
        };
        removes.sort_by_key(sort_key);
        move_backs.sort_by_key(sort_key);
        restores.sort_by_key(sort_key);
        evicted.sort_by_key(|c| match c {
            RecoveryConflict::ShadowEvicted { file, .. }
            | RecoveryConflict::PathOccupied { file, .. } => file.0,
        });

        let mut actions = removes;
        actions.extend(move_backs);
        actions.extend(restores);
        RecoveryPlan {
            family,
            actions,
            evicted,
        }
    }

    /// Applies a [`RecoveryPlan`], rolling the filesystem back
    /// byte-for-byte through the administrative view (recovery writes are
    /// unattributed and never themselves captured). Emits `recovery.*`
    /// metrics, `Recovery` journal events, and folds the outcome into
    /// [`ShadowStats`](crate::ShadowStats); the suspect family's journal
    /// state is dropped afterwards (the rollback consumed it).
    pub fn restore(&self, plan: &RecoveryPlan, fs: &mut Vfs) -> RecoveryReport {
        let started = Instant::now();
        let at_nanos = fs.clock().now_nanos();
        let telemetry = self.telemetry().clone();
        let mut report = RecoveryReport {
            family: plan.family,
            files_restored: 0,
            bytes_restored: 0,
            files_removed: 0,
            renames_undone: 0,
            conflicts: plan.evicted.clone(),
            restore_nanos: 0,
            restored_files: Vec::new(),
        };
        let journal = |action: &str, path: &VPath, bytes: u64| {
            telemetry.journal_event(at_nanos, plan.family.0, || JournalKind::Recovery {
                action: action.to_string(),
                path: path.as_str().to_string(),
                bytes,
            });
        };

        for step in &plan.actions {
            match step {
                RecoveryAction::Remove { file } => {
                    let mut admin = fs.admin();
                    let Some(path) = admin.path_of(*file) else {
                        continue; // already gone (suspect deleted its own file)
                    };
                    let len = admin.metadata(&path).map(|m| m.len).unwrap_or(0);
                    // The suspect may have left its droppings read-only
                    // (ransom notes often are); admin deletes ignore that.
                    if admin.delete_file(&path).is_ok() {
                        report.files_removed += 1;
                        journal("remove", &path, len);
                    }
                }
                RecoveryAction::MoveBack { file, to } => {
                    let mut admin = fs.admin();
                    let Some(current) = admin.path_of(*file) else {
                        continue;
                    };
                    if &current == to {
                        continue;
                    }
                    if admin.exists(to) {
                        report.conflicts.push(RecoveryConflict::PathOccupied {
                            file: *file,
                            path: to.clone(),
                        });
                        journal("path-occupied", to, 0);
                        continue;
                    }
                    if admin.rename(&current, to).is_ok() {
                        report.renames_undone += 1;
                        journal("rename-back", to, 0);
                    }
                }
                RecoveryAction::Restore {
                    file,
                    recreate_at,
                    bytes,
                    fingerprint,
                    read_only,
                } => {
                    let mut admin = fs.admin();
                    let target = match admin.path_of(*file) {
                        Some(path) => path,
                        None => {
                            // Recreating a dead file must not clobber a
                            // live one that reused the path.
                            if admin.exists(recreate_at) {
                                report.conflicts.push(RecoveryConflict::PathOccupied {
                                    file: *file,
                                    path: recreate_at.clone(),
                                });
                                journal("path-occupied", recreate_at, 0);
                                continue;
                            }
                            recreate_at.clone()
                        }
                    };
                    if admin.write_file(&target, bytes).is_ok() {
                        let _ = admin.set_read_only(&target, *read_only);
                        report.files_restored += 1;
                        report.bytes_restored += bytes.len() as u64;
                        report.restored_files.push((target.clone(), *fingerprint));
                        journal("restore", &target, bytes.len() as u64);
                    }
                }
            }
        }

        report.restore_nanos = started.elapsed().as_nanos() as u64;
        if telemetry.is_enabled() {
            telemetry
                .counter("recovery.files.restored")
                .add(report.files_restored);
            telemetry
                .counter("recovery.bytes.restored")
                .add(report.bytes_restored);
            telemetry
                .counter("recovery.files.removed")
                .add(report.files_removed);
            telemetry
                .counter("recovery.renames.undone")
                .add(report.renames_undone);
            telemetry
                .counter("recovery.conflicts")
                .add(report.conflicts.len() as u64);
            telemetry
                .histogram("recovery.restore.ns")
                .record(report.restore_nanos);
        }
        self.finish_recovery(
            plan.family,
            report.files_restored,
            report.files_removed,
            report.renames_undone,
            report.conflicts.len() as u64,
        );
        report
    }

    /// Plans and applies the rollback in one call.
    pub fn recover(&self, family: ProcessId, fs: &mut Vfs) -> RecoveryReport {
        let plan = self.plan(family, fs);
        self.restore(&plan, fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ShadowConfig, ShadowStore};
    use cryptodrop_simhash::content_fingerprint;

    fn p(s: &str) -> VPath {
        VPath::new(s)
    }

    fn setup(cfg: ShadowConfig) -> (Arc<ShadowStore>, Vfs, ProcessId, ProcessId) {
        let store = Arc::new(ShadowStore::new(cfg));
        let mut fs = Vfs::new();
        fs.set_shadow_sink(store.clone());
        let suspect = fs.spawn_process("cryptolocker.exe");
        let benign = fs.spawn_process("notepad.exe");
        (store, fs, suspect, benign)
    }

    #[test]
    fn attack_is_rolled_back_byte_for_byte() {
        let (store, mut fs, suspect, _benign) = setup(ShadowConfig::default());
        fs.admin().write_file(&p("/docs/a.txt"), b"alpha").unwrap();
        fs.admin().write_file(&p("/docs/b.txt"), b"bravo").unwrap();

        // Encrypt-and-rename one file, delete another, drop a note.
        fs.write_file(suspect, &p("/docs/a.txt"), b"ENCRYPTED-1")
            .unwrap();
        fs.rename(suspect, &p("/docs/a.txt"), &p("/docs/a.txt.locked"), false)
            .unwrap();
        fs.delete(suspect, &p("/docs/b.txt")).unwrap();
        fs.write_file(suspect, &p("/RANSOM.txt"), b"pay up").unwrap();

        let report = store.recover(suspect, &mut fs);

        assert_eq!(
            fs.admin().read_file(&p("/docs/a.txt")).unwrap(),
            b"alpha".to_vec()
        );
        assert_eq!(
            fs.admin().read_file(&p("/docs/b.txt")).unwrap(),
            b"bravo".to_vec()
        );
        assert!(!fs.admin().exists(&p("/docs/a.txt.locked")));
        assert!(!fs.admin().exists(&p("/RANSOM.txt")));
        assert_eq!(report.files_restored, 2);
        assert_eq!(report.files_removed, 1);
        assert_eq!(report.renames_undone, 1);
        assert!(report.conflicts.is_empty());
        // Reported fingerprints match the restored content.
        for (path, fp) in &report.restored_files {
            let bytes = fs.admin().read_file(path).unwrap();
            assert_eq!(content_fingerprint(&bytes), *fp, "fingerprint for {path}");
        }
        // The family's journal state is consumed by the rollback.
        assert!(store.is_empty());
    }

    #[test]
    fn benign_last_writer_is_preserved() {
        let (store, mut fs, suspect, benign) = setup(ShadowConfig::default());
        fs.admin().write_file(&p("/doc.txt"), b"v1").unwrap();
        fs.write_file(suspect, &p("/doc.txt"), b"ENC").unwrap();
        fs.write_file(benign, &p("/doc.txt"), b"v2").unwrap();

        let report = store.recover(suspect, &mut fs);
        assert_eq!(fs.admin().read_file(&p("/doc.txt")).unwrap(), b"v2".to_vec());
        assert_eq!(report.files_restored, 0);
    }

    #[test]
    fn trailing_run_restores_post_benign_content() {
        let (store, mut fs, suspect, benign) = setup(ShadowConfig::default());
        fs.admin().write_file(&p("/doc.txt"), b"v1").unwrap();
        fs.write_file(suspect, &p("/doc.txt"), b"ENC-1").unwrap();
        fs.write_file(benign, &p("/doc.txt"), b"v2").unwrap();
        fs.write_file(suspect, &p("/doc.txt"), b"ENC-2").unwrap();

        let report = store.recover(suspect, &mut fs);
        // Only the trailing suspect run is undone: the benign "v2" wins
        // over the original "v1".
        assert_eq!(fs.admin().read_file(&p("/doc.txt")).unwrap(), b"v2".to_vec());
        assert_eq!(report.files_restored, 1);
    }

    #[test]
    fn benign_rename_after_suspect_is_preserved() {
        let (store, mut fs, suspect, benign) = setup(ShadowConfig::default());
        fs.admin().write_file(&p("/a.txt"), b"alpha").unwrap();
        fs.rename(suspect, &p("/a.txt"), &p("/a.locked"), false)
            .unwrap();
        fs.rename(benign, &p("/a.locked"), &p("/kept.txt"), false)
            .unwrap();

        let report = store.recover(suspect, &mut fs);
        // The benign process moved the file after the suspect; its
        // placement wins.
        assert!(fs.admin().exists(&p("/kept.txt")));
        assert!(!fs.admin().exists(&p("/a.txt")));
        assert_eq!(report.renames_undone, 0);
    }

    #[test]
    fn occupied_path_is_a_conflict() {
        let (store, mut fs, suspect, benign) = setup(ShadowConfig::default());
        fs.admin().write_file(&p("/a.txt"), b"alpha").unwrap();
        fs.delete(suspect, &p("/a.txt")).unwrap();
        // A benign process reuses the name before recovery runs.
        fs.write_file(benign, &p("/a.txt"), b"benign").unwrap();

        let report = store.recover(suspect, &mut fs);
        assert_eq!(
            fs.admin().read_file(&p("/a.txt")).unwrap(),
            b"benign".to_vec()
        );
        assert_eq!(report.files_restored, 0);
        assert!(report
            .conflicts
            .iter()
            .any(|c| matches!(c, RecoveryConflict::PathOccupied { .. })));
    }

    #[test]
    fn evicted_shadow_is_reported_not_misrestored() {
        // A 4-byte budget cannot hold the 5-byte original: the capture is
        // immediately evicted, destroying the restore point.
        let (store, mut fs, suspect, _benign) = setup(ShadowConfig {
            byte_budget: 4,
            max_entries: 0,
        });
        fs.admin().write_file(&p("/a.txt"), b"alpha").unwrap();
        fs.write_file(suspect, &p("/a.txt"), b"E1").unwrap();
        fs.write_file(suspect, &p("/a.txt"), b"E2").unwrap();

        let plan = store.plan(suspect, &mut fs);
        assert!(plan
            .evicted
            .iter()
            .any(|c| matches!(c, RecoveryConflict::ShadowEvicted { .. })));
        let report = store.restore(&plan, &mut fs);
        // Restoring from the surviving (post-corruption) shadows would
        // write back "E1"-era bytes; the store refuses instead.
        assert_eq!(fs.admin().read_file(&p("/a.txt")).unwrap(), b"E2".to_vec());
        assert_eq!(report.files_restored, 0);
        assert!(!report.conflicts.is_empty());
    }

    #[test]
    fn restore_applies_the_captured_read_only_state() {
        let (store, mut fs, suspect, _benign) = setup(ShadowConfig::default());
        fs.admin().write_file(&p("/a.txt"), b"alpha").unwrap();
        fs.admin().set_read_only(&p("/a.txt"), true).unwrap();
        // Suspects clear the attribute before encrypting. Attribute flips
        // are not themselves journaled (only the four destructive kinds
        // are), so the pre-image records the state at mutation time:
        // already writable.
        fs.set_read_only(suspect, &p("/a.txt"), false).unwrap();
        fs.write_file(suspect, &p("/a.txt"), b"ENC").unwrap();

        store.recover(suspect, &mut fs);
        assert_eq!(
            fs.admin().read_file(&p("/a.txt")).unwrap(),
            b"alpha".to_vec()
        );
        assert!(!fs.admin().metadata(&p("/a.txt")).unwrap().read_only);
    }
}
