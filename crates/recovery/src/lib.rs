//! Shadow-copy recovery: the "Drop It" half of CryptoDrop.
//!
//! The paper's promise is that early detection *bounds data loss* — the
//! engine suspends a ransomware process after a median of ~10 files — but
//! bounding loss only matters if the victim can then get those files back.
//! This crate closes the loop:
//!
//! * [`ShadowStore`] — a copy-on-write pre-image journal wired into the
//!   VFS mutation path (via [`cryptodrop_vfs::ShadowSink`]). Every
//!   destructive operation a monitored process performs — full-content
//!   write, truncate, delete, rename-over — deposits the bytes it is about
//!   to destroy, content-deduplicated by the engine's 64-bit fingerprints
//!   and bounded by a byte budget with LRU eviction. Shadows belonging to
//!   process families with nonzero reputation scores are *pinned*: the
//!   store refuses to evict exactly the pre-images a brewing detection is
//!   most likely to need.
//! * [`RecoveryPlan`] / [`ShadowStore::restore`] — on suspension, the
//!   store enumerates everything the suspect family touched and rolls the
//!   filesystem back byte-for-byte: suspect-created files are removed,
//!   renames are undone, and destroyed content is restored from shadows,
//!   while writes that a *benign* process made last are preserved.
//!
//! # Restore semantics (trailing-run rule)
//!
//! Processes share files, and detection may lag the attack (a deferred
//! analysis pipeline). Per file, the store restores the pre-image of the
//! *earliest operation in the maximal trailing run of suspect-authored
//! destructive ops*:
//!
//! * If the last destructive writer was benign, the file is left alone —
//!   benign data always wins.
//! * Otherwise everything the suspect did after the last benign write is
//!   undone in one step, restoring exactly the bytes that existed when
//!   the suspect's final assault on that file began.
//!
//! The rule makes the post-restore filesystem independent of *when* the
//! suspension landed (inline or reconciled later): any suspect ops that
//! slipped in while a verdict was in flight extend the trailing run and
//! are undone together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod store;

pub use plan::{RecoveryAction, RecoveryConflict, RecoveryPlan, RecoveryReport};
pub use store::{ShadowConfig, ShadowStats, ShadowStore};
