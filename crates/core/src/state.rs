//! Per-process reputation state and per-file snapshots.
//!
//! CryptoDrop maintains "a reputation score threshold for all processes"
//! (paper §IV-B) and tracks per-file state — type and similarity digest of
//! the previous version — so indicators can compare before/after even when
//! "the state of the file must be carefully tracked each time a file is
//! moved" (§III).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use cryptodrop_entropy::ByteHistogram;
use cryptodrop_simhash::{content_fingerprint, FeatureCache, SdDigest};
use cryptodrop_sniff::{sniff, FileType};
use cryptodrop_vfs::{FileId, ProcessId};
use serde::{Deserialize, Serialize};

use crate::config::ScoreConfig;
#[cfg(test)]
use crate::config::DecayPolicy;
use crate::indicators::deletion::DeletionTracker;
use crate::indicators::entropy_delta::EntropyDeltaTracker;
use crate::indicators::funneling::FunnelTracker;
use crate::indicators::{Indicator, IndicatorHit};

/// The analysis intermediates an incremental re-analysis needs: retained
/// alongside a snapshot so the next close of the same file can subtract
/// and re-add only the dirty extents instead of re-reading everything.
/// Shared behind an [`Arc`] because snapshots are cloned between the
/// path-keyed and id-keyed caches.
#[derive(Debug, Clone)]
pub struct IncrState {
    /// Byte histogram of the digest window (the whole content whenever it
    /// fits [`Config::max_digest_bytes`](crate::Config::max_digest_bytes)).
    pub histogram: ByteHistogram,
    /// The sdhash feature cache of the digest window, when digestible.
    pub features: Option<FeatureCache>,
}

/// A snapshot of one file version: everything the indicators need to
/// compare against a later version.
///
/// Equality compares the five analysis fields only — `stamp` and `incr`
/// are cache-acceleration metadata that two snapshots of identical
/// content may legitimately disagree on (e.g. one captured with
/// incremental analysis enabled and one without).
#[derive(Debug, Clone)]
pub struct FileSnapshot {
    /// The sniffed type of the content.
    pub file_type: FileType,
    /// The sdhash digest, if the content is digestible (≥ 512 bytes and
    /// featureful).
    pub digest: Option<SdDigest>,
    /// Whole-content Shannon entropy, bits/byte.
    pub entropy: f64,
    /// Content length in bytes.
    pub len: u64,
    /// 64-bit fingerprint of the **full** content
    /// ([`content_fingerprint`]): the snapshot cache's identity key.
    /// Equal fingerprints mean the content is unchanged (modulo a 2⁻⁶⁴
    /// collision) and the snapshot can be reused without recomputing the
    /// digest, sniff, or entropy.
    pub fingerprint: u64,
    /// The VFS [content stamp](cryptodrop_vfs::content_stamp) of the
    /// content this snapshot describes, or `0` when unknown. A nonzero
    /// stamp equal to a close outcome's stamp proves the content is
    /// unchanged in O(1), without the fingerprint's O(n) pass.
    pub stamp: u64,
    /// Analysis intermediates for incremental re-analysis, when captured
    /// with incremental analysis enabled.
    pub incr: Option<Arc<IncrState>>,
}

// Hand-written (not derived) so that serialization covers the five
// analysis fields only: `stamp` and `incr` are in-memory cache
// acceleration, meaningless outside the process that captured them.
impl Serialize for FileSnapshot {
    fn to_value(&self) -> serde::ser::Value {
        serde::ser::Value::Map(vec![
            ("file_type".to_string(), self.file_type.to_value()),
            ("digest".to_string(), self.digest.to_value()),
            ("entropy".to_string(), self.entropy.to_value()),
            ("len".to_string(), self.len.to_value()),
            ("fingerprint".to_string(), self.fingerprint.to_value()),
        ])
    }
}

impl Deserialize for FileSnapshot {}

impl PartialEq for FileSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.file_type == other.file_type
            && self.digest == other.digest
            && self.entropy == other.entropy
            && self.len == other.len
            && self.fingerprint == other.fingerprint
    }
}

impl FileSnapshot {
    /// Captures a snapshot from file content, digesting at most
    /// `max_digest_bytes` (a prefix digest bounds per-operation cost on
    /// huge files while remaining comparable against other prefix digests).
    pub fn capture(data: &[u8], max_digest_bytes: usize) -> Self {
        Self::capture_reusing(data, max_digest_bytes, None, None)
    }

    /// Captures a snapshot, reusing analysis products the caller already
    /// computed over the same content.
    ///
    /// * `file_type` — the sniffed type of the *full* content, if already
    ///   sniffed (the engine's close path sniffs once and shares the
    ///   result between the funneling indicator, the type-change
    ///   indicator, and this refresh).
    /// * `digest` — the sdhash digest of the content's
    ///   `max_digest_bytes` prefix, if already computed: `Some(None)`
    ///   records "computed, content undigestible" and also skips the
    ///   recompute. The similarity indicator digests exactly this window,
    ///   so its post-image digest is directly reusable here.
    ///
    /// Produces a value identical to [`FileSnapshot::capture`] as long as
    /// the reused pieces were computed over the same bytes.
    pub fn capture_reusing(
        data: &[u8],
        max_digest_bytes: usize,
        file_type: Option<FileType>,
        digest: Option<Option<SdDigest>>,
    ) -> Self {
        let window = &data[..data.len().min(max_digest_bytes)];
        // Entropy and fingerprint fuse into one pass when the digest
        // window spans the whole content (the overwhelmingly common
        // case); oversized files pay one extra pass for the full-content
        // fingerprint.
        let (entropy, fingerprint) = if window.len() == data.len() {
            let (hist, fp) = ByteHistogram::from_bytes_with_fingerprint(window);
            (hist.entropy_lut(), fp)
        } else {
            (
                ByteHistogram::from_bytes(window).entropy_lut(),
                content_fingerprint(data),
            )
        };
        Self {
            file_type: file_type.unwrap_or_else(|| sniff(data)),
            digest: digest.unwrap_or_else(|| SdDigest::compute(window)),
            entropy,
            len: data.len() as u64,
            fingerprint,
            stamp: 0,
            incr: None,
        }
    }

    /// Captures a snapshot *with* the incremental-analysis intermediates
    /// ([`IncrState`]) retained, and the given content stamp recorded, so
    /// a later close of the same file can be analysed from its dirty
    /// extents alone. Analysis fields are identical to
    /// [`FileSnapshot::capture`] over the same bytes.
    pub fn capture_incremental(
        data: &[u8],
        max_digest_bytes: usize,
        stamp: u64,
        file_type: Option<FileType>,
    ) -> Self {
        let window = &data[..data.len().min(max_digest_bytes)];
        let (histogram, fingerprint) = if window.len() == data.len() {
            ByteHistogram::from_bytes_with_fingerprint(window)
        } else {
            (
                ByteHistogram::from_bytes(window),
                content_fingerprint(data),
            )
        };
        let (digest, features) = match SdDigest::compute_with_cache(window) {
            Some((d, c)) => (Some(d), Some(c)),
            None => (None, None),
        };
        Self {
            file_type: file_type.unwrap_or_else(|| sniff(data)),
            digest,
            entropy: histogram.entropy_lut(),
            len: data.len() as u64,
            fingerprint,
            stamp,
            incr: Some(Arc::new(IncrState {
                histogram,
                features,
            })),
        }
    }
}

/// The evolving reputation state of one monitored process.
#[derive(Debug, Clone)]
pub struct ProcessState {
    pid: ProcessId,
    name: String,
    score: u32,
    entropy: EntropyDeltaTracker,
    funnel: FunnelTracker,
    deletions: DeletionTracker,
    primaries: BTreeSet<Indicator>,
    union_triggered: bool,
    union_at_nanos: Option<u64>,
    hits: Vec<IndicatorHit>,
    lost: BTreeSet<FileId>,
    first_reads_seen: BTreeSet<FileId>,
    modified_files: BTreeSet<FileId>,
    burst_times: VecDeque<u64>,
    // High-water mark of burst timestamps: eviction measures window age
    // against this, not the (possibly out-of-order) latest arrival, so a
    // clock.latency fault delivering a stale `at_nanos` cannot stall the
    // window (see `record_burst`).
    burst_watermark: u64,
    // Files whose cross-family read baseline was already folded into this
    // family's entropy tracker (collusion defense; distinct from
    // `first_reads_seen` so funneling sampling is unperturbed).
    inherited_reads: BTreeSet<FileId>,
    // First-modification rate budget (token bucket). `rate_primed` lazily
    // fills the bucket to capacity on first use, so constructing state
    // never needs the engine `Config`.
    rate_tokens: u32,
    rate_last_nanos: u64,
    rate_primed: bool,
    detected: bool,
    permitted: bool,
}

impl ProcessState {
    /// Creates fresh state for a process.
    pub fn new(pid: ProcessId, name: &str, cfg: &ScoreConfig) -> Self {
        Self {
            pid,
            name: name.to_string(),
            score: 0,
            entropy: EntropyDeltaTracker::new(cfg.entropy_delta_threshold),
            funnel: FunnelTracker::new(cfg.funnel_gap),
            deletions: DeletionTracker::new(cfg.deletion_allowance),
            primaries: BTreeSet::new(),
            union_triggered: false,
            union_at_nanos: None,
            hits: Vec::new(),
            lost: BTreeSet::new(),
            first_reads_seen: BTreeSet::new(),
            modified_files: BTreeSet::new(),
            burst_times: VecDeque::new(),
            burst_watermark: 0,
            inherited_reads: BTreeSet::new(),
            rate_tokens: 0,
            rate_last_nanos: 0,
            rate_primed: false,
            detected: false,
            permitted: false,
        }
    }

    /// Awards an indicator hit: adds its points, tracks primaries, and
    /// applies the one-time union bonus when all three primaries have been
    /// seen (paper §III-E, §V-B2).
    pub fn award(&mut self, cfg: &ScoreConfig, union_enabled: bool, hit: IndicatorHit) {
        self.score += hit.points;
        if hit.indicator.is_primary() {
            self.primaries.insert(hit.indicator);
        }
        let at_nanos = hit.at_nanos;
        self.hits.push(hit);
        if union_enabled
            && !self.union_triggered
            && Indicator::PRIMARY.iter().all(|p| self.primaries.contains(p))
        {
            self.union_triggered = true;
            self.union_at_nanos = Some(at_nanos);
            self.score += cfg.union_bonus;
        }
    }

    /// The detection threshold currently applying to this process: the
    /// lowered union threshold once union indication has occurred.
    pub fn effective_threshold(&self, cfg: &ScoreConfig) -> u32 {
        if self.union_triggered {
            cfg.union_threshold
        } else {
            cfg.non_union_threshold
        }
    }

    /// Whether the score — decayed to `now_nanos` under the configured
    /// [`DecayPolicy`] — has reached the effective threshold. With
    /// [`DecayPolicy::None`] this is the raw-score comparison the paper
    /// specifies.
    pub fn over_threshold(&self, cfg: &ScoreConfig, now_nanos: u64) -> bool {
        self.decayed_score(cfg, now_nanos) >= self.effective_threshold(cfg)
    }

    /// The reputation score with every award aged to `now_nanos` under
    /// `cfg.decay`: the sum of each hit's decayed value plus the decayed
    /// union bonus. Raw per-hit points are never mutated — this is a pure
    /// re-summation, so the audit trail can replay it exactly.
    ///
    /// Awards carry timestamps from the simulated clock, which fault
    /// injection can deliver out of order; an award "from the future"
    /// (`at_nanos > now_nanos`) is simply not aged yet (age saturates
    /// to 0).
    ///
    /// With [`DecayPolicy::None`] (the default) this returns the raw
    /// score without touching the hit list.
    pub fn decayed_score(&self, cfg: &ScoreConfig, now_nanos: u64) -> u32 {
        let policy = &cfg.decay;
        if policy.is_none() {
            return self.score;
        }
        let mut total: u64 = self
            .hits
            .iter()
            .map(|h| u64::from(policy.value(h.points, now_nanos.saturating_sub(h.at_nanos))))
            .sum();
        if self.union_triggered {
            let at = self.union_at_nanos.unwrap_or(0);
            total += u64::from(policy.value(cfg.union_bonus, now_nanos.saturating_sub(at)));
        }
        u32::try_from(total).unwrap_or(u32::MAX)
    }

    /// Records that a pre-existing protected file's content was destroyed
    /// (modified, deleted, or replaced) by this process. Returns `true`
    /// the first time a given file is recorded.
    pub fn record_loss(&mut self, file: FileId) -> bool {
        self.lost.insert(file)
    }

    /// Marks the first modification of a file by this process, returning
    /// `true` exactly once per file (the write-burst indicator's unit of
    /// account).
    pub fn first_modification(&mut self, file: FileId) -> bool {
        self.modified_files.insert(file)
    }

    /// Slides a first-modification timestamp into the burst window and
    /// returns `true` when the modification count within the window
    /// exceeds `threshold` (this modification scores).
    ///
    /// Eviction ages entries against the *high-water mark* of all
    /// timestamps seen, not the latest arrival: a `clock.latency` fault
    /// (or any reordering between pipeline hand-off and analysis) can
    /// deliver `at_nanos` values out of order, and measuring the window
    /// from a stale arrival would stop evicting — the window would only
    /// ever grow, inflating burst counts forever after one reordered
    /// record. Under a monotonic clock the watermark *is* the latest
    /// arrival, so behavior is unchanged. Out-of-order arrivals that are
    /// already older than the window are dropped rather than admitted; a
    /// retained deque is no longer timestamp-sorted, so eviction scans
    /// the whole (window-bounded) deque instead of popping a sorted
    /// front.
    pub fn record_burst(&mut self, at_nanos: u64, window_nanos: u64, threshold: u32) -> bool {
        self.burst_watermark = self.burst_watermark.max(at_nanos);
        let horizon = self.burst_watermark.saturating_sub(window_nanos);
        if at_nanos >= horizon {
            self.burst_times.push_back(at_nanos);
        }
        self.burst_times.retain(|&t| t >= horizon);
        self.burst_times.len() as u32 > threshold
    }

    /// Refills this family's first-modification token bucket to
    /// `now_nanos` (one token per `refill_nanos` of simulated time, up to
    /// `capacity`) and returns the token count. The bucket starts full on
    /// first use. Refill measures only *forward* progress of the clock —
    /// a non-monotonic `now_nanos` (fault-injected latency reordering)
    /// neither refills nor drains.
    pub fn rate_refill(&mut self, now_nanos: u64, capacity: u32, refill_nanos: u64) -> u32 {
        let refill_nanos = refill_nanos.max(1);
        if !self.rate_primed {
            self.rate_primed = true;
            self.rate_tokens = capacity;
            self.rate_last_nanos = now_nanos;
            return self.rate_tokens;
        }
        let elapsed = now_nanos.saturating_sub(self.rate_last_nanos);
        let earned = elapsed / refill_nanos;
        let missing = u64::from(capacity.saturating_sub(self.rate_tokens));
        if earned >= missing {
            self.rate_tokens = capacity;
            // A full bucket cannot bank surplus time.
            self.rate_last_nanos = now_nanos;
        } else {
            self.rate_tokens += earned as u32;
            // Keep the remainder: partial progress toward the next token
            // carries over.
            self.rate_last_nanos += earned * refill_nanos;
        }
        self.rate_tokens
    }

    /// Draws one token from the bucket (after refilling to `now_nanos`),
    /// returning `true` if a token was available. A `false` return means
    /// the family's sustained first-modification rate has outrun the
    /// budget — the caller delays its destructive operations until the
    /// bucket refills.
    pub fn rate_consume(&mut self, now_nanos: u64, capacity: u32, refill_nanos: u64) -> bool {
        if self.rate_refill(now_nanos, capacity, refill_nanos) > 0 {
            self.rate_tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Tokens currently in the bucket (no refill; telemetry/tests).
    pub fn rate_tokens(&self) -> u32 {
        self.rate_tokens
    }

    /// Marks a cross-family read baseline for `file` as folded into this
    /// family's entropy tracker, returning `true` exactly once per file
    /// (the collusion defense must not double-count a baseline across the
    /// writer's chunked writes).
    pub fn inherit_read_baseline(&mut self, file: FileId) -> bool {
        self.inherited_reads.insert(file)
    }

    /// Marks the process as user-permitted: the user reviewed a detection
    /// and allowed the activity (paper §IV-A: the engine "requests
    /// permission from the user to allow the process to continue"). A
    /// permitted process is no longer scored or re-suspended.
    pub fn mark_permitted(&mut self) {
        self.permitted = true;
    }

    /// Whether the user permitted this process to continue.
    pub fn is_permitted(&self) -> bool {
        self.permitted
    }

    /// Marks the first read of a file, returning `true` exactly once per
    /// file (used to sample the funneling indicator's read types).
    pub fn first_read(&mut self, file: FileId) -> bool {
        self.first_reads_seen.insert(file)
    }

    /// Marks the process as detected (suspension verdict issued).
    pub fn mark_detected(&mut self) {
        self.detected = true;
    }

    /// Whether a detection verdict has been issued.
    pub fn is_detected(&self) -> bool {
        self.detected
    }

    /// The process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current reputation score.
    pub fn score(&self) -> u32 {
        self.score
    }

    /// Whether union indication has occurred.
    pub fn union_triggered(&self) -> bool {
        self.union_triggered
    }

    /// The number of pre-existing files lost to this process.
    pub fn files_lost(&self) -> u32 {
        self.lost.len() as u32
    }

    /// Mutable access to the entropy-delta tracker.
    pub fn entropy_mut(&mut self) -> &mut EntropyDeltaTracker {
        &mut self.entropy
    }

    /// The entropy-delta tracker.
    pub fn entropy(&self) -> &EntropyDeltaTracker {
        &self.entropy
    }

    /// Mutable access to the funneling tracker.
    pub fn funnel_mut(&mut self) -> &mut FunnelTracker {
        &mut self.funnel
    }

    /// The funneling tracker.
    pub fn funnel(&self) -> &FunnelTracker {
        &self.funnel
    }

    /// Mutable access to the deletion tracker.
    pub fn deletions_mut(&mut self) -> &mut DeletionTracker {
        &mut self.deletions
    }

    /// The deletion tracker.
    pub fn deletions(&self) -> &DeletionTracker {
        &self.deletions
    }

    /// First-modification timestamps currently inside the burst window.
    pub fn burst_window_len(&self) -> usize {
        self.burst_times.len()
    }

    /// The full hit audit trail.
    pub fn hits(&self) -> &[IndicatorHit] {
        &self.hits
    }

    /// The primary indicators seen so far.
    pub fn primaries_seen(&self) -> impl Iterator<Item = Indicator> + '_ {
        self.primaries.iter().copied()
    }

    /// Builds an externally consumable summary.
    pub fn summary(&self, cfg: &ScoreConfig) -> ProcessSummary {
        let mut hit_counts = BTreeMap::new();
        let mut hit_points = BTreeMap::new();
        for h in &self.hits {
            *hit_counts.entry(h.indicator).or_insert(0u32) += 1;
            *hit_points.entry(h.indicator).or_insert(0u32) += h.points;
        }
        ProcessSummary {
            pid: self.pid,
            name: self.name.clone(),
            score: self.score,
            threshold: self.effective_threshold(cfg),
            detected: self.detected,
            union_triggered: self.union_triggered,
            union_at_nanos: self.union_at_nanos,
            primaries_seen: self.primaries.iter().copied().collect(),
            files_lost: self.files_lost(),
            hit_counts,
            hit_points,
        }
    }
}

/// A point-in-time summary of one process's reputation state, as exposed
/// by [`Monitor`](crate::engine::Monitor).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessSummary {
    /// The process id.
    pub pid: ProcessId,
    /// The process name.
    pub name: String,
    /// Current reputation score.
    pub score: u32,
    /// The threshold currently applying (lowered after union indication).
    pub threshold: u32,
    /// Whether a detection verdict has been issued.
    pub detected: bool,
    /// Whether union indication has occurred.
    pub union_triggered: bool,
    /// Simulated time of union indication, if it occurred.
    pub union_at_nanos: Option<u64>,
    /// The primary indicators seen at least once.
    pub primaries_seen: Vec<Indicator>,
    /// The number of pre-existing protected files lost.
    pub files_lost: u32,
    /// Hit counts per indicator.
    pub hit_counts: BTreeMap<Indicator, u32>,
    /// Points per indicator.
    pub hit_points: BTreeMap<Indicator, u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(indicator: Indicator, points: u32) -> IndicatorHit {
        IndicatorHit {
            indicator,
            points,
            value: 1.0,
            threshold: 1.0,
            detail: String::new(),
            at_nanos: 7,
        }
    }

    fn state(cfg: &ScoreConfig) -> ProcessState {
        ProcessState::new(ProcessId(1), "x.exe", cfg)
    }

    #[test]
    fn scores_accumulate() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        s.award(&cfg, true, hit(Indicator::Deletion, 2));
        s.award(&cfg, true, hit(Indicator::Deletion, 2));
        assert_eq!(s.score(), 4);
        assert!(!s.union_triggered());
        assert_eq!(s.hits().len(), 2);
    }

    #[test]
    fn union_bonus_applied_exactly_once() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        s.award(&cfg, true, hit(Indicator::TypeChange, 10));
        s.award(&cfg, true, hit(Indicator::Similarity, 10));
        assert!(!s.union_triggered());
        s.award(&cfg, true, hit(Indicator::EntropyDelta, 3));
        assert!(s.union_triggered());
        assert_eq!(s.score(), 23 + cfg.union_bonus);
        // No second bonus.
        s.award(&cfg, true, hit(Indicator::TypeChange, 10));
        assert_eq!(s.score(), 33 + cfg.union_bonus);
    }

    #[test]
    fn union_lowers_threshold() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        assert_eq!(s.effective_threshold(&cfg), cfg.non_union_threshold);
        for i in Indicator::PRIMARY {
            s.award(&cfg, true, hit(i, 1));
        }
        assert_eq!(s.effective_threshold(&cfg), cfg.union_threshold);
    }

    #[test]
    fn union_can_be_disabled() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        for i in Indicator::PRIMARY {
            s.award(&cfg, false, hit(i, 1));
        }
        assert!(!s.union_triggered());
        assert_eq!(s.score(), 3);
        assert_eq!(s.effective_threshold(&cfg), cfg.non_union_threshold);
    }

    #[test]
    fn secondary_indicators_never_trigger_union() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        for _ in 0..100 {
            s.award(&cfg, true, hit(Indicator::Deletion, 2));
            s.award(&cfg, true, hit(Indicator::Funneling, 15));
        }
        assert!(!s.union_triggered());
    }

    #[test]
    fn loss_tracking_is_set_semantics() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        s.record_loss(FileId(1));
        s.record_loss(FileId(1));
        s.record_loss(FileId(2));
        assert_eq!(s.files_lost(), 2);
    }

    #[test]
    fn first_read_fires_once_per_file() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        assert!(s.first_read(FileId(9)));
        assert!(!s.first_read(FileId(9)));
        assert!(s.first_read(FileId(10)));
    }

    #[test]
    fn summary_reflects_state() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        s.award(&cfg, true, hit(Indicator::TypeChange, 10));
        s.award(&cfg, true, hit(Indicator::TypeChange, 10));
        s.record_loss(FileId(5));
        let sum = s.summary(&cfg);
        assert_eq!(sum.score, 20);
        assert_eq!(sum.hit_counts[&Indicator::TypeChange], 2);
        assert_eq!(sum.hit_points[&Indicator::TypeChange], 20);
        assert_eq!(sum.files_lost, 1);
        assert_eq!(sum.primaries_seen, vec![Indicator::TypeChange]);
        assert!(!sum.detected);
    }

    fn hit_at(indicator: Indicator, points: u32, at_nanos: u64) -> IndicatorHit {
        IndicatorHit {
            at_nanos,
            ..hit(indicator, points)
        }
    }

    #[test]
    fn decayed_score_none_is_raw() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        s.award(&cfg, true, hit_at(Indicator::TypeChange, 10, 0));
        s.award(&cfg, true, hit_at(Indicator::TypeChange, 10, 500));
        assert_eq!(s.decayed_score(&cfg, u64::MAX), s.score());
        assert!(s.over_threshold(
            &ScoreConfig {
                non_union_threshold: 20,
                ..cfg.clone()
            },
            u64::MAX
        ));
    }

    #[test]
    fn decayed_score_ages_awards_independently() {
        let cfg = ScoreConfig {
            decay: DecayPolicy::Window { window_nanos: 100 },
            ..ScoreConfig::default()
        };
        let mut s = state(&cfg);
        s.award(&cfg, true, hit_at(Indicator::TypeChange, 10, 0));
        s.award(&cfg, true, hit_at(Indicator::TypeChange, 10, 150));
        assert_eq!(s.score(), 20, "raw score never decays");
        assert_eq!(s.decayed_score(&cfg, 150), 10, "first award aged out");
        assert_eq!(s.decayed_score(&cfg, 100), 20, "both inside the window");
        assert_eq!(s.decayed_score(&cfg, 251), 0, "both aged out");
    }

    #[test]
    fn decayed_score_includes_union_bonus_from_union_time() {
        let cfg = ScoreConfig {
            decay: DecayPolicy::Window { window_nanos: 100 },
            ..ScoreConfig::default()
        };
        let mut s = state(&cfg);
        s.award(&cfg, true, hit_at(Indicator::TypeChange, 6, 0));
        s.award(&cfg, true, hit_at(Indicator::Similarity, 6, 10));
        s.award(&cfg, true, hit_at(Indicator::EntropyDelta, 3, 200));
        assert!(s.union_triggered());
        // At t=200 the first two awards are stale; the entropy hit and
        // the union bonus (stamped at the union time, 200) are fresh.
        assert_eq!(s.decayed_score(&cfg, 200), 3 + cfg.union_bonus);
        assert_eq!(s.decayed_score(&cfg, 301), 0);
    }

    #[test]
    fn decayed_score_tolerates_future_awards() {
        let cfg = ScoreConfig {
            decay: DecayPolicy::Linear { window_nanos: 100 },
            ..ScoreConfig::default()
        };
        let mut s = state(&cfg);
        s.award(&cfg, true, hit_at(Indicator::TypeChange, 10, 1_000));
        // Reordered clock: "now" precedes the award. Age saturates to 0.
        assert_eq!(s.decayed_score(&cfg, 500), 10);
    }

    #[test]
    fn burst_window_slides() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        let w = 100;
        assert!(!s.record_burst(0, w, 2));
        assert!(!s.record_burst(50, w, 2));
        assert!(s.record_burst(100, w, 2), "three inside the window");
        // 250 evicts everything at or before 149.
        assert!(!s.record_burst(250, w, 2));
        assert_eq!(s.burst_window_len(), 1);
    }

    #[test]
    fn burst_window_evicts_under_non_monotonic_clock() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        let w = 100;
        assert!(!s.record_burst(1_000, w, 1));
        // A latency fault delivers a stale timestamp *older than the
        // window*: it must not be admitted, and must not stall eviction.
        assert!(!s.record_burst(10, w, 1));
        assert_eq!(s.burst_window_len(), 1, "stale arrival dropped");
        // A stale-but-in-window arrival still counts.
        assert!(s.record_burst(950, w, 1));
        assert_eq!(s.burst_window_len(), 2);
        // Fresh arrivals keep evicting against the watermark even though
        // the previous arrival was out of order.
        assert!(!s.record_burst(2_000, w, 1));
        assert_eq!(s.burst_window_len(), 1);
    }

    #[test]
    fn burst_window_out_of_order_mid_deque_eviction() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        let w = 100;
        // Arrival order 500, 450, 520: the deque is not timestamp-sorted,
        // so the stale entry (450) sits in the middle. Advancing the
        // watermark to 551 (horizon 451) must evict it even though the
        // arrival-order front (500) survives.
        s.record_burst(500, w, 99);
        s.record_burst(450, w, 99);
        s.record_burst(520, w, 99);
        assert_eq!(s.burst_window_len(), 3);
        s.record_burst(551, w, 99);
        assert_eq!(s.burst_window_len(), 3, "450 evicted, 551 admitted");
    }

    #[test]
    fn rate_bucket_starts_full_and_drains() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        let (cap, refill) = (3u32, 100u64);
        assert!(s.rate_consume(0, cap, refill));
        assert!(s.rate_consume(0, cap, refill));
        assert!(s.rate_consume(0, cap, refill));
        assert!(!s.rate_consume(0, cap, refill), "bucket dry");
        assert_eq!(s.rate_tokens(), 0);
    }

    #[test]
    fn rate_bucket_refills_with_simulated_time() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        let (cap, refill) = (3u32, 100u64);
        for _ in 0..3 {
            assert!(s.rate_consume(0, cap, refill));
        }
        assert_eq!(s.rate_refill(99, cap, refill), 0, "not a full interval");
        assert_eq!(s.rate_refill(100, cap, refill), 1);
        // The remainder carries: 50 more nanos is still only one token.
        assert_eq!(s.rate_refill(150, cap, refill), 1);
        assert_eq!(s.rate_refill(250, cap, refill), 2);
        // Refill caps at capacity and stops banking time.
        assert_eq!(s.rate_refill(1_000_000, cap, refill), cap);
        assert!(s.rate_consume(1_000_000, cap, refill));
        assert_eq!(s.rate_tokens(), cap - 1);
    }

    #[test]
    fn rate_bucket_ignores_clock_regression() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        let (cap, refill) = (2u32, 100u64);
        assert!(s.rate_consume(1_000, cap, refill));
        assert!(s.rate_consume(1_000, cap, refill));
        // The clock runs backwards (fault injection): no refill, no panic.
        assert_eq!(s.rate_refill(500, cap, refill), 0);
        assert!(!s.rate_consume(500, cap, refill));
        // Forward progress from the original watermark refills normally.
        assert_eq!(s.rate_refill(1_100, cap, refill), 1);
    }

    #[test]
    fn inherit_read_baseline_fires_once_per_file() {
        let cfg = ScoreConfig::default();
        let mut s = state(&cfg);
        assert!(s.inherit_read_baseline(FileId(3)));
        assert!(!s.inherit_read_baseline(FileId(3)));
        assert!(s.inherit_read_baseline(FileId(4)));
        // Distinct from first-read sampling.
        assert!(s.first_read(FileId(3)));
    }

    #[test]
    fn snapshot_capture_properties() {
        let text: Vec<u8> = (0..200u32)
            .flat_map(|i| format!("line {i} of the original document\n").into_bytes())
            .collect();
        let snap = FileSnapshot::capture(&text, 1 << 20);
        assert_eq!(snap.file_type, FileType::Utf8Text);
        assert!(snap.digest.is_some());
        assert!(snap.entropy > 3.0 && snap.entropy < 5.5);
        assert_eq!(snap.len, text.len() as u64);

        let tiny = FileSnapshot::capture(b"small", 1 << 20);
        assert!(tiny.digest.is_none(), "sub-512B files have no digest");
    }

    #[test]
    fn snapshot_fingerprint_tracks_content() {
        let a = FileSnapshot::capture(b"content version one, long enough", 1 << 20);
        let b = FileSnapshot::capture(b"content version two, long enough", 1 << 20);
        let a2 = FileSnapshot::capture(b"content version one, long enough", 1 << 20);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(a, a2, "capture is deterministic, fingerprint included");
        // The fingerprint covers the full content even when the digest
        // window is capped: a change beyond the window must invalidate.
        let long: Vec<u8> = (0..4096u32).flat_map(|i| format!("{i:03} ").into_bytes()).collect();
        let mut tail_changed = long.clone();
        let n = tail_changed.len();
        tail_changed[n - 1] ^= 0x55;
        let capped = FileSnapshot::capture(&long, 1024);
        let capped_changed = FileSnapshot::capture(&tail_changed, 1024);
        assert_ne!(capped.fingerprint, capped_changed.fingerprint);
        assert_eq!(capped.fingerprint, content_fingerprint(&long));
    }

    #[test]
    fn capture_reusing_matches_plain_capture() {
        let text: Vec<u8> = (0..300u32)
            .flat_map(|i| format!("reused-analysis line {i}\n").into_bytes())
            .collect();
        let plain = FileSnapshot::capture(&text, 1 << 20);
        let window = &text[..];
        let reused = FileSnapshot::capture_reusing(
            &text,
            1 << 20,
            Some(sniff(&text)),
            Some(SdDigest::compute(window)),
        );
        assert_eq!(plain, reused);
        // Reusing a "computed, undigestible" result is also faithful.
        let tiny = b"sub-512B";
        assert_eq!(
            FileSnapshot::capture(tiny, 1 << 20),
            FileSnapshot::capture_reusing(tiny, 1 << 20, None, Some(None)),
        );
    }

    #[test]
    fn snapshot_respects_digest_cap() {
        let big: Vec<u8> = (0..64 * 1024u32)
            .flat_map(|i| format!("{i:04x}").into_bytes())
            .collect();
        let capped = FileSnapshot::capture(&big, 1024);
        let full = FileSnapshot::capture(&big, usize::MAX);
        assert_eq!(capped.len, big.len() as u64, "len is of the full content");
        // The capped digest covers only the prefix and is smaller.
        assert!(
            capped.digest.as_ref().unwrap().features() < full.digest.as_ref().unwrap().features()
        );
    }
}
