//! Baseline detectors the paper positions CryptoDrop against (§II).
//!
//! * [`IntegrityMonitor`] — a Tripwire-style file integrity checker
//!   (Kim & Spafford 1994): hash every protected file, alert on any
//!   change. The paper's critique: "these monitors are based on simple
//!   hash comparisons and fail to distinguish between legitimate file
//!   accesses and malicious modifications ... user data is expected to
//!   change frequently. Accordingly, this type of integrity monitoring is
//!   likely to be noisy and frustrate the user."
//! * [`EntropyOnlyDetector`] — the single-signal detector implicit in the
//!   entropy-analysis literature the paper cites (Lyda & Hamrock 2007):
//!   flag processes that write high-entropy data. The paper's critique is
//!   §III's broader point — any one indicator in isolation either fires
//!   on benign software (compressors, media encoders) or misses variants
//!   (low-entropy transforms).
//!
//! Both implement [`FilterDriver`] so the comparison harness can run them
//! on exactly the workloads CryptoDrop sees.

use std::collections::HashMap;
use std::sync::Arc;

use cryptodrop_entropy::shannon_entropy;
use cryptodrop_simhash::hash::sha1_words;
use cryptodrop_vfs::{
    FileId, FilterDriver, FsOp, FsView, OpContext, OpOutcome, ProcessId, VPath, Verdict,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// An alert raised by a baseline detector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineAlert {
    /// The process that triggered the alert.
    pub pid: ProcessId,
    /// Its executable name.
    pub process_name: String,
    /// The path involved.
    pub path: String,
    /// Why the alert fired.
    pub reason: String,
    /// Simulated timestamp.
    pub at_nanos: u64,
}

// ---------------------------------------------------------------------
// Tripwire-style integrity monitor
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct IntegrityState {
    /// file id -> SHA-1 of the content first seen at that id.
    hashes: HashMap<FileId, [u32; 5]>,
    alerts: Vec<BaselineAlert>,
}

/// A Tripwire-style integrity monitor over a protected directory: records
/// a cryptographic hash of each file's first-seen content and alerts on
/// *any* subsequent change or deletion. Configurably suspends the
/// offending process after a number of alerts (Tripwire itself only
/// reports; the suspension knob makes loss numbers comparable with
/// CryptoDrop's).
pub struct IntegrityMonitor {
    protected: VPath,
    /// Alerts tolerated before suspension; `None` never suspends.
    suspend_after: Option<u32>,
    state: Arc<Mutex<IntegrityState>>,
}

/// Read handle onto an [`IntegrityMonitor`]'s alerts.
#[derive(Clone)]
pub struct IntegrityHandle {
    state: Arc<Mutex<IntegrityState>>,
}

impl IntegrityMonitor {
    /// Creates a monitor over `protected`, suspending the offender after
    /// `suspend_after` alerts (or never, with `None`).
    pub fn new(protected: VPath, suspend_after: Option<u32>) -> (Self, IntegrityHandle) {
        let state = Arc::new(Mutex::new(IntegrityState::default()));
        (
            Self {
                protected,
                suspend_after,
                state: Arc::clone(&state),
            },
            IntegrityHandle { state },
        )
    }
}

impl IntegrityHandle {
    /// All alerts so far.
    pub fn alerts(&self) -> Vec<BaselineAlert> {
        self.state.lock().alerts.clone()
    }

    /// Number of alerts so far.
    pub fn alert_count(&self) -> usize {
        self.state.lock().alerts.len()
    }
}

impl FilterDriver for IntegrityMonitor {
    fn name(&self) -> &str {
        "integrity-monitor"
    }

    fn pre_op(&mut self, ctx: &OpContext<'_>, fs: &FsView<'_>) -> Verdict {
        // Record the baseline hash the first time a protected file is
        // opened (Tripwire's initial database, built lazily).
        if let FsOp::Open { path, .. } = ctx.op {
            if path.starts_with(&self.protected) {
                if let Ok(meta) = fs.metadata(path) {
                    if let (Some(id), Ok(data)) = (meta.file, fs.read_file(path)) {
                        self.state
                            .lock()
                            .state_entry(id)
                            .or_insert_with(|| sha1_words(&data));
                    }
                }
            }
        }
        Verdict::Allow
    }

    fn post_op(&mut self, ctx: &OpContext<'_>, outcome: &OpOutcome<'_>, fs: &FsView<'_>) -> Verdict {
        let (path, file) = match (ctx.op, outcome) {
            (FsOp::Close { path, modified: true }, OpOutcome::Close { file, .. }) => (path, *file),
            (FsOp::Delete { path }, OpOutcome::Delete { file }) => (path, *file),
            _ => return Verdict::Allow,
        };
        if !path.starts_with(&self.protected) {
            return Verdict::Allow;
        }
        let mut st = self.state.lock();
        let Some(&baseline) = st.hashes.get(&file) else {
            return Verdict::Allow; // a file this monitor never baselined
        };
        let changed = match fs.read_file(path) {
            Ok(current) => sha1_words(&current) != baseline,
            Err(_) => true, // deleted
        };
        if changed {
            st.alerts.push(BaselineAlert {
                pid: ctx.pid,
                process_name: ctx.process_name.to_string(),
                path: path.as_str().to_string(),
                reason: "integrity hash mismatch".to_string(),
                at_nanos: ctx.at_nanos,
            });
            // Re-baseline so each change alerts once, as Tripwire's
            // update mode would.
            if let Ok(current) = fs.read_file(path) {
                st.hashes.insert(file, sha1_words(&current));
            }
            if let Some(limit) = self.suspend_after {
                let offender = st
                    .alerts
                    .iter()
                    .filter(|a| a.pid == ctx.pid)
                    .count() as u32;
                if offender >= limit {
                    return Verdict::suspend(format!("integrity-monitor: {offender} modified files"));
                }
            }
        }
        Verdict::Allow
    }
}

impl IntegrityState {
    fn state_entry(&mut self, id: FileId) -> std::collections::hash_map::Entry<'_, FileId, [u32; 5]> {
        self.hashes.entry(id)
    }
}

// ---------------------------------------------------------------------
// Entropy-only detector
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct EntropyOnlyState {
    high_entropy_bytes: HashMap<ProcessId, u64>,
    alerts: Vec<BaselineAlert>,
    flagged: std::collections::HashSet<ProcessId>,
}

/// A single-signal detector: flag any process whose cumulative
/// high-entropy writes (> `entropy_floor` bits/byte) into the protected
/// tree exceed `byte_budget`.
pub struct EntropyOnlyDetector {
    protected: VPath,
    entropy_floor: f64,
    byte_budget: u64,
    state: Arc<Mutex<EntropyOnlyState>>,
}

/// Read handle onto an [`EntropyOnlyDetector`]'s alerts.
#[derive(Clone)]
pub struct EntropyOnlyHandle {
    state: Arc<Mutex<EntropyOnlyState>>,
}

impl EntropyOnlyDetector {
    /// Creates a detector flagging processes that write more than
    /// `byte_budget` bytes of > `entropy_floor` data under `protected`.
    pub fn new(
        protected: VPath,
        entropy_floor: f64,
        byte_budget: u64,
    ) -> (Self, EntropyOnlyHandle) {
        let state = Arc::new(Mutex::new(EntropyOnlyState::default()));
        (
            Self {
                protected,
                entropy_floor,
                byte_budget,
                state: Arc::clone(&state),
            },
            EntropyOnlyHandle { state },
        )
    }
}

impl EntropyOnlyHandle {
    /// All alerts so far (one per flagged process).
    pub fn alerts(&self) -> Vec<BaselineAlert> {
        self.state.lock().alerts.clone()
    }

    /// Whether a given process was flagged.
    pub fn flagged(&self, pid: ProcessId) -> bool {
        self.state.lock().flagged.contains(&pid)
    }
}

impl FilterDriver for EntropyOnlyDetector {
    fn name(&self) -> &str {
        "entropy-only"
    }

    fn post_op(&mut self, ctx: &OpContext<'_>, outcome: &OpOutcome<'_>, _fs: &FsView<'_>) -> Verdict {
        let (FsOp::Write { path, data, .. }, OpOutcome::Write { .. }) = (ctx.op, outcome) else {
            return Verdict::Allow;
        };
        if !path.starts_with(&self.protected) || data.is_empty() {
            return Verdict::Allow;
        }
        if shannon_entropy(data) < self.entropy_floor {
            return Verdict::Allow;
        }
        let mut st = self.state.lock();
        let total = *st
            .high_entropy_bytes
            .entry(ctx.pid)
            .and_modify(|b| *b += data.len() as u64)
            .or_insert(data.len() as u64);
        if total > self.byte_budget && st.flagged.insert(ctx.pid) {
            st.alerts.push(BaselineAlert {
                pid: ctx.pid,
                process_name: ctx.process_name.to_string(),
                path: path.as_str().to_string(),
                reason: format!("{total} bytes of high-entropy writes"),
                at_nanos: ctx.at_nanos,
            });
            return Verdict::suspend("entropy-only: high-entropy write budget exceeded");
        }
        Verdict::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_vfs::{OpenOptions, Vfs};

    fn setup() -> (Vfs, VPath) {
        let mut fs = Vfs::new();
        let docs = VPath::new("/docs");
        for i in 0..10 {
            let body: Vec<u8> = (0..100u32)
                .flat_map(|l| format!("doc {i} line {l} everyday words\n").into_bytes())
                .collect();
            fs.admin().write_file(&docs.join(format!("f{i}.txt")), &body).unwrap();
        }
        (fs, docs)
    }

    fn high_entropy(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn integrity_monitor_alerts_on_any_change() {
        let (mut fs, docs) = setup();
        let (mon, handle) = IntegrityMonitor::new(docs.clone(), None);
        fs.register_filter(Box::new(mon));
        let pid = fs.spawn_process("editor.exe");

        // A perfectly benign edit alerts — the paper's noise critique.
        let path = docs.join("f0.txt");
        let mut data = fs.read_file(pid, &path).unwrap();
        data.extend_from_slice(b"one more line\n");
        fs.write_file(pid, &path, &data).unwrap();
        assert_eq!(handle.alert_count(), 1);

        // Deletion alerts too.
        fs.delete(pid, &docs.join("f1.txt")).unwrap_or_else(|e| {
            // f1 must be baselined first: open it read-only, then delete.
            panic!("delete failed: {e}")
        });
        // f1 was never opened, so it was never baselined: no alert.
        assert_eq!(handle.alert_count(), 1);

        // Open-then-delete alerts.
        let p2 = docs.join("f2.txt");
        let h = fs.open(pid, &p2, OpenOptions::read()).unwrap();
        fs.close(pid, h).unwrap();
        fs.delete(pid, &p2).unwrap();
        assert_eq!(handle.alert_count(), 2);
    }

    #[test]
    fn integrity_monitor_rebaselines_after_alert() {
        let (mut fs, docs) = setup();
        let (mon, handle) = IntegrityMonitor::new(docs.clone(), None);
        fs.register_filter(Box::new(mon));
        let pid = fs.spawn_process("editor.exe");
        let path = docs.join("f0.txt");
        for round in 0..3 {
            let data = format!("version {round}").into_bytes();
            fs.write_file(pid, &path, &data).unwrap();
        }
        assert_eq!(handle.alert_count(), 3, "one alert per distinct change");
    }

    #[test]
    fn integrity_monitor_can_suspend() {
        let (mut fs, docs) = setup();
        let (mon, _handle) = IntegrityMonitor::new(docs.clone(), Some(3));
        fs.register_filter(Box::new(mon));
        let pid = fs.spawn_process("bulk.exe");
        let mut blocked = false;
        for i in 0..10 {
            let path = docs.join(format!("f{i}.txt"));
            if fs.write_file(pid, &path, &high_entropy(256, i as u64 + 1)).is_err() {
                blocked = true;
                break;
            }
        }
        assert!(blocked, "suspension engaged after the alert budget");
        assert!(fs.is_suspended(pid));
    }

    #[test]
    fn entropy_only_flags_bulk_high_entropy_writers() {
        let (mut fs, docs) = setup();
        let (det, handle) = EntropyOnlyDetector::new(docs.clone(), 7.0, 16 * 1024);
        fs.register_filter(Box::new(det));
        let pid = fs.spawn_process("packer.exe");
        let mut blocked = false;
        for i in 0..20 {
            let path = docs.join(format!("out{i}.bin"));
            if fs
                .write_file(pid, &path, &high_entropy(4096, 100 + i as u64))
                .is_err()
            {
                blocked = true;
                break;
            }
        }
        assert!(blocked);
        assert!(handle.flagged(pid));
        assert_eq!(handle.alerts().len(), 1);
    }

    #[test]
    fn entropy_only_misses_low_entropy_transforms() {
        // The single-byte-XOR blind spot: byte-value permutation keeps
        // entropy identical, so an entropy-only detector sees nothing —
        // while CryptoDrop's type-change and similarity indicators fire.
        let (mut fs, docs) = setup();
        let (det, handle) = EntropyOnlyDetector::new(docs.clone(), 7.0, 16 * 1024);
        fs.register_filter(Box::new(det));
        let pid = fs.spawn_process("xorist1b.exe");
        for i in 0..10 {
            let path = docs.join(format!("f{i}.txt"));
            let Ok(data) = fs.read_file(pid, &path) else { continue };
            let xored: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
            fs.write_file(pid, &path, &xored).unwrap();
        }
        assert!(!handle.flagged(pid), "entropy-only is blind to this variant");
        assert!(handle.alerts().is_empty());
        assert!(!fs.is_suspended(pid));
    }

    #[test]
    fn entropy_only_ignores_activity_outside_scope() {
        let (mut fs, docs) = setup();
        let (det, handle) = EntropyOnlyDetector::new(docs, 7.0, 1024);
        fs.register_filter(Box::new(det));
        let pid = fs.spawn_process("builder.exe");
        fs.create_dir_all(pid, &VPath::new("/build")).unwrap();
        for i in 0..20 {
            fs.write_file(
                pid,
                &VPath::new(format!("/build/o{i}.bin")),
                &high_entropy(4096, i as u64 + 7),
            )
            .unwrap();
        }
        assert!(handle.alerts().is_empty());
    }
}
