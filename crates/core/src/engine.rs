//! The CryptoDrop analysis engine (paper §IV, Fig. 2).
//!
//! [`CryptoDrop`] implements the VFS [`FilterDriver`] interface — the
//! analogue of the paper's kernel minifilter + analysis engine pair. It
//! watches every operation against the protected directories (and against
//! files *moved out* of them, defeating Class B laundering), maintains the
//! per-process reputation scoreboard, and returns a suspension verdict when
//! a process crosses its effective threshold.
//!
//! Because the filter is owned by the [`Vfs`](cryptodrop_vfs::Vfs) once
//! registered, construction returns a paired [`Monitor`] handle sharing the
//! engine's state, through which callers read scores, summaries, and
//! detection reports — the "user notification" side of Fig. 2.
//!
//! # Concurrency and caching
//!
//! The engine's state is split into independently locked shards so that
//! several [`Vfs`](cryptodrop_vfs::Vfs) instances (one per OS thread, see
//! [`CryptoDrop::fork`]) can drive one shared scoreboard without
//! contending unless they actually touch the same process family, path, or
//! file. Snapshots are keyed by a 64-bit content fingerprint so re-opening
//! or re-closing a file whose bytes have not changed skips the expensive
//! sniff/sdhash/entropy recompute entirely; see `DESIGN.md` ("Engine
//! concurrency & caching") for the shard layout and cache invariants.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cryptodrop_entropy::ByteHistogram;
use cryptodrop_simhash::{content_fingerprint, FeatureCache, SdDigest};
use cryptodrop_sniff::{sniff, FileType};
use cryptodrop_telemetry::{Counter, Histogram, JournalKind, Telemetry};
use cryptodrop_vfs::{
    DirtyReport, FileId, FilterDriver, FsOp, FsView, OpContext, OpOutcome, ProcessId, VPath,
    Verdict, MAX_DIRTY_EXTENTS,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::config::Config;
use crate::indicators::similarity::{self, PostImageDigest, SimilarityOutcome};
use crate::indicators::type_change::{self, TypeChangeOutcome};
use crate::indicators::{Indicator, IndicatorHit};
use crate::pipeline::PipelineShared;
use crate::record::{OpRecord, RecordBody};
use crate::state::{FileSnapshot, IncrState, ProcessState, ProcessSummary};

/// The suspension reason issued when a member of an already-flagged (and
/// not user-permitted) process family keeps issuing operations.
const FAMILY_FLAGGED: &str = "cryptodrop: process family previously flagged";

/// A detection: one process crossed its threshold and was suspended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// The offending process.
    pub pid: ProcessId,
    /// Its executable name.
    pub process_name: String,
    /// The score at detection time.
    pub score: u32,
    /// The threshold that was crossed (union-lowered if applicable).
    pub threshold: u32,
    /// Whether union indication had occurred (paper §V-B2 reports 93% of
    /// samples with at least one union indication).
    pub union_triggered: bool,
    /// Pre-existing protected files lost before detection — the paper's
    /// primary metric (§V-B1).
    pub files_lost: u32,
    /// Simulated detection time.
    pub at_nanos: u64,
    /// The primary indicators that had fired.
    pub primaries_seen: Vec<Indicator>,
}

impl DetectionReport {
    /// The human-readable suspension reason delivered to the VFS (and
    /// recorded in the process table's suspension record).
    pub fn reason(&self) -> String {
        format!(
            "cryptodrop: score {} reached threshold {}{} after {} files lost",
            self.score,
            self.threshold,
            if self.union_triggered {
                " (union indication)"
            } else {
                ""
            },
            self.files_lost
        )
    }
}

/// Snapshot-cache effectiveness counters, exposed via
/// [`Monitor::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Snapshot refreshes satisfied by an unchanged content fingerprint
    /// (no sniff/digest/entropy recompute).
    pub hits: u64,
    /// Snapshot refreshes that had to recompute (content changed, or no
    /// prior snapshot existed).
    pub misses: u64,
    /// Path-keyed snapshots evicted to honour
    /// [`Config::snapshot_cache_capacity`] (or, for pinned post-delete
    /// snapshots, [`Config::pinned_snapshot_budget`]).
    pub evictions: u64,
    /// Path-keyed snapshots currently resident.
    pub resident: u64,
    /// Resident snapshots that are pinned (post-delete retentions,
    /// excluded from the LRU cap).
    pub pinned: u64,
    /// Times the fingerprint-cache hit path found its snapshot missing
    /// and degraded to a recompute instead of panicking. Always 0 in a
    /// healthy engine.
    pub anomalies: u64,
}

/// Shard fan-out. 16 shards keeps the fixed arrays tiny while making
/// same-shard collisions between unrelated process families / paths rare
/// at the process counts the workloads produce.
const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

/// Maps an already-hashed key to its shard. The Fibonacci multiplier
/// spreads small sequential ids (pids, file ids) across shards.
fn shard_index(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SHARD_BITS)) as usize
}

/// FNV-1a over a path's textual form, for path-shard selection.
fn path_key(path: &VPath) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in path.as_str().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One shard of the per-process-family scoreboard.
#[derive(Debug, Default)]
struct FamilyShard {
    processes: HashMap<ProcessId, ProcessState>,
}

impl FamilyShard {
    fn process_mut<'a>(
        processes: &'a mut HashMap<ProcessId, ProcessState>,
        cfg: &Config,
        pid: ProcessId,
        name: &str,
    ) -> &'a mut ProcessState {
        processes
            .entry(pid)
            .or_insert_with(|| ProcessState::new(pid, name, &cfg.score))
    }
}

/// A path-keyed snapshot plus its last-touched tick (LRU bookkeeping) and
/// its pin state (pinned entries are exempt from the LRU cap).
#[derive(Debug)]
struct PathEntry {
    snap: FileSnapshot,
    tick: u64,
    pinned: bool,
}

/// One shard of the path-keyed indices: previous-version snapshots (which
/// deliberately survive deletes, enabling the Class C link) and the
/// tracked-path set for files moved out of protected directories.
///
/// Post-delete snapshots are **pinned**: they are exactly the entries the
/// Class C delete-then-drop link depends on, so they are excluded from
/// the ordinary LRU cap and budgeted separately
/// ([`Config::pinned_snapshot_budget`]). `pinned_count` is maintained
/// incrementally so cap checks stay O(1) on the insert path.
#[derive(Debug, Default)]
struct PathShard {
    snapshots: HashMap<VPath, PathEntry>,
    tracked: HashMap<VPath, FileId>,
    pinned_count: usize,
}

impl PathShard {
    /// Clones out a snapshot, touching its LRU tick.
    fn get_snapshot(&mut self, path: &VPath, tick: u64) -> Option<FileSnapshot> {
        self.snapshots.get_mut(path).map(|e| {
            e.tick = tick;
            e.snap.clone()
        })
    }

    /// Removes a snapshot entry, maintaining the pin count.
    fn remove_snapshot(&mut self, path: &VPath) -> Option<FileSnapshot> {
        self.snapshots.remove(path).map(|e| {
            if e.pinned {
                self.pinned_count -= 1;
            }
            e.snap
        })
    }

    /// Evicts the least-recently-touched entry matching `pinned`,
    /// returning whether one existed.
    fn evict_oldest(&mut self, pinned: bool) -> bool {
        let Some(oldest) = self
            .snapshots
            .iter()
            .filter(|(_, e)| e.pinned == pinned)
            .min_by_key(|(_, e)| e.tick)
            .map(|(p, _)| p.clone())
        else {
            return false;
        };
        self.remove_snapshot(&oldest);
        true
    }

    /// Inserts (or replaces) a snapshot — fresh content makes the path
    /// live again, so a replaced entry loses any pin — and enforces the
    /// per-shard capacity by evicting least-recently-touched *unpinned*
    /// entries. Returns the number of evictions performed.
    fn insert_snapshot(&mut self, path: VPath, snap: FileSnapshot, tick: u64, cap: usize) -> u64 {
        let replaced = self.snapshots.insert(
            path,
            PathEntry {
                snap,
                tick,
                pinned: false,
            },
        );
        if replaced.is_some_and(|e| e.pinned) {
            self.pinned_count -= 1;
        }
        let mut evicted = 0u64;
        while self.snapshots.len() - self.pinned_count > cap {
            if !self.evict_oldest(false) {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    /// Pins the snapshot at `path` (no-op if absent or already pinned)
    /// and enforces the per-shard pinned budget, evicting the oldest
    /// pinned entries. Returns the number of evictions performed.
    fn pin(&mut self, path: &VPath, pinned_cap: usize) -> u64 {
        match self.snapshots.get_mut(path) {
            Some(e) if !e.pinned => {
                e.pinned = true;
                self.pinned_count += 1;
            }
            _ => return 0,
        }
        let mut evicted = 0u64;
        while self.pinned_count > pinned_cap {
            if !self.evict_oldest(true) {
                break;
            }
            evicted += 1;
        }
        evicted
    }
}

/// One shard of the open-file indices: file-id-keyed snapshots, the set
/// of files created (not pre-existing) during the engine's watch, and
/// per-file read baselines for the collusion defense.
#[derive(Debug, Default)]
struct FileShard {
    snapshots: HashMap<FileId, FileSnapshot>,
    created: HashSet<FileId>,
    /// What the most recent reading family observed of each file's
    /// content. Keyed by **file**, not by process: a colluding pair that
    /// splits the plan across a reader pid and a writer pid leaves the
    /// writer's per-family entropy tracker without a read side, which is
    /// exactly the evidence split PR 9's study proved evades the
    /// scoreboard. When a *different* family first modifies the file, it
    /// inherits this baseline (see `RecordBody::Write` handling). A
    /// write or truncate retires the entry — the content it described is
    /// gone.
    read_baselines: HashMap<FileId, ReadBaseline>,
}

/// The accumulated read-side evidence for one file: a length-weighted
/// entropy mean over the reading family's read payloads (matching
/// [`EntropyDeltaTracker`](crate::indicators::entropy_delta::EntropyDeltaTracker)'s
/// own weighting, so inheriting the baseline as a single observation is
/// equivalent to having observed every chunk). The issuing pid rides
/// along for the audit journal.
#[derive(Debug, Clone, Copy)]
struct ReadBaseline {
    /// Σ entropy·len over the reads folded into this baseline.
    weighted: f64,
    /// Σ len over the same reads.
    len: u64,
    /// The scoring key (family root) whose reads built the baseline.
    reader_key: ProcessId,
    /// The concrete pid that issued the most recent read (audit trail).
    reader_pid: ProcessId,
}

impl ReadBaseline {
    /// The length-weighted mean entropy of the folded reads.
    fn entropy(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.weighted / self.len as f64
        }
    }
}

/// Telemetry handles the engine resolves once at construction, so the
/// per-operation cost when telemetry is enabled is an atomic bump — not a
/// registry lookup — and exactly one branch when it is disabled.
struct EngineMetrics {
    /// Per-indicator evaluation latency (measured wall-clock nanoseconds),
    /// indexed by the indicator's position in [`Indicator::ALL`] (which
    /// matches its discriminant).
    eval_ns: [Histogram; Indicator::ALL.len()],
    /// Per-indicator fire counts, same indexing.
    fires: [Counter; Indicator::ALL.len()],
    /// Suspension verdicts issued.
    detections: Counter,
    /// Modified closes resolved by the content stamp alone: no sniff, no
    /// digest, no fingerprint pass (the incremental fast path's best case).
    incr_stamp_skips: Counter,
    /// Changed closes analysed from their dirty extents (histogram delta
    /// plus sdhash feature splice) instead of a whole-content recompute.
    incr_delta: Counter,
    /// Changed closes that fell back to the whole-content recompute
    /// (interference, truncation, scattered writes, oversized files, or no
    /// retained intermediates).
    incr_full: Counter,
    /// Destructive operations that hit a registered decoy file (each an
    /// instant maximum-confidence detection).
    decoy_trips: Counter,
    /// Operations delayed by reputation-driven throttling.
    throttled_ops: Counter,
    /// Threshold checks evaluated under a non-`None` decay policy.
    decay_checks: Counter,
    /// Threshold checks where the raw score had reached the threshold
    /// but the decayed score held below it (a suspension the decay
    /// policy suppressed — the cost side of forgetting old evidence).
    decay_suppressed: Counter,
    /// First-modification tokens drawn from family rate buckets.
    rate_consumed: Counter,
    /// First modifications that found their family's bucket dry.
    rate_exhausted: Counter,
    /// Destructive operations delayed because the family's rate budget
    /// was exhausted.
    rate_throttled: Counter,
    /// Cross-family read baselines folded into a writing family's
    /// entropy tracker (the collusion defense firing).
    baselines_inherited: Counter,
}

impl EngineMetrics {
    fn new(t: &Telemetry) -> Self {
        debug_assert!(Indicator::ALL
            .iter()
            .enumerate()
            .all(|(i, ind)| *ind as usize == i));
        Self {
            eval_ns: std::array::from_fn(|i| {
                t.histogram(&format!("engine.eval.{}.ns", Indicator::ALL[i].name()))
            }),
            fires: std::array::from_fn(|i| {
                t.counter(&format!("engine.indicator.{}.fires", Indicator::ALL[i].name()))
            }),
            detections: t.counter("engine.detections"),
            incr_stamp_skips: t.counter("engine.incremental.stamp_skips"),
            incr_delta: t.counter("engine.incremental.delta_applied"),
            incr_full: t.counter("engine.incremental.full_recompute"),
            decoy_trips: t.counter("engine.decoy.trips"),
            throttled_ops: t.counter("engine.throttle.ops"),
            decay_checks: t.counter("engine.decay.checks"),
            decay_suppressed: t.counter("engine.decay.suppressed"),
            rate_consumed: t.counter("engine.rate.tokens_consumed"),
            rate_exhausted: t.counter("engine.rate.exhausted"),
            rate_throttled: t.counter("engine.rate.throttled_ops"),
            baselines_inherited: t.counter("engine.entropy.baselines_inherited"),
        }
    }
}

/// The sharded engine state shared by [`CryptoDrop`] and [`Monitor`]
/// (and by every fork of the engine).
struct EngineShared {
    families: [Mutex<FamilyShard>; SHARDS],
    paths: [Mutex<PathShard>; SHARDS],
    files: [Mutex<FileShard>; SHARDS],
    detections: Mutex<Vec<DetectionReport>>,
    /// Global LRU clock for the path-snapshot cache.
    tick: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    /// Times the unchanged-close fast path found its snapshot missing and
    /// degraded to a recompute. Always 0 in a healthy engine.
    cache_anomalies: AtomicU64,
    telemetry: Telemetry,
    metrics: EngineMetrics,
    /// Registered decoy files, pre-hashed once at construction from
    /// [`Config::decoy_paths`] so the per-operation tripwire is a single
    /// set probe (and free when no decoys are configured).
    decoys: HashSet<VPath>,
}

impl EngineShared {
    fn new(telemetry: Telemetry, decoys: HashSet<VPath>) -> Self {
        let metrics = EngineMetrics::new(&telemetry);
        Self {
            families: std::array::from_fn(|_| Mutex::new(FamilyShard::default())),
            paths: std::array::from_fn(|_| Mutex::new(PathShard::default())),
            files: std::array::from_fn(|_| Mutex::new(FileShard::default())),
            detections: Mutex::new(Vec::new()),
            tick: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            cache_anomalies: AtomicU64::new(0),
            telemetry,
            metrics,
            decoys,
        }
    }
}

impl EngineShared {
    fn family_shard(&self, pid: ProcessId) -> &Mutex<FamilyShard> {
        &self.families[shard_index(u64::from(pid.0))]
    }

    fn path_shard(&self, path: &VPath) -> &Mutex<PathShard> {
        &self.paths[shard_index(path_key(path))]
    }

    fn file_shard(&self, file: FileId) -> &Mutex<FileShard> {
        &self.files[shard_index(file.0)]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Path is in scope: protected, or currently tracked after moving out
    /// of a protected directory.
    fn in_scope(&self, cfg: &Config, path: &VPath) -> bool {
        cfg.is_protected(path) || self.path_shard(path).lock().tracked.contains_key(path)
    }

    fn cache_stats(&self) -> CacheStats {
        let (mut resident, mut pinned) = (0u64, 0u64);
        for shard in &self.paths {
            let s = shard.lock();
            resident += s.snapshots.len() as u64;
            pinned += s.pinned_count as u64;
        }
        CacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            evictions: self.cache_evictions.load(Ordering::Relaxed),
            resident,
            pinned,
            anomalies: self.cache_anomalies.load(Ordering::Relaxed),
        }
    }
}

/// The CryptoDrop filter driver. Build a [`Session`](crate::Session) with
/// [`CryptoDrop::builder`], register [`Session::fork`](crate::Session::fork)
/// drivers on [`Vfs`](cryptodrop_vfs::Vfs) instances, and read results
/// through the session's [`Monitor`] view.
///
/// # Examples
///
/// ```
/// use cryptodrop::{Config, CryptoDrop};
/// use cryptodrop_vfs::{Vfs, VPath};
///
/// let mut fs = Vfs::new();
/// let docs = VPath::new("/docs");
/// let session = CryptoDrop::builder()
///     .protecting("/docs")
///     .build()
///     .expect("valid config");
/// fs.register_filter(Box::new(session.fork()));
///
/// let pid = fs.spawn_process("app.exe");
/// fs.create_dir_all(pid, &docs).unwrap();
/// fs.write_file(pid, &docs.join("note.txt"), b"benign note").unwrap();
/// assert_eq!(session.score(pid), 0);
/// assert!(session.detections().is_empty());
/// ```
pub struct CryptoDrop {
    cfg: Arc<Config>,
    shared: Arc<EngineShared>,
    /// When attached, in-scope records are enqueued to the analysis
    /// pipeline instead of being processed inline.
    pipeline: Option<Arc<PipelineShared>>,
    /// When attached, scoring feeds family reputation to the shadow store
    /// so a brewing suspect's pre-images are pinned against eviction.
    shadow: Option<Arc<cryptodrop_recovery::ShadowStore>>,
}

/// A shared read handle onto a [`CryptoDrop`] engine's state.
#[derive(Clone)]
pub struct Monitor {
    cfg: Arc<Config>,
    shared: Arc<EngineShared>,
}

impl CryptoDrop {
    /// Starts building a [`Session`](crate::Session): the one entry point
    /// for configuring, validating, and running a detector — inline or
    /// pipelined. Subsumes the deprecated `new`/`new_with_telemetry`/
    /// `fork`/`fork_engine` constructors.
    pub fn builder() -> crate::session::SessionBuilder {
        crate::session::SessionBuilder::new()
    }

    /// Creates an engine and its monitor handle, with telemetry disabled
    /// (the observability hooks cost one predicted-false branch each).
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        note = "use `CryptoDrop::builder()....build()` for a validated Session; \
                register `Session::fork()` and read through the session's Monitor view"
    )]
    pub fn new(config: Config) -> (CryptoDrop, Monitor) {
        Self::with_telemetry_inner(config, Telemetry::disabled())
    }

    /// Creates an engine wired to a [`Telemetry`] handle. When the handle
    /// is enabled, the engine records per-indicator evaluation timings and
    /// fire counts into its metric registry and journals every indicator
    /// contribution, suspension, and cache anomaly — the raw material for
    /// [`Monitor::audit_trail`] and the experiment telemetry summaries.
    /// Share the same handle with `cryptodrop_vfs::Vfs::set_telemetry` to
    /// interleave the filter's op/verdict events with the engine's on one
    /// timeline.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        note = "use `CryptoDrop::builder().telemetry(..)....build()` for a validated Session"
    )]
    pub fn new_with_telemetry(config: Config, telemetry: Telemetry) -> (CryptoDrop, Monitor) {
        Self::with_telemetry_inner(config, telemetry)
    }

    /// The non-deprecated construction path behind both the builder and
    /// the legacy shims. Does **not** validate `config`; the builder does.
    pub(crate) fn with_telemetry_inner(
        config: Config,
        telemetry: Telemetry,
    ) -> (CryptoDrop, Monitor) {
        let decoys: HashSet<VPath> = config.decoy_paths.iter().cloned().collect();
        let cfg = Arc::new(config);
        let shared = Arc::new(EngineShared::new(telemetry, decoys));
        (
            CryptoDrop {
                cfg: Arc::clone(&cfg),
                shared: Arc::clone(&shared),
                pipeline: None,
                shadow: None,
            },
            Monitor { cfg, shared },
        )
    }

    /// Creates another driver over the same scoreboard, snapshot cache,
    /// and detection log. Register forks on additional
    /// [`Vfs`](cryptodrop_vfs::Vfs) instances — one per thread — to share
    /// one engine across concurrent filesystems; unrelated process
    /// families never contend on a lock (they hash to distinct shards).
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use `Session::fork()`; forks made there also carry the pipeline handle")]
    pub fn fork(&self) -> CryptoDrop {
        self.fork_inner()
    }

    pub(crate) fn fork_inner(&self) -> CryptoDrop {
        CryptoDrop {
            cfg: Arc::clone(&self.cfg),
            shared: Arc::clone(&self.shared),
            pipeline: self.pipeline.clone(),
            shadow: self.shadow.clone(),
        }
    }

    /// A fork with no pipeline attachment: worker threads and
    /// post-shutdown degradation process records directly. The shadow
    /// attachment is kept — deferred analysis must still pin pre-images.
    pub(crate) fn detached_fork(&self) -> CryptoDrop {
        CryptoDrop {
            cfg: Arc::clone(&self.cfg),
            shared: Arc::clone(&self.shared),
            pipeline: None,
            shadow: self.shadow.clone(),
        }
    }

    /// Attaches the analysis pipeline this driver submits records to.
    pub(crate) fn attach_pipeline(&mut self, pipeline: Arc<PipelineShared>) {
        self.pipeline = Some(pipeline);
    }

    /// Attaches the shadow store this driver feeds reputation scores to.
    pub(crate) fn attach_shadow(&mut self, shadow: Arc<cryptodrop_recovery::ShadowStore>) {
        self.shadow = Some(shadow);
    }

    /// The per-shard snapshot capacity implied by
    /// [`Config::snapshot_cache_capacity`] (0 = unbounded).
    ///
    /// Capacities below [`SHARDS`] round up to one slot per shard, so a
    /// deliberately tiny cap (e.g. the bench `eviction_pressure` probe's
    /// 8) behaves as 16 single-entry caches: any shard visited by two or
    /// more paths of a cyclic sweep evicts one to admit the other on
    /// every pass. That evictions ≈ misses shape is the inherent LRU
    /// sweep pathology of capacity < working set, not a victim-order
    /// bug — see `cyclic_sweep_thrash_is_capacity_pathology_not_victim_order`.
    fn shard_cap(&self) -> usize {
        match self.cfg.snapshot_cache_capacity {
            0 => usize::MAX,
            n => n.div_ceil(SHARDS).max(1),
        }
    }

    /// The per-shard pinned-snapshot budget implied by
    /// [`Config::pinned_snapshot_budget`] (0 = unbounded).
    fn pinned_shard_cap(&self) -> usize {
        match self.cfg.pinned_snapshot_budget {
            0 => usize::MAX,
            n => n.div_ceil(SHARDS).max(1),
        }
    }
}

impl Clone for CryptoDrop {
    fn clone(&self) -> Self {
        self.fork_inner()
    }
}

impl Monitor {
    /// The engine configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Creates a filter driver over this monitor's engine state, for
    /// registering the same engine on further
    /// [`Vfs`](cryptodrop_vfs::Vfs) instances.
    ///
    /// Forks made here never carry a pipeline attachment — they process
    /// inline even when the session is pipelined, which silently forfeits
    /// the pipeline's benefits. Prefer [`Session::fork`](crate::Session::fork).
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use `Session::fork()`; forks made there also carry the pipeline handle")]
    pub fn fork_engine(&self) -> CryptoDrop {
        self.fork_engine_inner()
    }

    #[cfg(any(test, feature = "legacy-api"))]
    pub(crate) fn fork_engine_inner(&self) -> CryptoDrop {
        CryptoDrop {
            cfg: Arc::clone(&self.cfg),
            shared: Arc::clone(&self.shared),
            pipeline: None,
            shadow: None,
        }
    }

    /// The current reputation score of a process (0 if never seen).
    pub fn score(&self, pid: ProcessId) -> u32 {
        self.shared
            .family_shard(pid)
            .lock()
            .processes
            .get(&pid)
            .map_or(0, ProcessState::score)
    }

    /// The number of pre-existing protected files lost to a process.
    pub fn files_lost(&self, pid: ProcessId) -> u32 {
        self.shared
            .family_shard(pid)
            .lock()
            .processes
            .get(&pid)
            .map_or(0, ProcessState::files_lost)
    }

    /// A summary of one process's state, if the engine has seen it.
    pub fn summary(&self, pid: ProcessId) -> Option<ProcessSummary> {
        self.shared
            .family_shard(pid)
            .lock()
            .processes
            .get(&pid)
            .map(|p| p.summary(&self.cfg.score))
    }

    /// Summaries of every process the engine has seen.
    pub fn summaries(&self) -> Vec<ProcessSummary> {
        let mut v: Vec<ProcessSummary> = self
            .shared
            .families
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .processes
                    .values()
                    .map(|p| p.summary(&self.cfg.score))
                    .collect::<Vec<_>>()
            })
            .collect();
        v.sort_by_key(|s| s.pid);
        v
    }

    /// All detections so far, in order.
    pub fn detections(&self) -> Vec<DetectionReport> {
        self.shared.detections.lock().clone()
    }

    /// The detection report for one process, if it was detected.
    ///
    /// With [`Config::aggregate_process_families`] enabled (the default),
    /// pass the *family root* pid — which is what
    /// [`DetectionReport::pid`] carries.
    pub fn detection_for(&self, pid: ProcessId) -> Option<DetectionReport> {
        self.shared
            .detections
            .lock()
            .iter()
            .find(|d| d.pid == pid)
            .cloned()
    }

    /// The full indicator audit trail for one process (every hit with its
    /// points and context), in firing order.
    pub fn hits(&self, pid: ProcessId) -> Vec<crate::indicators::IndicatorHit> {
        self.shared
            .family_shard(pid)
            .lock()
            .processes
            .get(&pid)
            .map(|p| p.hits().to_vec())
            .unwrap_or_default()
    }

    /// Snapshot-cache effectiveness counters (fingerprint hits/misses,
    /// LRU evictions, resident path snapshots).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache_stats()
    }

    /// The telemetry handle the engine was constructed with (a disabled
    /// stub unless [`CryptoDrop::new_with_telemetry`] was used).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Reconstructs the full detection audit trail for one process: every
    /// indicator that fired, in order, with its measured value, threshold,
    /// points, simulated timestamp, and the running score it produced —
    /// the explanation behind a suspension (paper §IV-A). Returns `None`
    /// if the engine has never seen the pid.
    ///
    /// With [`Config::aggregate_process_families`] enabled (the default),
    /// pass the family root pid, as carried by [`DetectionReport::pid`].
    pub fn audit_trail(&self, pid: ProcessId) -> Option<crate::audit::AuditTrail> {
        let suspended_at = self.detection_for(pid).map(|d| d.at_nanos);
        self.shared
            .family_shard(pid)
            .lock()
            .processes
            .get(&pid)
            .map(|st| crate::audit::AuditTrail::rebuild(st, &self.cfg, suspended_at))
    }

    /// The user reviewed a detection and chose to allow the activity
    /// (paper §IV-A). The process (or family) is exempted from further
    /// scoring and re-suspension; pair this with
    /// [`Vfs::resume_process`](cryptodrop_vfs::Vfs::resume_process) on the
    /// suspended pid(s) to actually unblock it.
    ///
    /// Returns `false` if the engine has never seen the pid.
    pub fn permit(&self, pid: ProcessId) -> bool {
        match self
            .shared
            .family_shard(pid)
            .lock()
            .processes
            .get_mut(&pid)
        {
            Some(st) => {
                st.mark_permitted();
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for CryptoDrop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let processes: usize = self
            .shared
            .families
            .iter()
            .map(|s| s.lock().processes.len())
            .sum();
        f.debug_struct("CryptoDrop")
            .field("processes", &processes)
            .field("detections", &self.shared.detections.lock().len())
            .finish()
    }
}

/// What the zero-recompute close gate found for the file being closed.
enum CloseCache {
    /// Content changed (or the shortcut is off): ordinary recompute.
    Changed,
    /// Fingerprint-unchanged and the resident snapshot is present:
    /// reuse it outright.
    Unchanged(FileSnapshot),
    /// Fingerprint-unchanged but the resident snapshot is gone — torn
    /// cache state that degrades to a recompute plus an anomaly count.
    Torn,
}

impl CryptoDrop {
    /// Routes an indicator hit through the scoreboard, first journaling
    /// the contribution (indicator, measured value, threshold, points,
    /// path) and bumping its fire counter when telemetry is enabled.
    fn award(&self, st: &mut ProcessState, path: &VPath, hit: IndicatorHit) {
        if self.shared.telemetry.is_enabled() {
            self.shared.metrics.fires[hit.indicator as usize].inc();
            self.shared
                .telemetry
                .journal_event(hit.at_nanos, st.pid().0, || JournalKind::Indicator {
                    indicator: hit.indicator.name().to_string(),
                    value: hit.value,
                    threshold: hit.threshold,
                    points: hit.points,
                    path: path.as_str().to_string(),
                });
        }
        st.award(&self.cfg.score, self.cfg.union_enabled, hit);
        if let Some(shadow) = &self.shadow {
            // `st.pid()` is the scoring key — the family root under
            // family aggregation — which is exactly how the shadow store
            // keys its pins.
            shadow.set_reputation(st.pid(), st.score());
        }
    }

    /// The evaluation-latency histogram for one indicator.
    fn eval_timer(&self, indicator: Indicator) -> &Histogram {
        &self.shared.metrics.eval_ns[indicator as usize]
    }

    /// Evaluates the two content-comparison indicators (type change and
    /// similarity) of `current` against `snapshot`, awarding hits.
    ///
    /// `post_type` is the sniffed type of `current`, computed once by the
    /// caller (shared with the funneling indicator and the snapshot
    /// refresh). Returns what the similarity pass learned about the
    /// post-image's digest so the refresh can reuse it.
    fn evaluate_content(
        &self,
        st: &mut ProcessState,
        snapshot: &FileSnapshot,
        current: &[u8],
        post_type: FileType,
        path: &VPath,
        at_nanos: u64,
    ) -> PostImageDigest {
        let cfg = &self.cfg;
        let window = &current[..current.len().min(cfg.max_digest_bytes)];
        let timer = self.shared.telemetry.start_timer();
        let (sim_outcome, post_digest) = similarity::evaluate_full(
            snapshot.digest.as_ref(),
            snapshot.entropy,
            window,
            cfg.score.similarity_match_max,
            cfg.score.similarity_max_source_entropy,
        );
        self.eval_timer(Indicator::Similarity).record_elapsed(timer);
        self.content_hits(st, snapshot, sim_outcome, post_type, path, at_nanos);
        post_digest
    }

    /// Awards the type-change and similarity hits for one content
    /// comparison whose similarity outcome is already known — shared
    /// between [`evaluate_content`](Self::evaluate_content) and the
    /// incremental close path, which computes the post-image digest from
    /// dirty extents and evaluates similarity against it directly.
    fn content_hits(
        &self,
        st: &mut ProcessState,
        snapshot: &FileSnapshot,
        sim_outcome: SimilarityOutcome,
        post_type: FileType,
        path: &VPath,
        at_nanos: u64,
    ) {
        let cfg = &self.cfg;
        // Dynamic scoring (future work, §V-C): when the similarity
        // indicator is structurally unavailable for this file — no
        // pre-image digest exists (sub-512 B or featureless content) —
        // the remaining content indicator is weighted up to compensate.
        let type_points = if cfg.dynamic_scoring
            && matches!(
                sim_outcome,
                SimilarityOutcome::Abstain(similarity::AbstainReason::NoPreImageDigest)
            ) {
            cfg.score.points_type_change * 2
        } else {
            cfg.score.points_type_change
        };
        let timer = self.shared.telemetry.start_timer();
        let type_outcome = type_change::evaluate(snapshot.file_type, post_type);
        self.eval_timer(Indicator::TypeChange).record_elapsed(timer);
        // As with the entropy indicator, a zeroed point value disables
        // the indicator entirely — it neither scores nor counts toward
        // union indication (the adversarial study's ablation configs
        // rely on this).
        if type_points > 0 {
            if let TypeChangeOutcome::Changed { before, after } = type_outcome {
                self.award(
                    st,
                    path,
                    IndicatorHit {
                        indicator: Indicator::TypeChange,
                        points: type_points,
                        value: 1.0,
                        threshold: 1.0,
                        detail: format!(
                            "{} -> {} at {path}",
                            before.description(),
                            after.description()
                        ),
                        at_nanos,
                    },
                );
            }
        }
        if cfg.score.points_similarity > 0 {
            if let SimilarityOutcome::Dissimilar(score) = sim_outcome {
                self.award(
                    st,
                    path,
                    IndicatorHit {
                        indicator: Indicator::Similarity,
                        points: cfg.score.points_similarity,
                        value: f64::from(score),
                        threshold: f64::from(cfg.score.similarity_match_max),
                        detail: format!("similarity {score}/100 at {path}"),
                        at_nanos,
                    },
                );
            }
        }
    }

    /// Resolves the post-close "previous version" snapshot.
    ///
    /// The unchanged fast path reuses the resident snapshot. A
    /// [`CloseCache::Torn`] state — the unchanged gate matched but the
    /// snapshot is gone, which should be impossible but must not take
    /// down the filter — is counted and journaled as a cache anomaly and
    /// degrades to the ordinary miss-path recompute.
    fn resolve_close_snapshot(
        &self,
        cached: CloseCache,
        current: &[u8],
        post_type: FileType,
        reusable_digest: Option<Option<SdDigest>>,
        at_nanos: u64,
        pid: ProcessId,
    ) -> FileSnapshot {
        match cached {
            CloseCache::Unchanged(snap) => {
                self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                return snap;
            }
            CloseCache::Torn => {
                self.shared.cache_anomalies.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .telemetry
                    .journal_event(at_nanos, pid.0, || JournalKind::CacheAnomaly {
                        context: "close: unchanged fast path found no resident snapshot"
                            .to_string(),
                    });
            }
            CloseCache::Changed => {}
        }
        self.shared.cache_misses.fetch_add(1, Ordering::Relaxed);
        FileSnapshot::capture_reusing(
            current,
            self.cfg.max_digest_bytes,
            Some(post_type),
            reusable_digest,
        )
    }

    /// Computes the analysis products of a *changed* close's content under
    /// incremental analysis: histogram, sdhash digest + feature cache, and
    /// full-content fingerprint. Returns `true` in the last slot when the
    /// dirty-extent delta path was taken (histogram updated by
    /// subtract/add, unchanged sdhash feature runs spliced from the
    /// cache); `false` when it fell back to the whole-content recompute.
    ///
    /// The delta path requires an unbroken chain of custody: the resident
    /// snapshot retained its intermediates, its stamp equals the dirty
    /// report's base stamp (the snapshot describes exactly the content the
    /// handle started from), the close-time stamp equals the report's last
    /// stamp (no other handle interfered after the last write), the file
    /// did not shrink, and the whole content fits the digest window in
    /// both states. Every product is bit-identical to a from-scratch
    /// recompute — the histogram delta is exact integer arithmetic and the
    /// sdhash splice is exact by construction (property-tested).
    #[allow(clippy::type_complexity)]
    fn close_products(
        &self,
        snapshot: Option<&FileSnapshot>,
        current: &[u8],
        stamp: u64,
        dirty: Option<&DirtyReport>,
    ) -> (ByteHistogram, Option<SdDigest>, Option<FeatureCache>, u64, bool) {
        let window = &current[..current.len().min(self.cfg.max_digest_bytes)];
        'delta: {
            let (Some(snap), Some(d)) = (snapshot, dirty) else {
                break 'delta;
            };
            let Some(incr) = snap.incr.as_deref() else {
                break 'delta;
            };
            if d.full
                || stamp == 0
                || snap.stamp == 0
                || d.base_stamp != snap.stamp
                || d.last_stamp != stamp
                || snap.len != d.base_len
                || (current.len() as u64) < d.base_len
                || current.len() > self.cfg.max_digest_bytes
            {
                break 'delta;
            }
            let mut histogram = incr.histogram.clone();
            let mut spans = [(0usize, 0usize); MAX_DIRTY_EXTENTS];
            for (i, e) in d.extents.iter().enumerate() {
                let lo = e.start as usize;
                let hi = (e.end as usize).min(current.len());
                histogram.replace(&e.pre, &current[lo..hi]);
                spans[i] = (lo, hi);
            }
            let recomputed = incr
                .features
                .as_ref()
                .and_then(|c| SdDigest::recompute_dirty(c, current, &spans[..d.extents.len()]));
            // A `None` splice (or an undigestible base) recomputes sdhash
            // from scratch — the histogram delta above still stands.
            let (digest, features) = match recomputed {
                Some((dg, cache)) => (Some(dg), Some(cache)),
                None => match SdDigest::compute_with_cache(window) {
                    Some((dg, cache)) => (Some(dg), Some(cache)),
                    None => (None, None),
                },
            };
            return (histogram, digest, features, content_fingerprint(current), true);
        }
        let (histogram, fingerprint) = if window.len() == current.len() {
            ByteHistogram::from_bytes_with_fingerprint(window)
        } else {
            (
                ByteHistogram::from_bytes(window),
                content_fingerprint(current),
            )
        };
        let (digest, features) = match SdDigest::compute_with_cache(window) {
            Some((dg, cache)) => (Some(dg), Some(cache)),
            None => (None, None),
        };
        (histogram, digest, features, fingerprint, false)
    }

    /// The close path's common tail: the file's "previous version" is now
    /// what was just written, so both snapshot indices are refreshed with
    /// `fresh` (eviction-counted on the path side).
    fn finish_close(&self, path: &VPath, file: FileId, fresh: FileSnapshot) {
        self.shared
            .file_shard(file)
            .lock()
            .snapshots
            .insert(file, fresh.clone());
        let tick = self.shared.next_tick();
        let evicted = self.shared.path_shard(path).lock().insert_snapshot(
            path.clone(),
            fresh,
            tick,
            self.shard_cap(),
        );
        if evicted > 0 {
            self.shared
                .cache_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// The file's content stamp, but only when an operation payload of
    /// `len` bytes at `offset` is provably the file's **entire** content
    /// right now — otherwise `0` (unknown). Record builders attach this
    /// to read/write records so the analysis side can substitute a
    /// stamp-matching snapshot's entropy for an O(n) recompute.
    fn whole_content_stamp(&self, fs: &FsView<'_>, path: &VPath, offset: u64, len: usize) -> u64 {
        if !self.cfg.incremental_analysis || offset != 0 {
            return 0;
        }
        match fs.file_bytes(path) {
            Some(content) if content.len() == len => fs.file_stamp(path).unwrap_or(0),
            _ => 0,
        }
    }

    /// The entropy of an operation payload, reused from the file's
    /// resident snapshot when `stamp` (nonzero = the payload is the whole
    /// file content, see [`Self::whole_content_stamp`]) matches the
    /// snapshot's — i.e. the payload IS the bytes the snapshot already
    /// measured. Bit-identical to recomputing: snapshot capture and the
    /// entropy-delta tracker use the same table-driven fold. `None` means
    /// the caller must compute. The snapshot's entropy only covers its
    /// digest window, so payloads longer than `max_digest_bytes` never
    /// reuse.
    fn known_entropy(&self, file: FileId, stamp: u64, len: usize) -> Option<f64> {
        if stamp == 0 || len > self.cfg.max_digest_bytes {
            return None;
        }
        let shard = self.shared.file_shard(file).lock();
        let snap = shard.snapshots.get(&file)?;
        (snap.stamp == stamp && snap.len == len as u64).then_some(snap.entropy)
    }

    /// Whether processing `rec` inline is provably cheap — every content
    /// pass it could trigger resolves through a stamp-matching resident
    /// snapshot (or the record carries no content at all), so the analysis
    /// is O(1) in file size. The `DegradeToInline` producer fast path uses
    /// this to decide between processing a record on the calling thread
    /// (cheaper than cloning its content for the queue) and handing it to
    /// a worker (which absorbs a genuinely heavy pass off the producer's
    /// critical path). Purely a cost estimate: a stale answer under
    /// concurrent snapshot churn only mis-routes a record, never changes
    /// its verdict. Conservative on the heavy side — `false` just means
    /// "enqueue it".
    pub(crate) fn record_is_light(&self, rec: &OpRecord<'_>) -> bool {
        let cfg = &self.cfg;
        match &rec.body {
            // O(1) when the resident path snapshot already carries this
            // stamp (the `apply_refresh` fast branch); otherwise a full
            // fingerprint pass or capture runs.
            RecordBody::Refresh { path, stamp, .. } => {
                cfg.fingerprint_cache
                    && *stamp != 0
                    && self
                        .shared
                        .path_shard(path.as_ref())
                        .lock()
                        .snapshots
                        .get(path.as_ref())
                        .is_some_and(|e| e.snap.stamp == *stamp)
            }
            // No content pass at all: map probes and score bookkeeping.
            RecordBody::Open { .. } | RecordBody::Truncate { .. } | RecordBody::Delete { .. } => {
                true
            }
            // Light exactly when the entropy tracker can substitute the
            // snapshot's entropy for the O(n) fold over the payload.
            RecordBody::Read {
                file, data, stamp, ..
            }
            | RecordBody::Write {
                file, data, stamp, ..
            } => self.known_entropy(*file, *stamp, data.len()).is_some(),
            // Light when the close path would take its tier-1 stamp skip
            // (same guard, same stamp comparison) or the tier-2 dirty-
            // extent delta (O(dirty bytes) splicing plus one cheap
            // fingerprint pass — already cheaper than cloning the content
            // for the queue). Only a broken stamp chain forces the tier-3
            // full sniff/sdhash/entropy recompute, and that is the pass
            // worth handing to a worker.
            RecordBody::Close {
                file,
                current,
                stamp,
                dirty,
                ..
            } => {
                if *stamp == 0 {
                    return false;
                }
                let tier1_guard = cfg.fingerprint_cache && cfg.score.similarity_match_max < 100;
                let delta_capable = |d: &cryptodrop_vfs::DirtyReport| {
                    cfg.incremental_analysis
                        && !d.full
                        && d.last_stamp == *stamp
                        && current.len() <= cfg.max_digest_bytes
                        && (current.len() as u64) >= d.base_len
                };
                let shard = self.shared.file_shard(*file).lock();
                let Some(snap) = shard.snapshots.get(file) else {
                    return false;
                };
                (tier1_guard && snap.stamp == *stamp)
                    || dirty.as_deref().is_some_and(|d| {
                        delta_capable(d)
                            && snap.stamp != 0
                            && snap.stamp == d.base_stamp
                            && snap.len == d.base_len
                            && snap.incr.is_some()
                    })
            }
            // A replaced protected destination drags in the Class C
            // content evaluation; a plain move is bookkeeping.
            RecordBody::Rename { dest_current, .. } => dest_current.is_none(),
        }
    }

    /// After awarding hits, checks the threshold — against the score
    /// *decayed to the record's simulated time* when a
    /// [`DecayPolicy`](crate::DecayPolicy) is configured — and issues the
    /// verdict. Lock order: the caller holds the family shard; the
    /// detection log is the only lock ever taken while a family shard is
    /// held.
    fn verdict_for(&self, st: &mut ProcessState, at_nanos: u64) -> Verdict {
        let cfg = &self.cfg;
        if st.is_detected() {
            return Verdict::Allow;
        }
        let decaying = !cfg.score.decay.is_none();
        let score = st.decayed_score(&cfg.score, at_nanos);
        let threshold = st.effective_threshold(&cfg.score);
        if decaying && self.shared.telemetry.is_enabled() {
            self.shared.metrics.decay_checks.inc();
        }
        if score < threshold {
            // A raw score over the line that decayed below it is the
            // decay policy actively suppressing a suspension — make
            // every such check visible, it is the policy's cost side.
            if decaying && st.score() >= threshold && self.shared.telemetry.is_enabled() {
                self.shared.metrics.decay_suppressed.inc();
                self.shared
                    .telemetry
                    .journal_event(at_nanos, st.pid().0, || JournalKind::ScoreDecay {
                        raw: st.score(),
                        decayed: score,
                        threshold,
                    });
            }
            return Verdict::Allow;
        }
        st.mark_detected();
        let report = DetectionReport {
            pid: st.pid(),
            process_name: st.name().to_string(),
            score,
            threshold,
            union_triggered: st.union_triggered(),
            files_lost: st.files_lost(),
            at_nanos,
            primaries_seen: st.primaries_seen().collect(),
        };
        let reason = report.reason();
        self.shared.detections.lock().push(report);
        if self.shared.telemetry.is_enabled() {
            self.shared.metrics.detections.inc();
        }
        Verdict::suspend(reason)
    }

    /// The decoy endpoint a destructive operation touches, if any. Reads,
    /// closes, and directory listings never trip a decoy — enumeration
    /// tools may list and read bait files freely — but a write-open,
    /// write, truncate, delete, either rename endpoint, or attribute
    /// change on one is an instant detection (GuardFS-style bait, §V-F
    /// "future work" territory: no legitimate workflow modifies a decoy).
    fn decoy_hit<'a>(&self, op: &FsOp<'a>) -> Option<&'a VPath> {
        let d = &self.shared.decoys;
        match *op {
            FsOp::Open { path, options } if options.write && d.contains(path) => Some(path),
            FsOp::Write { path, .. } | FsOp::Truncate { path, .. } if d.contains(path) => {
                Some(path)
            }
            FsOp::Delete { path } if d.contains(path) => Some(path),
            FsOp::Rename { from, .. } if d.contains(from) => Some(from),
            FsOp::Rename { to, .. } if d.contains(to) => Some(to),
            FsOp::SetAttr { path, .. } if d.contains(path) => Some(path),
            _ => None,
        }
    }

    /// Issues the maximum-confidence decoy verdict: marks the family
    /// detected (publishing a [`DetectionReport`] at its current — often
    /// zero — score) and suspends it immediately. Same lock discipline as
    /// [`Self::verdict_for`]: the detection log is the only lock taken
    /// while the family shard is held.
    fn decoy_verdict(&self, ctx: &OpContext<'_>, key: ProcessId, decoy: &VPath) -> Verdict {
        let mut fam = self.shared.family_shard(key).lock();
        let st = FamilyShard::process_mut(&mut fam.processes, &self.cfg, key, ctx.process_name);
        if !st.is_detected() {
            st.mark_detected();
            let report = DetectionReport {
                pid: st.pid(),
                process_name: st.name().to_string(),
                score: st.decayed_score(&self.cfg.score, ctx.at_nanos),
                threshold: st.effective_threshold(&self.cfg.score),
                union_triggered: st.union_triggered(),
                files_lost: st.files_lost(),
                at_nanos: ctx.at_nanos,
                primaries_seen: st.primaries_seen().collect(),
            };
            self.shared.detections.lock().push(report);
            if self.shared.telemetry.is_enabled() {
                self.shared.metrics.detections.inc();
                self.shared.metrics.decoy_trips.inc();
            }
        }
        Verdict::suspend(format!(
            "cryptodrop: decoy file {} modified",
            decoy.as_str()
        ))
    }

    /// Time-axis throttling (pre-operation), two composable components:
    ///
    /// * **Reputation throttling** — once a family's (decayed) score has
    ///   reached [`Config::throttle_score`], each destructive in-scope
    ///   operation is delayed proportionally to the score.
    /// * **Rate-budget throttling** — while the family's
    ///   first-modification token bucket is dry
    ///   ([`Config::rate_budget_enabled`]), each destructive in-scope
    ///   operation is additionally delayed by
    ///   [`Config::rate_throttle_nanos`]. Unlike reputation throttling
    ///   this engages on *behavioral rate* alone, before any indicator
    ///   has scored — the budget is drawn down by the Write analysis
    ///   path (see `RecordBody::Write`) and refilled here against the
    ///   operation's simulated time.
    ///
    /// The delays add; returns `None` when the operation should proceed
    /// undelayed.
    fn throttle_verdict(&self, ctx: &OpContext<'_>, key: ProcessId) -> Option<Verdict> {
        let cfg = &self.cfg;
        if !cfg.throttle_enabled && !cfg.rate_budget_enabled {
            return None;
        }
        let in_scope = match ctx.op {
            FsOp::Open { path, options } if options.write => self.shared.in_scope(cfg, path),
            FsOp::Write { path, .. }
            | FsOp::Truncate { path, .. }
            | FsOp::Delete { path }
            | FsOp::SetAttr { path, .. } => self.shared.in_scope(cfg, path),
            FsOp::Rename { from, to, .. } => {
                self.shared.in_scope(cfg, from) || self.shared.in_scope(cfg, to)
            }
            _ => false,
        };
        if !in_scope {
            return None;
        }
        let (score, rate_dry) = {
            let mut fam = self.shared.family_shard(key).lock();
            match fam.processes.get_mut(&key) {
                Some(st) => (
                    st.decayed_score(&cfg.score, ctx.at_nanos),
                    cfg.rate_budget_enabled
                        && st.rate_refill(
                            ctx.at_nanos,
                            cfg.rate_budget_capacity,
                            cfg.rate_refill_nanos_per_token,
                        ) == 0,
                ),
                // A never-seen family has a full bucket and no score.
                None => (0, false),
            }
        };
        let mut delay = 0u64;
        if cfg.throttle_enabled && score >= cfg.throttle_score {
            delay = u64::from(score) * cfg.throttle_nanos_per_point;
            if self.shared.telemetry.is_enabled() {
                self.shared.metrics.throttled_ops.inc();
            }
        }
        if rate_dry {
            delay = delay.saturating_add(cfg.rate_throttle_nanos);
            if self.shared.telemetry.is_enabled() {
                self.shared.metrics.rate_throttled.inc();
                self.shared
                    .telemetry
                    .journal_event(ctx.at_nanos, key.0, || JournalKind::RateBudget {
                        tokens: 0,
                        delay_nanos: cfg.rate_throttle_nanos,
                    });
            }
        }
        if delay == 0 {
            None
        } else {
            Some(Verdict::throttle(delay))
        }
    }

    /// Refreshes the path-keyed snapshot of `path` from `data` (its
    /// content at capture time). A resident snapshot carrying the same
    /// nonzero content stamp is reused in O(1); matching content
    /// fingerprints (the O(n) pass, only consulted when a stamp is
    /// unknown) also reuse it. The expensive capture runs without any
    /// shard lock held.
    fn apply_refresh(&self, path: &VPath, data: &[u8], stamp: u64) {
        let tick = self.shared.next_tick();
        let shard = self.shared.path_shard(path);
        if self.cfg.fingerprint_cache {
            let mut guard = shard.lock();
            if let Some(entry) = guard.snapshots.get_mut(path) {
                if stamp != 0 && entry.snap.stamp == stamp {
                    entry.tick = tick;
                    drop(guard);
                    self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                // Two known, different stamps prove the content changed;
                // only an unknown stamp needs the fingerprint pass.
                if (stamp == 0 || entry.snap.stamp == 0)
                    && entry.snap.fingerprint == content_fingerprint(data)
                {
                    entry.tick = tick;
                    if self.cfg.incremental_analysis && stamp != 0 {
                        // Adopt the stamp so the next refresh is O(1).
                        entry.snap.stamp = stamp;
                    }
                    drop(guard);
                    self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        let snap = if self.cfg.incremental_analysis {
            FileSnapshot::capture_incremental(data, self.cfg.max_digest_bytes, stamp, None)
        } else {
            FileSnapshot::capture(data, self.cfg.max_digest_bytes)
        };
        self.shared.cache_misses.fetch_add(1, Ordering::Relaxed);
        let evicted = shard
            .lock()
            .insert_snapshot(path.clone(), snap, tick, self.shard_cap());
        if evicted > 0 {
            self.shared
                .cache_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// The verdict-critical family gate, run inline on every operation:
    /// `Some(Allow)` for a user-permitted family, `Some(Suspend)` for an
    /// already-detected one, `None` when analysis should proceed.
    fn family_gate(&self, key: ProcessId) -> Option<Verdict> {
        let fam = self.shared.family_shard(key).lock();
        let p = fam.processes.get(&key)?;
        if p.is_permitted() {
            // The user explicitly allowed this activity: no further
            // scoring or re-suspension (§IV-A).
            Some(Verdict::Allow)
        } else if p.is_detected() {
            // Already detected: block any family member that is still
            // issuing operations (the issuer itself is normally already
            // suspended by the VFS; siblings are caught here).
            Some(Verdict::suspend(FAMILY_FLAGGED))
        } else {
            None
        }
    }

    /// The scoring key for an operation context: the family root when
    /// family aggregation is on (the default), otherwise the issuing pid.
    fn scoring_key(&self, ctx: &OpContext<'_>) -> ProcessId {
        if self.cfg.aggregate_process_families {
            ctx.family_root
        } else {
            ctx.pid
        }
    }

    /// Builds a pre-operation snapshot-refresh record, borrowing the
    /// path's current (pre-mutation) content and its incremental stamp
    /// straight from the VFS — no copy on the inline path. `None` when the
    /// path is unreadable or empty — nothing to snapshot.
    fn build_refresh<'a>(
        &self,
        key: ProcessId,
        ctx: &OpContext<'a>,
        path: &'a VPath,
        fs: &FsView<'a>,
    ) -> Option<OpRecord<'a>> {
        let data = fs.file_bytes(path)?;
        if data.is_empty() {
            return None;
        }
        let stamp = fs.file_stamp(path).unwrap_or(0);
        Some(OpRecord {
            key,
            issuer: ctx.pid,
            process_name: Cow::Borrowed(ctx.process_name),
            at_nanos: ctx.at_nanos,
            body: RecordBody::Refresh {
                path: Cow::Borrowed(path),
                data: Cow::Borrowed(data),
                stamp,
            },
        })
    }

    /// The fast-path half of post-operation handling: scope checks and
    /// enqueue-side bookkeeping (the created-file set and the Class B
    /// tracked set, which the *next* operation's scope checks must already
    /// see), plus content capture for analyses that need bytes. Returns
    /// the analysis record, or `None` when the operation is out of scope.
    fn build_post_record<'a>(
        &self,
        key: ProcessId,
        ctx: &OpContext<'a>,
        outcome: &OpOutcome<'a>,
        fs: &FsView<'a>,
    ) -> Option<OpRecord<'a>> {
        let cfg = &self.cfg;
        let body = match (ctx.op, outcome) {
            (FsOp::Open { path, .. }, OpOutcome::Open { file, created, .. }) => {
                if *created {
                    self.shared.file_shard(*file).lock().created.insert(*file);
                }
                if !self.shared.in_scope(cfg, path) {
                    return None;
                }
                RecordBody::Open {
                    path: Cow::Borrowed(path),
                    file: *file,
                }
            }

            (FsOp::Read { path, offset, .. }, OpOutcome::Read { file, data }) => {
                if !self.shared.in_scope(cfg, path) {
                    return None;
                }
                RecordBody::Read {
                    path: Cow::Borrowed(path),
                    file: *file,
                    offset,
                    data: Cow::Borrowed(data),
                    stamp: self.whole_content_stamp(fs, path, offset, data.len()),
                }
            }

            (FsOp::Write { path, offset, data }, OpOutcome::Write { file, .. }) => {
                if !self.shared.in_scope(cfg, path) {
                    return None;
                }
                RecordBody::Write {
                    path: Cow::Borrowed(path),
                    file: *file,
                    data: Cow::Borrowed(data),
                    // Post-operation view: when the write covered the whole
                    // file, the payload IS the current content.
                    stamp: self.whole_content_stamp(fs, path, offset, data.len()),
                }
            }

            (FsOp::Truncate { path, .. }, OpOutcome::Truncate { file }) => {
                if !self.shared.in_scope(cfg, path) {
                    return None;
                }
                RecordBody::Truncate { file: *file }
            }

            (FsOp::Close { path, modified }, OpOutcome::Close { file, stamp, dirty, .. }) => {
                if !modified || !self.shared.in_scope(cfg, path) {
                    return None;
                }
                let Some(current) = fs.file_bytes(path) else {
                    return None; // deleted before close
                };
                RecordBody::Close {
                    path: Cow::Borrowed(path),
                    file: *file,
                    current: Cow::Borrowed(current),
                    stamp: *stamp,
                    dirty: dirty.map(Cow::Borrowed),
                }
            }

            (FsOp::Delete { path }, OpOutcome::Delete { file }) => {
                if !cfg.is_protected(path) {
                    return None;
                }
                RecordBody::Delete {
                    path: Cow::Borrowed(path),
                    file: *file,
                }
            }

            (FsOp::Rename { from, to, .. }, OpOutcome::Rename { file, replaced }) => {
                let from_protected = cfg.is_protected(from);
                let to_protected = cfg.is_protected(to);
                let was_tracked = self
                    .shared
                    .path_shard(from)
                    .lock()
                    .tracked
                    .remove(from)
                    .is_some();
                if !(from_protected || to_protected || was_tracked) {
                    return None;
                }
                // The Class C link needs the destination's post-move
                // content; capture it now so the analysis never reads the
                // filesystem.
                let dest_current = if to_protected && replaced.is_some() {
                    fs.read_file(to).ok()
                } else {
                    None
                };
                // Track files leaving the protected directories (Class B).
                // This is fast-path bookkeeping: the very next operation's
                // scope check must already see the tracked path.
                if cfg.track_moved_files && !to_protected && (from_protected || was_tracked) {
                    self.shared
                        .path_shard(to)
                        .lock()
                        .tracked
                        .insert(to.clone(), *file);
                }
                RecordBody::Rename {
                    from: Cow::Borrowed(from),
                    to: Cow::Borrowed(to),
                    file: *file,
                    replaced: *replaced,
                    to_protected,
                    dest_current,
                }
            }

            _ => return None,
        };
        Some(OpRecord {
            key,
            issuer: ctx.pid,
            process_name: Cow::Borrowed(ctx.process_name),
            at_nanos: ctx.at_nanos,
            body,
        })
    }

    /// The analysis body: consumes one record, runs the indicators, awards
    /// scores, and returns the verdict. A pure function of the record
    /// stream over the sharded state — it never touches the filesystem, so
    /// it runs identically inline or on a pipeline worker thread.
    pub(crate) fn process_record(&self, rec: &OpRecord<'_>) -> Verdict {
        let cfg = &self.cfg;
        let at = rec.at_nanos;
        let key = rec.key;

        if let RecordBody::Refresh { path, data, stamp } = &rec.body {
            // Refreshes are not gated: a permitted family keeps its
            // snapshots fresh for other processes' pre-images.
            self.apply_refresh(path.as_ref(), data, *stamp);
            return Verdict::Allow;
        }
        // Re-run the family gate: a queued record may be processed after
        // its family was detected (or permitted) by an earlier record.
        if let Some(v) = self.family_gate(key) {
            return v;
        }

        match &rec.body {
            RecordBody::Refresh { .. } => Verdict::Allow, // handled above

            RecordBody::Open { path, file } => {
                let path = path.as_ref();
                let tick = self.shared.next_tick();
                // Touch the LRU tick and read the stamp without cloning:
                // on a reopen the file shard usually still holds this
                // snapshot, and a matching nonzero stamp proves it
                // content-identical — the steady-state open then costs
                // two map probes and zero allocations.
                let stamp = {
                    let mut shard = self.shared.path_shard(path).lock();
                    shard.snapshots.get_mut(path).map(|e| {
                        e.tick = tick;
                        e.snap.stamp
                    })
                };
                let Some(stamp) = stamp else {
                    return Verdict::Allow;
                };
                if stamp != 0
                    && self
                        .shared
                        .file_shard(*file)
                        .lock()
                        .snapshots
                        .get(file)
                        .is_some_and(|s| s.stamp == stamp)
                {
                    return Verdict::Allow;
                }
                let snap = self
                    .shared
                    .path_shard(path)
                    .lock()
                    .get_snapshot(path, tick);
                if let Some(snap) = snap {
                    self.shared
                        .file_shard(*file)
                        .lock()
                        .snapshots
                        .insert(*file, snap);
                }
                Verdict::Allow
            }

            RecordBody::Read {
                path,
                file,
                offset,
                data,
                stamp,
            } => {
                let path = path.as_ref();
                let known = self.known_entropy(*file, *stamp, data.len());
                if known.is_some() && self.shared.telemetry.is_enabled() {
                    self.shared.metrics.incr_stamp_skips.inc();
                }
                // Resolve the payload's entropy once: folded into this
                // family's tracker below, and recorded as the file's read
                // baseline for the collusion defense. `entropy_lut_of` is
                // the exact fold `observe_read` delegates to, so routing
                // both paths through `observe_read_known` is bit-identical
                // to the split the pre-baseline engine used.
                let entropy = match known {
                    Some(entropy) => {
                        debug_assert_eq!(
                            entropy,
                            cryptodrop_entropy::entropy_lut_of(data),
                            "snapshot entropy drifted from the payload's"
                        );
                        entropy
                    }
                    None => cryptodrop_entropy::entropy_lut_of(data),
                };
                if cfg.score.points_entropy_delta > 0 && !data.is_empty() {
                    let mut shard = self.shared.file_shard(*file).lock();
                    let b = shard.read_baselines.entry(*file).or_insert(ReadBaseline {
                        weighted: 0.0,
                        len: 0,
                        reader_key: key,
                        reader_pid: rec.issuer,
                    });
                    if b.reader_key != key {
                        // A new family took over reading this file: its
                        // observations supersede the stale baseline.
                        *b = ReadBaseline {
                            weighted: 0.0,
                            len: 0,
                            reader_key: key,
                            reader_pid: rec.issuer,
                        };
                    }
                    b.weighted += entropy * data.len() as f64;
                    b.len += data.len() as u64;
                    b.reader_pid = rec.issuer;
                }
                let mut fam = self.shared.family_shard(key).lock();
                let st =
                    FamilyShard::process_mut(&mut fam.processes, cfg, key, &rec.process_name);
                st.entropy_mut().observe_read_known(entropy, data.len() as u64);
                // Sample the file's type from its leading bytes exactly once
                // per file for the funneling indicator.
                if *offset == 0 && !data.is_empty() && st.first_read(*file) {
                    let timer = self.shared.telemetry.start_timer();
                    let levels = st.funnel_mut().record_read(sniff(data));
                    self.eval_timer(Indicator::Funneling).record_elapsed(timer);
                    if levels > 0 {
                        let points = levels * cfg.score.points_funneling;
                        let gap = st.funnel().gap();
                        self.award(
                            st,
                            path,
                            IndicatorHit {
                                indicator: Indicator::Funneling,
                                points,
                                value: f64::from(gap),
                                threshold: f64::from(cfg.score.funnel_gap),
                                detail: format!("type funnel widened reading {path}"),
                                at_nanos: at,
                            },
                        );
                    }
                }
                self.verdict_for(st, at)
            }

            RecordBody::Write { path, file, data, stamp } => {
                let path = path.as_ref();
                let known = if cfg.score.points_entropy_delta > 0 {
                    self.known_entropy(*file, *stamp, data.len())
                } else {
                    None
                };
                if known.is_some() && self.shared.telemetry.is_enabled() {
                    self.shared.metrics.incr_stamp_skips.inc();
                }
                // One file-shard probe fetches the creation state and
                // retires the read baseline: this write replaces the
                // content the baseline described.
                let (created, baseline) = {
                    let mut shard = self.shared.file_shard(*file).lock();
                    (
                        shard.created.contains(file),
                        shard.read_baselines.remove(file),
                    )
                };
                let mut fam = self.shared.family_shard(key).lock();
                let st =
                    FamilyShard::process_mut(&mut fam.processes, cfg, key, &rec.process_name);
                if !created {
                    st.record_loss(*file);
                }
                // First modifications of distinct files are the unit of
                // account for both time-axis defenses: the write-burst
                // indicator (future work, §V-F) and the family rate
                // budget. A zeroed `points_burst` disables the burst
                // indicator entirely — no window bookkeeping, no 0-point
                // hits — matching the other indicators' zeroed-points
                // semantics.
                let burst_on = cfg.score.burst_enabled && cfg.score.points_burst > 0;
                if (burst_on || cfg.rate_budget_enabled) && st.first_modification(*file) {
                    if cfg.rate_budget_enabled {
                        let drawn = st.rate_consume(
                            at,
                            cfg.rate_budget_capacity,
                            cfg.rate_refill_nanos_per_token,
                        );
                        if self.shared.telemetry.is_enabled() {
                            if drawn {
                                self.shared.metrics.rate_consumed.inc();
                            } else {
                                self.shared.metrics.rate_exhausted.inc();
                            }
                        }
                    }
                    if burst_on {
                        let timer = self.shared.telemetry.start_timer();
                        let burst = st.record_burst(
                            at,
                            cfg.score.burst_window_nanos,
                            cfg.score.burst_threshold,
                        );
                        self.eval_timer(Indicator::WriteBurst).record_elapsed(timer);
                        if burst {
                            let in_window = st.burst_window_len();
                            self.award(
                                st,
                                path,
                                IndicatorHit {
                                    indicator: Indicator::WriteBurst,
                                    points: cfg.score.points_burst,
                                    value: in_window as f64,
                                    threshold: f64::from(cfg.score.burst_threshold),
                                    detail: format!("modification burst at {path}"),
                                    at_nanos: at,
                                },
                            );
                        }
                    }
                }
                // (A zeroed point value disables the indicator entirely —
                // the isolation study relies on this.)
                if cfg.score.points_entropy_delta > 0 {
                    // Collusion defense: a file whose read baseline was
                    // built by a *different* family hands that baseline to
                    // the writer before the write is folded in — the
                    // reader/writer split no longer severs the read side
                    // of the entropy delta (each file inherits at most
                    // once per writing family).
                    if let Some(b) = baseline {
                        if b.reader_key != key && b.len > 0 && st.inherit_read_baseline(*file) {
                            st.entropy_mut().observe_read_known(b.entropy(), b.len);
                            if self.shared.telemetry.is_enabled() {
                                self.shared.metrics.baselines_inherited.inc();
                                self.shared.telemetry.journal_event(at, key.0, || {
                                    JournalKind::BaselineInherited {
                                        path: path.as_str().to_string(),
                                        reader_pid: b.reader_pid.0,
                                    }
                                });
                            }
                        }
                    }
                    let timer = self.shared.telemetry.start_timer();
                    let fired = match known {
                        Some(entropy) => {
                            debug_assert_eq!(
                                entropy,
                                cryptodrop_entropy::entropy_lut_of(data),
                                "snapshot entropy drifted from the payload's"
                            );
                            st.entropy_mut().observe_write_known(entropy, data.len() as u64)
                        }
                        None => st.entropy_mut().observe_write(data),
                    };
                    self.eval_timer(Indicator::EntropyDelta).record_elapsed(timer);
                    if fired {
                        let delta = st.entropy().delta().unwrap_or_default();
                        // Small writes earn proportionally fewer points: a
                        // flood of tiny-file encryptions should not outpace
                        // the content indicators (paper §V-C's small-file
                        // dynamics).
                        let scale = (data.len() as f64
                            / cfg.score.entropy_full_weight_bytes.max(1) as f64)
                            .min(1.0);
                        let points =
                            ((cfg.score.points_entropy_delta as f64 * scale).round() as u32).max(1);
                        self.award(
                            st,
                            path,
                            IndicatorHit {
                                indicator: Indicator::EntropyDelta,
                                points,
                                value: delta,
                                threshold: cfg.score.entropy_delta_threshold,
                                detail: format!("write/read entropy delta {delta:.3} at {path}"),
                                at_nanos: at,
                            },
                        );
                    }
                }
                self.verdict_for(st, at)
            }

            RecordBody::Truncate { file } => {
                let created = {
                    let mut shard = self.shared.file_shard(*file).lock();
                    // Truncation destroys the content the read baseline
                    // described.
                    shard.read_baselines.remove(file);
                    shard.created.contains(file)
                };
                let mut fam = self.shared.family_shard(key).lock();
                let st =
                    FamilyShard::process_mut(&mut fam.processes, cfg, key, &rec.process_name);
                if !created {
                    st.record_loss(*file);
                }
                self.verdict_for(st, at)
            }

            RecordBody::Close {
                path,
                file,
                current,
                stamp,
                dirty,
            } => {
                let path = path.as_ref();
                let current: &[u8] = current.as_ref();
                let stamp = *stamp;
                // The degenerate `similarity_match_max >= 100`
                // configuration would count even self-similarity as
                // dissimilar, so it disables every unchanged shortcut.
                let shortcut_ok = cfg.fingerprint_cache && cfg.score.similarity_match_max < 100;

                // Tier 1 — stamp-unchanged, O(1): the close-time content
                // stamp equals the resident snapshot's, so the content is
                // byte-identical to the pre-image. No content indicator
                // can fire (same type; self-similarity is 100), the
                // funneling indicator reuses the snapshot's sniffed type,
                // and both snapshot indices are already current — only the
                // path entry's LRU tick needs touching. No sniff, no
                // fingerprint pass, no snapshot clone, no allocation.
                if shortcut_ok && stamp != 0 {
                    let resident_type = {
                        let fsh = self.shared.file_shard(*file).lock();
                        fsh.snapshots
                            .get(file)
                            .and_then(|s| (s.stamp == stamp).then_some(s.file_type))
                    };
                    if let Some(file_type) = resident_type {
                        self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                        if self.shared.telemetry.is_enabled() {
                            self.shared.metrics.incr_stamp_skips.inc();
                        }
                        let verdict = {
                            let mut fam = self.shared.family_shard(key).lock();
                            let st = FamilyShard::process_mut(
                                &mut fam.processes,
                                cfg,
                                key,
                                &rec.process_name,
                            );
                            if !current.is_empty() {
                                let levels = st.funnel_mut().record_written(file_type);
                                debug_assert_eq!(
                                    levels, 0,
                                    "writing types can only narrow the funnel"
                                );
                            }
                            self.verdict_for(st, at)
                        };
                        let tick = self.shared.next_tick();
                        let path_stale = {
                            let mut shard = self.shared.path_shard(path).lock();
                            match shard.snapshots.get_mut(path) {
                                Some(e) if e.snap.stamp == stamp => {
                                    e.tick = tick;
                                    false
                                }
                                _ => true,
                            }
                        };
                        if path_stale {
                            // The path index lost (or never had) this
                            // version: re-seed it from the id index.
                            let snap = self
                                .shared
                                .file_shard(*file)
                                .lock()
                                .snapshots
                                .get(file)
                                .cloned();
                            if let Some(snap) = snap {
                                let evicted = self.shared.path_shard(path).lock().insert_snapshot(
                                    path.clone(),
                                    snap,
                                    tick,
                                    self.shard_cap(),
                                );
                                if evicted > 0 {
                                    self.shared
                                        .cache_evictions
                                        .fetch_add(evicted, Ordering::Relaxed);
                                }
                            }
                        }
                        return verdict;
                    }
                }

                let snapshot = self
                    .shared
                    .file_shard(*file)
                    .lock()
                    .snapshots
                    .get(file)
                    .cloned();
                // Zero-recompute gate, fingerprint flavor: consulted only
                // when a stamp is unknown (tier 1 already resolved the
                // both-stamps-known case, and two known, different stamps
                // prove the content changed).
                let unchanged = shortcut_ok
                    && snapshot.as_ref().is_some_and(|s| {
                        (stamp == 0 || s.stamp == 0)
                            && s.fingerprint == content_fingerprint(current)
                    });

                if unchanged || !cfg.incremental_analysis {
                    // The reference path: one sniff of the final content,
                    // shared by the funneling indicator, the type-change
                    // indicator, and the refresh.
                    let post_type = sniff(current);
                    let mut reusable_digest = None;
                    let verdict = {
                        let mut fam = self.shared.family_shard(key).lock();
                        let st = FamilyShard::process_mut(
                            &mut fam.processes,
                            cfg,
                            key,
                            &rec.process_name,
                        );
                        // The funneling indicator sees the type this
                        // process wrote.
                        if !current.is_empty() {
                            let levels = st.funnel_mut().record_written(post_type);
                            debug_assert_eq!(levels, 0, "writing types can only narrow the funnel");
                        }
                        if !unchanged {
                            if let Some(snap) = &snapshot {
                                reusable_digest = self
                                    .evaluate_content(st, snap, current, post_type, path, at)
                                    .into_reusable();
                            }
                        }
                        self.verdict_for(st, at)
                    };
                    // The file's "previous version" is now what was just
                    // written; refresh both snapshot indices. Unchanged
                    // content reuses the existing snapshot outright;
                    // changed content reuses the sniff and the similarity
                    // pass's post-image digest instead of recomputing them.
                    let cached = if unchanged {
                        match snapshot {
                            Some(snap) => CloseCache::Unchanged(snap),
                            None => CloseCache::Torn,
                        }
                    } else {
                        CloseCache::Changed
                    };
                    let mut fresh = self.resolve_close_snapshot(
                        cached,
                        current,
                        post_type,
                        reusable_digest,
                        at,
                        key,
                    );
                    if cfg.incremental_analysis && stamp != 0 {
                        // Adopt the stamp so the next close takes tier 1.
                        fresh.stamp = stamp;
                    }
                    self.finish_close(path, *file, fresh);
                    return verdict;
                }

                // Tier 2/3 — changed close under incremental analysis:
                // delta-update the retained intermediates from the dirty
                // extents when the stamp chain holds, recompute from
                // scratch otherwise. Either way the products are
                // bit-identical to a full recompute, the similarity
                // indicator is evaluated against the precomputed digest,
                // and the refreshed snapshot retains its intermediates for
                // the *next* close.
                let (histogram, digest, features, fingerprint, delta) =
                    self.close_products(snapshot.as_ref(), current, stamp, dirty.as_deref());
                if self.shared.telemetry.is_enabled() {
                    if delta {
                        self.shared.metrics.incr_delta.inc();
                    } else {
                        self.shared.metrics.incr_full.inc();
                    }
                }
                let post_type = sniff(current);
                let entropy = histogram.entropy_lut();
                let verdict = {
                    let mut fam = self.shared.family_shard(key).lock();
                    let st =
                        FamilyShard::process_mut(&mut fam.processes, cfg, key, &rec.process_name);
                    if !current.is_empty() {
                        let levels = st.funnel_mut().record_written(post_type);
                        debug_assert_eq!(levels, 0, "writing types can only narrow the funnel");
                    }
                    if let Some(snap) = &snapshot {
                        let timer = self.shared.telemetry.start_timer();
                        let sim_outcome = similarity::evaluate_precomputed(
                            snap.digest.as_ref(),
                            snap.entropy,
                            digest.as_ref(),
                            cfg.score.similarity_match_max,
                            cfg.score.similarity_max_source_entropy,
                        );
                        self.eval_timer(Indicator::Similarity).record_elapsed(timer);
                        self.content_hits(st, snap, sim_outcome, post_type, path, at);
                    }
                    self.verdict_for(st, at)
                };
                self.shared.cache_misses.fetch_add(1, Ordering::Relaxed);
                let fresh = FileSnapshot {
                    file_type: post_type,
                    digest,
                    entropy,
                    len: current.len() as u64,
                    fingerprint,
                    stamp,
                    incr: Some(Arc::new(IncrState {
                        histogram,
                        features,
                    })),
                };
                debug_assert_eq!(
                    fresh,
                    FileSnapshot::capture(current, cfg.max_digest_bytes),
                    "incremental close analysis drifted from the full recompute"
                );
                self.finish_close(path, *file, fresh);
                verdict
            }

            RecordBody::Delete { path, file } => {
                let path = path.as_ref();
                let created = {
                    let mut fsh = self.shared.file_shard(*file).lock();
                    fsh.snapshots.remove(file);
                    // The path-keyed snapshot is retained deliberately: a
                    // Class C sample may later drop its encrypted copy at
                    // this path.
                    fsh.created.contains(file)
                };
                // Pin the retained snapshot: the Class C link must survive
                // unrelated cache pressure, so post-delete snapshots leave
                // the LRU population and move to the pinned budget.
                let evicted = self
                    .shared
                    .path_shard(path)
                    .lock()
                    .pin(path, self.pinned_shard_cap());
                if evicted > 0 {
                    self.shared
                        .cache_evictions
                        .fetch_add(evicted, Ordering::Relaxed);
                }
                let mut fam = self.shared.family_shard(key).lock();
                let st =
                    FamilyShard::process_mut(&mut fam.processes, cfg, key, &rec.process_name);
                // Deleting one's own temporary files is routine (§III-D);
                // only deletions of pre-existing user files count.
                if !created {
                    st.record_loss(*file);
                    let timer = self.shared.telemetry.start_timer();
                    let scored = st.deletions_mut().observe_delete();
                    self.eval_timer(Indicator::Deletion).record_elapsed(timer);
                    if scored {
                        let count = st.deletions().deletions();
                        self.award(
                            st,
                            path,
                            IndicatorHit {
                                indicator: Indicator::Deletion,
                                points: cfg.score.points_deletion,
                                value: f64::from(count),
                                threshold: f64::from(cfg.score.deletion_allowance),
                                detail: format!("bulk deletion: {path}"),
                                at_nanos: at,
                            },
                        );
                    }
                }
                self.verdict_for(st, at)
            }

            RecordBody::Rename {
                from,
                to,
                file,
                replaced,
                to_protected,
                dest_current,
            } => {
                let from = from.as_ref();
                let to = to.as_ref();
                let mut verdict = Verdict::Allow;
                if *to_protected {
                    if let Some(replaced_id) = replaced {
                        // The Class C link: an "independent" encrypted copy
                        // moved over the original is compared against the
                        // original's retained snapshot (paper §V-B2). As in
                        // the pre-shard engine, the replacement is scored
                        // against the issuing pid.
                        let tick = self.shared.next_tick();
                        let dest_snap = self
                            .shared
                            .path_shard(to)
                            .lock()
                            .get_snapshot(to, tick);
                        let created = self
                            .shared
                            .file_shard(*replaced_id)
                            .lock()
                            .created
                            .contains(replaced_id);
                        let mut fam = self.shared.family_shard(rec.issuer).lock();
                        let st = FamilyShard::process_mut(
                            &mut fam.processes,
                            cfg,
                            rec.issuer,
                            &rec.process_name,
                        );
                        if !created {
                            st.record_loss(*replaced_id);
                        }
                        if let (Some(snap), Some(current)) = (dest_snap, dest_current.as_ref()) {
                            self.evaluate_content(st, &snap, current, sniff(current), to, at);
                        }
                        verdict = self.verdict_for(st, at);
                    }
                }

                // The moved file's own snapshot follows it to the new path.
                // Whatever path-keyed history `from` held is consumed
                // either way: the file is gone from that path, and a stale
                // entry left behind would be served as the pre-image of an
                // unrelated file that later lands at `from`.
                let moved_snap = self
                    .shared
                    .file_shard(*file)
                    .lock()
                    .snapshots
                    .get(file)
                    .cloned();
                let from_snap = self.shared.path_shard(from).lock().remove_snapshot(from);
                let follow = moved_snap.or(from_snap);
                if let Some(snap) = follow {
                    let tick = self.shared.next_tick();
                    let evicted = self.shared.path_shard(to).lock().insert_snapshot(
                        to.clone(),
                        snap,
                        tick,
                        self.shard_cap(),
                    );
                    if evicted > 0 {
                        self.shared
                            .cache_evictions
                            .fetch_add(evicted, Ordering::Relaxed);
                    }
                }
                verdict
            }
        }
    }

    /// Routes a built record to the pipeline (when attached and running)
    /// or processes it inline. `wait` requests per-record completion
    /// waiting, honoured only under `Backpressure::Sync` — that mode's
    /// contract is byte-identical behavior to the inline engine, so both
    /// refreshes and post-operation records wait there, while
    /// `DegradeToInline` never waits for either.
    fn dispatch(&self, rec: OpRecord<'_>, wait: bool) -> Verdict {
        match &self.pipeline {
            Some(p) => p.submit(self, rec, wait),
            None => self.process_record(&rec),
        }
    }
}

impl FilterDriver for CryptoDrop {
    fn name(&self) -> &str {
        "cryptodrop"
    }

    fn pre_op(&mut self, ctx: &OpContext<'_>, fs: &FsView<'_>) -> Verdict {
        let cfg = &self.cfg;
        // Block members of an already-flagged (and not user-permitted)
        // process family at the front edge of their next operation.
        let key = self.scoring_key(ctx);
        if let Some(p) = self.shared.family_shard(key).lock().processes.get(&key) {
            if p.is_detected() && !p.is_permitted() {
                return Verdict::suspend(FAMILY_FLAGGED);
            }
        }
        // Decoy tripwire: any destructive touch of a registered bait file
        // is an instant maximum-confidence detection, bypassing the
        // scoreboard (no refresh needed — the decoy's content is noise).
        if !self.shared.decoys.is_empty() {
            if let Some(decoy) = self.decoy_hit(&ctx.op) {
                return self.decoy_verdict(ctx, key, decoy);
            }
        }
        let refresh = match ctx.op {
            // Snapshot a file that is about to be opened for writing —
            // before any truncation destroys the original content.
            FsOp::Open { path, options } if options.write && self.shared.in_scope(cfg, path) => {
                Some(path)
            }
            // Snapshot a protected file about to be deleted, so a later
            // move-over of an "independent" encrypted copy can still be
            // linked to the original content (§V-B2's Class C analysis).
            FsOp::Delete { path } if cfg.is_protected(path) => Some(path),
            // Snapshot a protected rename destination about to be replaced.
            FsOp::Rename { to, overwrite, .. } if overwrite && cfg.is_protected(to) => Some(to),
            _ => None,
        };
        if let Some(path) = refresh {
            if let Some(rec) = self.build_refresh(key, ctx, path, fs) {
                // `wait` keeps `Backpressure::Sync` inline-equivalent even
                // when another family touches the same path next: the
                // snapshot is refreshed before this pre-op returns.
                let _ = self.dispatch(rec, true);
            }
        }
        // Reputation-driven throttling: a suspect past the engage score
        // pays a simulated-clock delay on every destructive in-scope
        // operation, stretching its time-to-damage while the scoreboard
        // converges. Issued after the refresh so a throttled operation is
        // still fully analysed.
        if let Some(v) = self.throttle_verdict(ctx, key) {
            return v;
        }
        Verdict::Allow
    }

    fn post_op(&mut self, ctx: &OpContext<'_>, outcome: &OpOutcome<'_>, fs: &FsView<'_>) -> Verdict {
        // Reputation is tracked per process family when aggregation is on
        // (the default): a sample fanning work out across children is
        // scored — and stopped — as one unit (paper §IV).
        let key = self.scoring_key(ctx);
        if let Some(v) = self.family_gate(key) {
            return v;
        }
        let Some(rec) = self.build_post_record(key, ctx, outcome, fs) else {
            return Verdict::Allow;
        };
        self.dispatch(rec, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DecayPolicy;
    use cryptodrop_vfs::{OpenOptions, Vfs};

    const DOCS: &str = "/Users/victim/Documents";

    /// Test-local stand-in for the legacy `CryptoDrop::new` (gated behind
    /// the `legacy-api` feature): the same unvalidated construction path.
    fn new_engine(cfg: Config) -> (CryptoDrop, Monitor) {
        CryptoDrop::with_telemetry_inner(cfg, Telemetry::disabled())
    }

    fn text_content(tag: u32, n: usize) -> Vec<u8> {
        (0..)
            .flat_map(|i| format!("file {tag} paragraph {i} with ordinary words\n").into_bytes())
            .take(n)
            .collect()
    }

    fn keystream(len: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    fn encrypt(data: &[u8], seed: u64) -> Vec<u8> {
        data.iter()
            .zip(keystream(data.len(), seed))
            .map(|(b, k)| b ^ k)
            .collect()
    }

    /// Stages a small corpus and returns (vfs, monitor).
    fn setup(files: usize) -> (Vfs, Monitor) {
        let mut fs = Vfs::new();
        let docs = VPath::new(DOCS);
        for i in 0..files {
            let path = docs.join(format!("dir{}/file{i}.txt", i % 3));
            fs.admin().write_file(&path, &text_content(i as u32, 4096)).unwrap();
        }
        fs.admin().create_dir_all(&VPath::new("/tmp")).unwrap();
        let (engine, monitor) = new_engine(Config::protecting(DOCS));
        fs.register_filter(Box::new(engine));
        (fs, monitor)
    }

    /// Runs a Class A in-place encryption loop until suspended.
    fn run_class_a(fs: &mut Vfs, pid: ProcessId) -> usize {
        let docs = VPath::new(DOCS);
        let mut encrypted = 0;
        'outer: for i in 0..100 {
            let path = docs.join(format!("dir{}/file{i}.txt", i % 3));
            if fs.admin().metadata(&path).is_err() {
                continue;
            }
            let h = match fs.open(pid, &path, OpenOptions::modify()) {
                Ok(h) => h,
                Err(_) => break 'outer,
            };
            let data = match fs.read_to_end(pid, h) {
                Ok(d) => d,
                Err(_) => break 'outer,
            };
            let ct = encrypt(&data, i as u64 + 1);
            if fs.seek(pid, h, 0).is_err()
                || fs.write(pid, h, &ct).is_err()
                || fs.close(pid, h).is_err()
            {
                let _ = fs.close(pid, h);
                break 'outer;
            }
            encrypted += 1;
        }
        encrypted
    }

    #[test]
    fn class_a_ransomware_is_detected_with_few_files_lost() {
        let (mut fs, monitor) = setup(60);
        let pid = fs.spawn_process("teslacrypt.exe");
        run_class_a(&mut fs, pid);
        assert!(fs.is_suspended(pid), "ransomware must be suspended");
        let report = monitor.detection_for(pid).expect("detection report");
        assert!(report.union_triggered, "Class A trips all three primaries");
        assert!(
            report.files_lost <= 15,
            "lost {} of 60 files",
            report.files_lost
        );
        assert!(report.files_lost >= 1);
        assert_eq!(report.threshold, monitor.config().score.union_threshold);
        // The vast majority of the corpus survived.
        let surviving = fs
            .admin().files()
            .filter(|(p, d)| p.as_str().ends_with(".txt") && d.starts_with(b"file"))
            .count();
        assert!(surviving >= 45, "only {surviving} files survived");
    }

    #[test]
    fn benign_copy_is_not_detected() {
        let (mut fs, monitor) = setup(40);
        let pid = fs.spawn_process("backup.exe");
        let docs = VPath::new(DOCS);
        // Copy every document to a backup folder: reads text, writes the
        // same text. No entropy delta, no type change on originals.
        fs.create_dir_all(pid, &docs.join("backup")).unwrap();
        for i in 0..40 {
            let src = docs.join(format!("dir{}/file{i}.txt", i % 3));
            let data = fs.read_file(pid, &src).unwrap();
            fs.write_file(pid, &docs.join(format!("backup/file{i}.txt")), &data)
                .unwrap();
        }
        assert!(!fs.is_suspended(pid));
        assert_eq!(monitor.detections().len(), 0);
        let score = monitor.score(pid);
        assert!(
            score < monitor.config().score.non_union_threshold / 2,
            "benign copy scored {score}"
        );
    }

    #[test]
    fn class_b_move_out_and_back_is_tracked() {
        let (mut fs, monitor) = setup(40);
        let pid = fs.spawn_process("classb.exe");
        let docs = VPath::new(DOCS);
        let tmp = VPath::new("/tmp");
        for i in 0..40 {
            let src = docs.join(format!("dir{}/file{i}.txt", i % 3));
            if fs.admin().metadata(&src).is_err() {
                continue;
            }
            let staging = tmp.join(format!("work{i}.tmp"));
            if fs.rename(pid, &src, &staging, false).is_err() {
                break;
            }
            let h = match fs.open(pid, &staging, OpenOptions::modify()) {
                Ok(h) => h,
                Err(_) => break,
            };
            let data = fs.read_to_end(pid, h).unwrap_or_default();
            let ct = encrypt(&data, 1000 + i as u64);
            if fs.seek(pid, h, 0).is_err()
                || fs.write(pid, h, &ct).is_err()
                || fs.close(pid, h).is_err()
            {
                let _ = fs.close(pid, h);
                break;
            }
            // Move back under a scrambled name.
            let back = docs.join(format!("dir{}/LOCKED-{i}.xyz", i % 3));
            if fs.rename(pid, &staging, &back, false).is_err() {
                break;
            }
        }
        assert!(fs.is_suspended(pid), "Class B must be caught via tracking");
        let report = monitor.detection_for(pid).unwrap();
        assert!(report.union_triggered);
        assert!(report.files_lost <= 15, "lost {}", report.files_lost);
    }

    #[test]
    fn class_c_rename_over_original_links_content() {
        let (mut fs, monitor) = setup(40);
        let pid = fs.spawn_process("classc.exe");
        let docs = VPath::new(DOCS);
        for i in 0..40 {
            let src = docs.join(format!("dir{}/file{i}.txt", i % 3));
            let Ok(data) = fs.read_file(pid, &src) else { break };
            let enc_path = docs.join(format!("dir{}/file{i}.enc", i % 3));
            if fs.write_file(pid, &enc_path, &encrypt(&data, 77 + i as u64)).is_err() {
                break;
            }
            // Move the encrypted copy over the original.
            if fs.rename(pid, &enc_path, &src, true).is_err() {
                break;
            }
        }
        assert!(fs.is_suspended(pid));
        let report = monitor.detection_for(pid).unwrap();
        assert!(
            report.union_triggered,
            "rename-over-original enables union linking (41/63 in the paper)"
        );
    }

    #[test]
    fn class_c_delete_variant_caught_without_union() {
        let (mut fs, monitor) = setup(60);
        let pid = fs.spawn_process("classc-del.exe");
        let docs = VPath::new(DOCS);
        for i in 0..60 {
            let src = docs.join(format!("dir{}/file{i}.txt", i % 3));
            let Ok(data) = fs.read_file(pid, &src) else { break };
            let enc_path = docs.join(format!("dir{}/file{i}.zzz", i % 3));
            if fs
                .write_file(pid, &enc_path, &encrypt(&data, 555 + i as u64))
                .is_err()
            {
                break;
            }
            if fs.delete(pid, &src).is_err() {
                break;
            }
        }
        assert!(fs.is_suspended(pid), "high-entropy writes + deletions add up");
        let report = monitor.detection_for(pid).unwrap();
        assert!(
            !report.union_triggered,
            "independent streams evade union (22/63 in the paper)"
        );
        // Deletion indicator must have contributed.
        let summary = monitor.summary(pid).unwrap();
        assert!(summary.hit_counts.contains_key(&Indicator::Deletion));
        assert!(summary.hit_counts.contains_key(&Indicator::EntropyDelta));
    }

    #[test]
    fn activity_outside_protected_dirs_is_ignored() {
        let (mut fs, monitor) = setup(5);
        let pid = fs.spawn_process("builder.exe");
        fs.create_dir_all(pid, &VPath::new("/build")).unwrap();
        // High-entropy writes galore, but outside the protected tree.
        for i in 0..200 {
            let path = VPath::new(format!("/build/obj{i}.bin"));
            fs.write_file(pid, &path, &keystream(4096, i as u64 + 1)).unwrap();
        }
        assert_eq!(monitor.score(pid), 0);
        assert!(monitor.summary(pid).is_none(), "never entered scope");
    }

    #[test]
    fn per_process_isolation() {
        let (mut fs, monitor) = setup(40);
        let evil = fs.spawn_process("evil.exe");
        let good = fs.spawn_process("word.exe");
        let docs = VPath::new(DOCS);
        // The benign process edits one file normally.
        let note = docs.join("dir0/file0.txt");
        let mut data = fs.read_file(good, &note).unwrap();
        data.extend_from_slice(b"\nappended a paragraph\n");
        fs.write_file(good, &note, &data).unwrap();
        // The malicious process encrypts everything else.
        run_class_a(&mut fs, evil);
        assert!(fs.is_suspended(evil));
        assert!(!fs.is_suspended(good));
        assert!(monitor.detection_for(good).is_none());
        assert!(monitor.score(good) < 30);
    }

    #[test]
    fn detection_report_reason_mentions_score() {
        let (mut fs, monitor) = setup(50);
        let pid = fs.spawn_process("mal.exe");
        run_class_a(&mut fs, pid);
        let report = monitor.detection_for(pid).unwrap();
        let reason = report.reason();
        assert!(reason.contains("cryptodrop"));
        assert!(reason.contains(&report.score.to_string()));
        // The suspension record in the process table carries the reason.
        let rec = fs.processes().get(pid).unwrap().suspension().unwrap().clone();
        assert_eq!(rec.by, "cryptodrop");
        assert!(rec.reason.contains("threshold"));
    }

    #[test]
    fn repeated_benign_saves_accumulate_slowly() {
        // An Excel-like pattern: modify and save the same document over and
        // over. Consecutive-version snapshots mean each save is compared to
        // the previous save, not the ancient original.
        let (mut fs, monitor) = setup(3);
        let pid = fs.spawn_process("excel.exe");
        let path = VPath::new(DOCS).join("dir0/file0.txt");
        for round in 0..20 {
            let mut data = fs.read_file(pid, &path).unwrap();
            data.extend_from_slice(format!("row {round} added\n").as_bytes());
            let h = fs.open(pid, &path, OpenOptions::create()).unwrap();
            fs.write(pid, h, &data).unwrap();
            fs.close(pid, h).unwrap();
        }
        assert!(!fs.is_suspended(pid));
        let score = monitor.score(pid);
        assert!(score < 100, "incremental saves scored {score}");
    }

    #[test]
    fn process_family_fanout_is_aggregated() {
        // A dropper fans encryption out across children; per-child scores
        // would stay under threshold, but the family is scored as one.
        let (mut fs, monitor) = setup(60);
        let parent = fs.spawn_process("dropper.exe");
        let workers: Vec<_> = (0..3)
            .map(|i| fs.spawn_child_process(parent, format!("worker{i}.exe")))
            .collect();
        let docs = VPath::new(DOCS);
        'outer: for i in 0..60 {
            let pid = workers[i % workers.len()];
            let path = docs.join(format!("dir{}/file{i}.txt", i % 3));
            if fs.admin().metadata(&path).is_err() {
                continue;
            }
            let h = match fs.open(pid, &path, OpenOptions::modify()) {
                Ok(h) => h,
                Err(_) => break 'outer,
            };
            let data = fs.read_to_end(pid, h).unwrap_or_default();
            let ct = encrypt(&data, i as u64 + 9);
            if fs.seek(pid, h, 0).is_err()
                || fs.write(pid, h, &ct).is_err()
                || fs.close(pid, h).is_err()
            {
                let _ = fs.close(pid, h);
                break 'outer;
            }
        }
        // The family root carries the detection...
        let report = monitor.detection_for(parent).expect("family detected");
        assert!(report.files_lost <= 20, "lost {}", report.files_lost);
        // ...and every worker is blocked (directly or via family check).
        for w in workers {
            assert!(
                fs.write_file(w, &docs.join("dir0/poke.txt"), b"x").is_err(),
                "{w} still active"
            );
        }
    }

    #[test]
    fn user_permit_allows_continuation() {
        // §IV-A: the user reviews the alert and allows the process (the
        // 7-zip scenario). After permit + resume, the process finishes
        // without being re-flagged.
        let (mut fs, monitor) = setup(60);
        let pid = fs.spawn_process("archiver.exe");
        run_class_a(&mut fs, pid);
        let report = monitor.detection_for(pid).expect("initially flagged");
        assert!(fs.is_suspended(pid));

        assert!(monitor.permit(report.pid));
        assert!(fs.resume_process(pid));

        // The process continues over the rest of the corpus unhindered.
        let encrypted_more = run_class_a(&mut fs, pid);
        assert!(encrypted_more > 0, "continued after permit");
        assert!(!fs.is_suspended(pid), "not re-suspended");
        assert_eq!(monitor.detections().len(), 1, "no second report");
    }

    #[test]
    fn dynamic_scoring_speeds_small_file_detection() {
        // Future work from §V-C: boost the type-change indicator when the
        // similarity indicator is structurally unavailable (sub-512 B
        // files have no sdhash digest).
        let stage = |cfg: Config| -> u32 {
            let mut fs = Vfs::new();
            let docs = VPath::new(DOCS);
            for i in 0..80 {
                // All tiny: below the sdhash minimum.
                fs.admin().write_file(
                    &docs.join(format!("notes/n{i}.txt")),
                    format!("tiny note {i} with a few words").as_bytes(),
                )
                .unwrap();
            }
            let (engine, monitor) = new_engine(cfg);
            fs.register_filter(Box::new(engine));
            let pid = fs.spawn_process("tinycrypt.exe");
            for i in 0..80 {
                let path = docs.join(format!("notes/n{i}.txt"));
                let Ok(h) = fs.open(pid, &path, OpenOptions::modify()) else {
                    break;
                };
                let data = fs.read_to_end(pid, h).unwrap_or_default();
                let ct = encrypt(&data, i as u64 + 3);
                let _ = fs.seek(pid, h, 0);
                let _ = fs.write(pid, h, &ct);
                let _ = fs.close(pid, h);
            }
            monitor.files_lost(pid)
        };
        let base = Config::protecting(DOCS);
        let mut dynamic = base.clone();
        dynamic.dynamic_scoring = true;
        let without = stage(base);
        let with = stage(dynamic);
        assert!(
            with < without,
            "dynamic scoring must cut tiny-file losses: {with} vs {without}"
        );
    }

    #[test]
    fn write_burst_indicator_fires_without_think_time() {
        let run = |think: bool| -> (bool, u32) {
            let (mut fs, monitor) = setup(40);
            let mut cfg = Config::protecting(DOCS);
            cfg.score.burst_enabled = true;
            cfg.score.burst_threshold = 5;
            // Swap in a burst-enabled engine.
            let _ = fs.take_filters();
            let (engine, monitor2) = new_engine(cfg);
            fs.register_filter(Box::new(engine));
            drop(monitor);
            let pid = fs.spawn_process("writer.exe");
            let docs = VPath::new(DOCS);
            for i in 0..30 {
                let path = docs.join(format!("dir{}/file{i}.txt", i % 3));
                if fs.admin().metadata(&path).is_err() {
                    continue;
                }
                // Benign-shaped writes: same text back (no entropy delta,
                // no type change) so only the burst indicator can score.
                let Ok(data) = fs.read_file(pid, &path) else { break };
                if fs.write_file(pid, &path, &data).is_err() {
                    break;
                }
                if think {
                    fs.advance_clock(30_000_000_000); // 30 s think time
                }
            }
            let summary = monitor2.summary(pid).expect("seen");
            let fired = summary.hit_counts.contains_key(&Indicator::WriteBurst);
            (fired, summary.score)
        };
        let (burst_fast, _) = run(false);
        let (burst_slow, slow_score) = run(true);
        assert!(burst_fast, "flat-out modification bursts must score");
        assert!(!burst_slow, "think-time paced edits must not (score {slow_score})");
    }

    #[test]
    fn zeroed_burst_points_disable_the_indicator_entirely() {
        // `burst_enabled` with `points_burst == 0` used to run the whole
        // window bookkeeping and award 0-point hits, polluting audits and
        // eval timers; zeroed points must disable the indicator outright,
        // matching the entropy/type-change/similarity semantics.
        let (mut fs, monitor) = setup(40);
        let mut cfg = Config::protecting(DOCS);
        cfg.score.burst_enabled = true;
        cfg.score.burst_threshold = 2;
        cfg.score.points_burst = 0;
        let _ = fs.take_filters();
        let telemetry = Telemetry::new(4096);
        let (engine, monitor2) =
            CryptoDrop::with_telemetry_inner(cfg, telemetry.clone());
        fs.register_filter(Box::new(engine));
        drop(monitor);
        let pid = fs.spawn_process("writer.exe");
        let docs = VPath::new(DOCS);
        for i in 0..30 {
            let path = docs.join(format!("dir{}/file{i}.txt", i % 3));
            if fs.admin().metadata(&path).is_err() {
                continue;
            }
            let Ok(data) = fs.read_file(pid, &path) else { break };
            if fs.write_file(pid, &path, &data).is_err() {
                break;
            }
        }
        let summary = monitor2.summary(pid).expect("seen");
        assert!(
            !summary.hit_counts.contains_key(&Indicator::WriteBurst),
            "no burst hits — not even 0-point ones: {summary:?}"
        );
        let counters = telemetry.metrics().snapshot().counters;
        assert_eq!(
            counters
                .get("engine.indicator.write-burst.fires")
                .copied()
                .unwrap_or(0),
            0,
            "the fire counter must never be bumped"
        );
    }

    #[test]
    fn two_pid_collusion_inherits_the_read_baseline() {
        // A reader pid streams the plaintext; a separate writer pid (a
        // separate family) overwrites each file with ciphertext. Pre-fix
        // the writer's entropy tracker had no read side, so the evidence
        // split severed the entropy-delta indicator and the union; with
        // per-file read baselines the writer inherits the reader's
        // observations and the pair is caught.
        let (mut fs, monitor) = setup(60);
        let reader = fs.spawn_process("reader.exe");
        let writer = fs.spawn_process("writer.exe");
        let docs = VPath::new(DOCS);
        let mut touched = 0u32;
        for i in 0..60 {
            let path = docs.join(format!("dir{}/file{i}.txt", i % 3));
            if fs.admin().metadata(&path).is_err() {
                continue;
            }
            let Ok(data) = fs.read_file(reader, &path) else { break };
            let ct = encrypt(&data, i as u64 + 7);
            if fs.write_file(writer, &path, &ct).is_err() {
                break;
            }
            touched += 1;
        }
        assert!(
            fs.is_suspended(writer),
            "the colluding writer must be suspended (touched {touched} files, \
             writer score {})",
            monitor.score(writer)
        );
        let report = monitor.detection_for(writer).expect("writer detection");
        assert!(
            report.union_triggered,
            "the inherited baseline restores the entropy leg of the union: {report:?}"
        );
        let writer_hits = monitor.summary(writer).expect("writer summary").hit_counts;
        assert!(
            writer_hits.contains_key(&Indicator::EntropyDelta),
            "entropy delta must fire on the writer: {writer_hits:?}"
        );
        assert!(!fs.is_suspended(reader), "reading alone stays clean");
    }

    #[test]
    fn solo_reader_never_inherits_its_own_baseline() {
        // The baseline only crosses *family* boundaries: a single pid
        // reading and writing builds its own tracker, and inheriting its
        // own observations would double-weight the read side. The
        // inherited-baseline counter must stay silent on solo runs.
        let mut fs = Vfs::new();
        let docs = VPath::new(DOCS);
        for i in 0..10 {
            let path = docs.join(format!("f{i}.txt"));
            fs.admin().write_file(&path, &text_content(i, 4096)).unwrap();
        }
        let telemetry = Telemetry::new(4096);
        let (engine, _monitor) =
            CryptoDrop::with_telemetry_inner(Config::protecting(DOCS), telemetry.clone());
        fs.register_filter(Box::new(engine));
        let pid = fs.spawn_process("solo.exe");
        for i in 0..10 {
            let path = docs.join(format!("f{i}.txt"));
            let Ok(data) = fs.read_file(pid, &path) else { break };
            let _ = fs.write_file(pid, &path, &encrypt(&data, 3));
        }
        let counters = telemetry.metrics().snapshot().counters;
        assert_eq!(
            counters
                .get("engine.entropy.baselines_inherited")
                .copied()
                .unwrap_or(0),
            0
        );
    }

    #[test]
    fn rate_budget_stretches_a_sustained_writers_clock() {
        // A family hammering first modifications drains its token bucket;
        // once dry, destructive operations are delayed on the simulated
        // clock even though no indicator has scored (benign-shaped
        // rewrites). A paced writer never runs dry.
        let run = |budget: bool, files: usize| -> (u64, u64, u64) {
            let mut fs = Vfs::new();
            let docs = VPath::new(DOCS);
            for i in 0..files {
                let path = docs.join(format!("f{i}.txt"));
                fs.admin().write_file(&path, &text_content(i as u32, 2048)).unwrap();
            }
            let mut cfg = Config::protecting(DOCS);
            if budget {
                // 4 tokens, one per 10 simulated seconds, 50ms per dry op.
                cfg = cfg.with_rate_budget(4, 10_000_000_000, 50_000_000);
            }
            let telemetry = Telemetry::new(4096);
            let (engine, _monitor) = CryptoDrop::with_telemetry_inner(cfg, telemetry.clone());
            fs.register_filter(Box::new(engine));
            let pid = fs.spawn_process("churn.exe");
            for i in 0..files {
                let path = docs.join(format!("f{i}.txt"));
                let Ok(data) = fs.read_file(pid, &path) else { break };
                let _ = fs.write_file(pid, &path, &data);
            }
            let counters = telemetry.metrics().snapshot().counters;
            (
                fs.clock().now_nanos(),
                counters.get("engine.rate.exhausted").copied().unwrap_or(0),
                counters
                    .get("engine.rate.throttled_ops")
                    .copied()
                    .unwrap_or(0),
            )
        };
        let (base_nanos, _, _) = run(false, 20);
        let (budget_nanos, exhausted, throttled) = run(true, 20);
        assert!(exhausted > 0, "20 first-mods must outrun 4 tokens");
        assert!(throttled > 0, "dry-bucket ops must be delayed");
        assert!(
            budget_nanos > base_nanos,
            "rate budget must cost the churner simulated time: \
             {budget_nanos} vs {base_nanos}"
        );
    }

    #[test]
    fn decay_window_suppresses_stale_scores() {
        // Awards spread far apart age out of a windowed policy before
        // they can accumulate: a low threshold that a permanent
        // scoreboard crosses is never crossed by the decayed one, and
        // every suppressed check is visible in telemetry.
        let run = |decay: DecayPolicy| -> (bool, u64, u64) {
            let mut fs = Vfs::new();
            let docs = VPath::new(DOCS);
            for i in 0..12 {
                let path = docs.join(format!("f{i}.txt"));
                fs.admin().write_file(&path, &text_content(i, 4096)).unwrap();
            }
            // Default thresholds (200 / 160-with-union): twelve encrypted
            // files accumulate well past them raw, while no single file's
            // fresh awards plus a fresh union bonus come anywhere close.
            let cfg = Config::protecting(DOCS).with_decay(decay);
            let telemetry = Telemetry::new(4096);
            let (engine, _monitor) = CryptoDrop::with_telemetry_inner(cfg, telemetry.clone());
            fs.register_filter(Box::new(engine));
            let pid = fs.spawn_process("slowroll.exe");
            for i in 0..12 {
                let path = docs.join(format!("f{i}.txt"));
                let Ok(data) = fs.read_file(pid, &path) else { break };
                let _ = fs.write_file(pid, &path, &encrypt(&data, i as u64 + 1));
                // 60 s of think time between victims.
                fs.advance_clock(60_000_000_000);
            }
            let counters = telemetry.metrics().snapshot().counters;
            (
                fs.is_suspended(pid),
                counters.get("engine.decay.checks").copied().unwrap_or(0),
                counters.get("engine.decay.suppressed").copied().unwrap_or(0),
            )
        };
        let (caught_none, checks_none, _) = run(DecayPolicy::None);
        assert!(caught_none, "the permanent scoreboard crosses 60 points");
        assert_eq!(checks_none, 0, "no decay arithmetic under DecayPolicy::None");
        let (caught_window, checks, suppressed) = run(DecayPolicy::Window {
            window_nanos: 30_000_000_000, // half the pacing gap
        });
        assert!(
            !caught_window,
            "per-file awards age out before the next victim"
        );
        assert!(checks > 0);
        assert!(
            suppressed > 0,
            "raw score crossed while decayed held below: must be counted"
        );
    }

    #[test]
    fn monitor_summaries_sorted_and_complete() {
        let (mut fs, monitor) = setup(10);
        let a = fs.spawn_process("a.exe");
        let b = fs.spawn_process("b.exe");
        let docs = VPath::new(DOCS);
        fs.read_file(a, &docs.join("dir0/file0.txt")).unwrap();
        fs.read_file(b, &docs.join("dir1/file1.txt")).unwrap();
        let summaries = monitor.summaries();
        assert_eq!(summaries.len(), 2);
        assert!(summaries[0].pid < summaries[1].pid);
    }

    #[test]
    fn unchanged_rewrite_hits_snapshot_cache() {
        let (mut fs, monitor) = setup(8);
        let pid = fs.spawn_process("editor.exe");
        let docs = VPath::new(DOCS);
        let path = docs.join("dir0/file0.txt");
        // Save the file back unchanged, twice.
        for _ in 0..2 {
            let h = fs.open(pid, &path, OpenOptions::modify()).unwrap();
            let data = fs.read_to_end(pid, h).unwrap();
            fs.seek(pid, h, 0).unwrap();
            fs.write(pid, h, &data).unwrap();
            fs.close(pid, h).unwrap();
        }
        let stats = monitor.cache_stats();
        // The first open's pre_op capture is a miss (path never snapshotted);
        // both closes and the second open's pre_op reuse the fingerprint.
        assert!(stats.hits >= 3, "expected >= 3 hits, got {stats:?}");
        assert_eq!(stats.misses, 1, "only the initial capture recomputes: {stats:?}");
        assert_eq!(stats.evictions, 0);
        assert!(!fs.is_suspended(pid));
        assert_eq!(monitor.score(pid), 0, "identical rewrite must not score");
    }

    #[test]
    fn changed_rewrite_recomputes_and_still_scores() {
        let (mut fs, monitor) = setup(8);
        let pid = fs.spawn_process("tool.exe");
        let docs = VPath::new(DOCS);
        let path = docs.join("dir0/file0.txt");
        let h = fs.open(pid, &path, OpenOptions::modify()).unwrap();
        let data = fs.read_to_end(pid, h).unwrap();
        let ct = encrypt(&data, 99);
        fs.seek(pid, h, 0).unwrap();
        fs.write(pid, h, &ct).unwrap();
        fs.close(pid, h).unwrap();
        let stats = monitor.cache_stats();
        // pre_op capture + close-time refresh both recompute.
        assert_eq!(stats.hits, 0, "{stats:?}");
        assert_eq!(stats.misses, 2, "{stats:?}");
        // The content indicators saw the change.
        let hits = monitor.hits(pid);
        assert!(
            hits.iter().any(|h| h.indicator == Indicator::Similarity),
            "similarity must fire on encryption: {hits:?}"
        );
    }

    #[test]
    fn snapshot_cache_eviction_is_counted_and_bounded() {
        let mut fs = Vfs::new();
        let docs = VPath::new(DOCS);
        for i in 0..64 {
            fs.admin().write_file(&docs.join(format!("f{i}.txt")), &text_content(i, 2048))
                .unwrap();
        }
        let mut cfg = Config::protecting(DOCS);
        cfg.snapshot_cache_capacity = 16; // per-shard cap of 1
        let (engine, monitor) = new_engine(cfg);
        fs.register_filter(Box::new(engine));
        let pid = fs.spawn_process("editor.exe");
        for i in 0..64 {
            let path = docs.join(format!("f{i}.txt"));
            let h = fs.open(pid, &path, OpenOptions::modify()).unwrap();
            let data = fs.read_to_end(pid, h).unwrap();
            fs.seek(pid, h, 0).unwrap();
            fs.write(pid, h, &data).unwrap();
            fs.close(pid, h).unwrap();
        }
        let stats = monitor.cache_stats();
        assert!(stats.evictions > 0, "64 paths over a 16-entry cap must evict: {stats:?}");
        assert!(
            stats.resident <= 16,
            "residency must respect the cap: {stats:?}"
        );
        // Eviction only affects caching, never correctness: the benign
        // process stays clean.
        assert!(!fs.is_suspended(pid));
        assert_eq!(monitor.detections().len(), 0);
    }

    #[test]
    fn evict_oldest_removes_strictly_least_recently_touched() {
        let mut shard = PathShard::default();
        let snap = FileSnapshot::capture(b"payload", 1 << 16);
        let path = |i: u32| VPath::new(format!("/d/f{i}"));
        for (i, tick) in [(0u32, 5u64), (1, 2), (2, 9)] {
            shard.insert_snapshot(path(i), snap.clone(), tick, usize::MAX);
        }
        // Touching f1 (tick 2 → 10) promotes it past f0, so the LRU
        // victim order becomes f0 (5), then f2 (9), then f1 (10).
        shard.get_snapshot(&path(1), 10);
        assert!(shard.evict_oldest(false));
        assert!(!shard.snapshots.contains_key(&path(0)), "f0 is oldest");
        assert!(shard.evict_oldest(false));
        assert!(!shard.snapshots.contains_key(&path(2)), "then f2");
        assert!(shard.snapshots.contains_key(&path(1)), "touched f1 survives");
        // Pinned entries are invisible to unpinned eviction and vice versa.
        shard.insert_snapshot(path(3), snap.clone(), 1, usize::MAX);
        shard.pin(&path(3), usize::MAX);
        assert!(
            shard.evict_oldest(false),
            "f1 is the only unpinned entry left"
        );
        assert!(!shard.snapshots.contains_key(&path(1)));
        assert!(!shard.evict_oldest(false), "no unpinned victims remain");
        assert!(shard.snapshots.contains_key(&path(3)), "pinned f3 untouched");
        assert!(shard.evict_oldest(true), "pinned eviction finds f3");
        assert!(shard.snapshots.is_empty());
    }

    /// Reproduces the bench `eviction_pressure` probe's evictions ≈ misses
    /// shape and proves it is the inherent LRU sweep pathology — a cyclic
    /// working set larger than capacity revisits each path only after it
    /// was evicted to admit the others — not a victim-selection bug:
    /// the identical trace through a cache at least as large as the
    /// working set stops evicting entirely.
    #[test]
    fn cyclic_sweep_thrash_is_capacity_pathology_not_victim_order() {
        let paths = 20usize;
        let run = |capacity: usize| -> CacheStats {
            let mut fs = Vfs::new();
            let docs = VPath::new(DOCS);
            for i in 0..paths {
                fs.admin()
                    .write_file(&docs.join(format!("f{i}.txt")), &text_content(i as u32, 2048))
                    .unwrap();
            }
            let mut cfg = Config::protecting(DOCS);
            cfg.snapshot_cache_capacity = capacity;
            let (engine, monitor) = new_engine(cfg);
            fs.register_filter(Box::new(engine));
            let pid = fs.spawn_process("editor.exe");
            for _round in 0..5 {
                for i in 0..paths {
                    let path = docs.join(format!("f{i}.txt"));
                    let h = fs.open(pid, &path, OpenOptions::modify()).unwrap();
                    let data = fs.read_to_end(pid, h).unwrap();
                    fs.seek(pid, h, 0).unwrap();
                    fs.write(pid, h, &data).unwrap();
                    fs.close(pid, h).unwrap();
                }
            }
            assert!(!fs.is_suspended(pid), "benign saves must stay clean");
            monitor.cache_stats()
        };

        // Capacity 8 over 16 shards is 1 slot per shard: every shard
        // holding two or more of the 20 paths evicts one to admit the
        // other on each pass, so nearly every miss pairs with an
        // eviction (first-touch misses are the only unpaired ones).
        let squeezed = run(8);
        assert!(squeezed.evictions > 0, "sweep must thrash: {squeezed:?}");
        assert!(
            squeezed.misses - squeezed.evictions <= 2 * paths as u64,
            "thrash is one-for-one modulo first touches: {squeezed:?}"
        );
        // The same trace with capacity covering the working set: the 20
        // first-touch misses are the only recomputes, everything after
        // hits, and nothing is ever evicted.
        let ample = run(64);
        assert_eq!(ample.evictions, 0, "{ample:?}");
        assert_eq!(ample.misses, paths as u64, "{ample:?}");
        assert!(ample.hits > ample.misses, "{ample:?}");
    }

    #[test]
    fn forked_engine_shares_scoreboard() {
        let (mut fs, monitor) = setup(60);
        // Register a *fork* instead of a fresh engine elsewhere: same
        // shards, same detection log.
        let second = monitor.fork_engine_inner();
        assert_eq!(
            Arc::as_ptr(&second.shared),
            Arc::as_ptr(&monitor.shared),
            "fork must alias the same shared state"
        );
        let pid = fs.spawn_process("locker.exe");
        run_class_a(&mut fs, pid);
        assert!(fs.is_suspended(pid));
        // The fork's monitor view sees the detection too.
        let (_, via_fork) = {
            let m2 = Monitor {
                cfg: Arc::clone(&second.cfg),
                shared: Arc::clone(&second.shared),
            };
            (0, m2.detections())
        };
        assert_eq!(via_fork, monitor.detections());
        assert_eq!(via_fork.len(), 1);
    }

    #[test]
    fn close_snapshot_resolver_survives_missing_snapshot() {
        // The unchanged-close fast path once did
        // `snapshot.expect("unchanged implies a snapshot")`: torn cache
        // state (snapshot evicted between the gate and the resolve) would
        // panic inside the filter. The resolver must degrade to a
        // recompute and count the anomaly instead.
        let (engine, monitor) = new_engine(Config::protecting(DOCS));
        let current = text_content(1, 4096);
        let post_type = sniff(&current);
        let resolved = engine.resolve_close_snapshot(
            CloseCache::Torn, // unchanged gate matched, snapshot gone
            &current,
            post_type,
            None,
            42,
            ProcessId(9),
        );
        assert_eq!(
            resolved,
            FileSnapshot::capture(&current, engine.cfg.max_digest_bytes),
            "anomaly path must recompute a faithful snapshot"
        );
        let stats = monitor.cache_stats();
        assert_eq!(stats.anomalies, 1, "{stats:?}");
        assert_eq!(stats.hits, 0, "{stats:?}");
        assert_eq!(stats.misses, 1, "{stats:?}");
        // The healthy paths stay anomaly-free.
        let healthy = engine.resolve_close_snapshot(
            CloseCache::Unchanged(resolved.clone()),
            &current,
            post_type,
            None,
            43,
            ProcessId(9),
        );
        assert_eq!(healthy, resolved);
        assert_eq!(monitor.cache_stats().anomalies, 1);
        assert_eq!(monitor.cache_stats().hits, 1);
    }

    #[test]
    fn retained_post_delete_snapshot_survives_lru_pressure() {
        // The Class C link: a deleted original's snapshot must survive
        // unrelated cache pressure so a later drop at the same path can be
        // compared against the original content. Before pinning, the
        // post-delete snapshot was ordinary LRU population and any burst
        // of benign activity evicted it.
        let mut fs = Vfs::new();
        let docs = VPath::new(DOCS);
        let target = docs.join("target.txt");
        let original = text_content(7, 4096);
        fs.admin().write_file(&target, &original).unwrap();
        let mut cfg = Config::protecting(DOCS);
        cfg.snapshot_cache_capacity = 2; // per-shard cap of 1
        let (engine, monitor) = new_engine(cfg);
        fs.register_filter(Box::new(engine));

        let pid = fs.spawn_process("classc-slow.exe");
        // One deletion: within the allowance, so no score yet — but the
        // engine retains (and must pin) the original's snapshot.
        fs.delete(pid, &target).unwrap();
        assert_eq!(monitor.cache_stats().pinned, 1);
        // Unrelated benign churn floods every path shard far past the cap.
        for i in 0..64 {
            fs.write_file(pid, &docs.join(format!("cover{i}.txt")), &text_content(i, 2048))
                .unwrap();
        }
        let stats = monitor.cache_stats();
        assert!(stats.evictions > 0, "cover churn must evict: {stats:?}");
        assert_eq!(stats.pinned, 1, "the retained snapshot must survive: {stats:?}");
        // The drop: an "independent" encrypted copy lands at the deleted
        // original's path.
        fs.write_file(pid, &target, &encrypt(&original, 31)).unwrap();
        let hits = monitor.hits(pid);
        assert!(
            hits.iter().any(|h| h.indicator == Indicator::Similarity),
            "drop must be linked to the deleted original: {hits:?}"
        );
        assert!(
            hits.iter().any(|h| h.indicator == Indicator::TypeChange),
            "type change vs the deleted original must fire: {hits:?}"
        );
    }

    #[test]
    fn pinned_snapshots_respect_their_own_budget() {
        let mut fs = Vfs::new();
        let docs = VPath::new(DOCS);
        for i in 0..64 {
            fs.admin().write_file(&docs.join(format!("f{i}.txt")), &text_content(i, 2048))
                .unwrap();
        }
        let mut cfg = Config::protecting(DOCS);
        cfg.snapshot_cache_capacity = 16;
        cfg.pinned_snapshot_budget = 16; // per-shard budget of 1
        let (engine, monitor) = new_engine(cfg);
        fs.register_filter(Box::new(engine));
        let pid = fs.spawn_process("wiper.exe");
        for i in 0..64 {
            if fs.delete(pid, &docs.join(format!("f{i}.txt"))).is_err() {
                break; // suspended for bulk deletion — the budget already filled
            }
        }
        let stats = monitor.cache_stats();
        assert!(stats.pinned >= 1, "{stats:?}");
        assert!(stats.pinned <= 16, "pinned budget must bound retention: {stats:?}");
        assert!(stats.resident <= 32, "{stats:?}");
    }

    #[test]
    fn class_c_detection_survives_tiny_snapshot_cache() {
        // Invariant guard: the rename-over Class C flow keeps detecting
        // even under a pathologically small cache.
        let mut fs = Vfs::new();
        let docs = VPath::new(DOCS);
        for i in 0..40 {
            fs.admin().write_file(
                &docs.join(format!("dir{}/file{i}.txt", i % 3)),
                &text_content(i, 4096),
            )
            .unwrap();
        }
        let mut cfg = Config::protecting(DOCS);
        cfg.snapshot_cache_capacity = 2;
        let (engine, monitor) = new_engine(cfg);
        fs.register_filter(Box::new(engine));
        let pid = fs.spawn_process("classc.exe");
        for i in 0..40 {
            let src = docs.join(format!("dir{}/file{i}.txt", i % 3));
            let Ok(data) = fs.read_file(pid, &src) else { break };
            let enc_path = docs.join(format!("dir{}/file{i}.enc", i % 3));
            if fs.write_file(pid, &enc_path, &encrypt(&data, 77 + i as u64)).is_err() {
                break;
            }
            if fs.rename(pid, &enc_path, &src, true).is_err() {
                break;
            }
        }
        assert!(fs.is_suspended(pid));
        let report = monitor.detection_for(pid).unwrap();
        assert!(report.union_triggered, "cache pressure must not break the link");
    }

    /// Strips an [`IndicatorHit`] to its deterministic parts (timestamps
    /// carry measured filter overhead and vary run to run).
    fn stripped(hits: Vec<IndicatorHit>) -> Vec<(Indicator, u32, String)> {
        hits.into_iter().map(|h| (h.indicator, h.points, h.detail)).collect()
    }

    #[test]
    fn rename_out_and_back_verdict_matches_cache_disabled_replay() {
        // A file is warmed (fingerprint-cached) at its original path,
        // renamed out of the tree, encrypted there, and renamed back to
        // the *same* original path. The fingerprint cache must never serve
        // the stale pre-move snapshot: the verdict and the full hit trail
        // must be byte-identical to a replay with the cache disabled.
        let run = |fingerprint_cache: bool| {
            let mut fs = Vfs::new();
            let docs = VPath::new(DOCS);
            for i in 0..24 {
                fs.admin().write_file(
                    &docs.join(format!("dir{}/file{i}.txt", i % 3)),
                    &text_content(i, 4096),
                )
                .unwrap();
            }
            fs.admin().create_dir_all(&VPath::new("/tmp")).unwrap();
            let mut cfg = Config::protecting(DOCS);
            cfg.fingerprint_cache = fingerprint_cache;
            let (engine, monitor) = new_engine(cfg);
            fs.register_filter(Box::new(engine));
            let pid = fs.spawn_process("outandback.exe");
            let tmp = VPath::new("/tmp");
            'outer: for i in 0..24 {
                let src = docs.join(format!("dir{}/file{i}.txt", i % 3));
                if fs.admin().metadata(&src).is_err() {
                    continue;
                }
                // Warm the caches: an unchanged rewrite at the original path.
                let Ok(h) = fs.open(pid, &src, OpenOptions::modify()) else {
                    break 'outer;
                };
                let data = fs.read_to_end(pid, h).unwrap_or_default();
                if fs.seek(pid, h, 0).is_err()
                    || fs.write(pid, h, &data).is_err()
                    || fs.close(pid, h).is_err()
                {
                    let _ = fs.close(pid, h);
                    break 'outer;
                }
                // Out of the tree, encrypt there, and back to the same path.
                let staging = tmp.join(format!("s{i}.tmp"));
                if fs.rename(pid, &src, &staging, false).is_err() {
                    break 'outer;
                }
                let Ok(h) = fs.open(pid, &staging, OpenOptions::modify()) else {
                    break 'outer;
                };
                let ct = encrypt(&data, 400 + i as u64);
                if fs.seek(pid, h, 0).is_err()
                    || fs.write(pid, h, &ct).is_err()
                    || fs.close(pid, h).is_err()
                {
                    let _ = fs.close(pid, h);
                    break 'outer;
                }
                if fs.rename(pid, &staging, &src, false).is_err() {
                    break 'outer;
                }
            }
            (
                monitor.score(pid),
                fs.is_suspended(pid),
                monitor.detection_for(pid).map(|d| (d.score, d.union_triggered, d.files_lost)),
                stripped(monitor.hits(pid)),
            )
        };
        let cached = run(true);
        let reference = run(false);
        assert_eq!(
            cached, reference,
            "fingerprint cache must be invisible to verdicts"
        );
        assert!(cached.1, "the out-and-back encryptor must still be caught");
    }

    #[test]
    fn vacated_path_serves_no_stale_preimage() {
        // Renaming a warmed file out of the tree consumes its path-keyed
        // history. A *different* file later created at the vacated path
        // must not inherit the old file's snapshot as its pre-image.
        let (mut fs, monitor) = setup(8);
        let docs = VPath::new(DOCS);
        let pid = fs.spawn_process("organizer.exe");
        let src = docs.join("dir0/file0.txt");
        // Warm the file-id snapshot so the rename has one to follow.
        let h = fs.open(pid, &src, OpenOptions::modify()).unwrap();
        let data = fs.read_to_end(pid, h).unwrap();
        fs.seek(pid, h, 0).unwrap();
        fs.write(pid, h, &data).unwrap();
        fs.close(pid, h).unwrap();
        fs.rename(pid, &src, &VPath::new("/tmp/archived.txt"), false).unwrap();
        // Fresh, unrelated high-entropy content lands at the vacated path
        // (e.g. a downloaded archive). With a stale pre-image this would
        // fire type-change/similarity against content it never replaced.
        fs.write_file(pid, &src, &keystream(4096, 5)).unwrap();
        let hits = monitor.hits(pid);
        assert!(
            !hits
                .iter()
                .any(|h| matches!(h.indicator, Indicator::TypeChange | Indicator::Similarity)),
            "no content comparison without a true pre-image: {hits:?}"
        );
    }

    #[test]
    fn audit_trail_reconstructs_indicator_timeline() {
        // End-to-end observability: engine + VFS share one telemetry
        // handle; after a detection the audit trail explains it and the
        // journal carries the op -> indicator -> suspension journey.
        let telemetry = cryptodrop_telemetry::Telemetry::new(1 << 16);
        let mut fs = Vfs::new();
        fs.set_telemetry(telemetry.clone());
        let docs = VPath::new(DOCS);
        for i in 0..60 {
            fs.admin().write_file(
                &docs.join(format!("dir{}/file{i}.txt", i % 3)),
                &text_content(i as u32, 4096),
            )
            .unwrap();
        }
        let (engine, monitor) =
            CryptoDrop::with_telemetry_inner(Config::protecting(DOCS), telemetry.clone());
        fs.register_filter(Box::new(engine));
        let pid = fs.spawn_process("locky.exe");
        run_class_a(&mut fs, pid);
        assert!(fs.is_suspended(pid));

        let trail = monitor.audit_trail(pid).expect("seen process");
        assert!(trail.detected);
        assert!(trail.suspended_at_nanos.is_some());
        assert!(!trail.entries.is_empty());
        assert_eq!(trail.entries.last().unwrap().score_after, trail.score);
        assert_eq!(trail.entries.len(), monitor.hits(pid).len());
        // Every entry names its indicator and carries a timeline position.
        let mut last_at = 0;
        for e in &trail.entries {
            assert!(!e.indicator_name.is_empty());
            assert!(e.threshold >= 0.0);
            assert!(e.at_nanos >= last_at, "entries must be in firing order");
            last_at = e.at_nanos;
        }
        assert!(trail.union_triggered);
        let rendered = trail.render();
        assert!(rendered.contains("locky.exe"));
        assert!(rendered.contains("SUSPENDED"));

        // The journal interleaves filter and engine events for this pid.
        let events = telemetry.journal().events_for(pid.0);
        let indicator_events = events
            .iter()
            .filter(|e| matches!(e.kind, cryptodrop_telemetry::JournalKind::Indicator { .. }))
            .count();
        assert_eq!(indicator_events, trail.entries.len());
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, cryptodrop_telemetry::JournalKind::Op { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, cryptodrop_telemetry::JournalKind::Suspension { .. })));

        // Metrics: fires match the trail, eval timings were recorded, and
        // the detection was counted.
        let snap = telemetry.metrics().snapshot();
        let fired: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("engine.indicator."))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(fired, trail.entries.len() as u64);
        assert_eq!(snap.counters.get("engine.detections"), Some(&1));
        let sim_evals = snap
            .histograms
            .get("engine.eval.similarity.ns")
            .expect("similarity eval histogram");
        assert!(sim_evals.count > 0);
    }

    #[test]
    fn disabled_telemetry_keeps_journal_and_metrics_empty() {
        let (mut fs, monitor) = setup(40);
        let pid = fs.spawn_process("quiet.exe");
        run_class_a(&mut fs, pid);
        assert!(fs.is_suspended(pid));
        let t = monitor.telemetry();
        assert!(!t.is_enabled());
        assert!(t.journal().is_empty(), "disabled telemetry must not journal");
        let snap = t.metrics().snapshot();
        assert!(
            snap.counters.values().all(|v| *v == 0),
            "disabled telemetry must not count: {snap:?}"
        );
        assert!(snap.histograms.values().all(|h| h.count == 0));
        // The audit trail still works: it reads the scoreboard, not the
        // journal.
        let trail = monitor.audit_trail(pid).expect("trail without telemetry");
        assert!(trail.detected);
        assert!(!trail.entries.is_empty());
    }

    /// Stages a corpus plus one decoy, registered with the engine.
    fn setup_with_decoy(files: usize) -> (Vfs, Monitor, VPath) {
        let mut fs = Vfs::new();
        let docs = VPath::new(DOCS);
        for i in 0..files {
            let path = docs.join(format!("dir{}/file{i}.txt", i % 3));
            fs.admin().write_file(&path, &text_content(i as u32, 4096)).unwrap();
        }
        let decoy = docs.join("dir0/backup_passwords.xlsx");
        fs.admin().write_file(&decoy, &text_content(999, 2048)).unwrap();
        let cfg = Config::protecting(DOCS).with_decoys([decoy.clone()]);
        let (engine, monitor) = new_engine(cfg);
        fs.register_filter(Box::new(engine));
        (fs, monitor, decoy)
    }

    #[test]
    fn decoy_modification_is_instant_detection() {
        let (mut fs, monitor, decoy) = setup_with_decoy(10);
        let pid = fs.spawn_process("evil.exe");
        // Reading (enumerating) the decoy is harmless.
        assert!(fs.read_file(pid, &decoy).is_ok());
        assert!(!fs.is_suspended(pid));
        assert_eq!(monitor.score(pid), 0);
        // The first destructive touch suspends at score 0: no scoreboard
        // convergence, no files lost first.
        let err = fs.write_file(pid, &decoy, b"ENCRYPTED").unwrap_err();
        assert!(matches!(err, cryptodrop_vfs::VfsError::ProcessSuspended(_)));
        assert!(fs.is_suspended(pid));
        let report = monitor.detection_for(pid).expect("decoy detection");
        assert_eq!(report.files_lost, 0);
        assert_eq!(report.score, 0);
    }

    #[test]
    fn decoy_delete_and_rename_trip_too() {
        for destructive in [
            (&|fs: &mut Vfs, pid: ProcessId, d: &VPath| fs.delete(pid, d).map(|_| ()))
                as &dyn Fn(&mut Vfs, ProcessId, &VPath) -> Result<(), cryptodrop_vfs::VfsError>,
            &|fs, pid, d| fs.rename(pid, d, &VPath::new(DOCS).join("x.bin"), false),
            &|fs, pid, d| {
                fs.rename(pid, &VPath::new(DOCS).join("dir0/file0.txt"), d, true)
            },
            &|fs, pid, d| fs.set_read_only(pid, d, true),
        ] {
            let (mut fs, monitor, decoy) = setup_with_decoy(10);
            let pid = fs.spawn_process("evil.exe");
            assert!(destructive(&mut fs, pid, &decoy).is_err());
            assert!(fs.is_suspended(pid), "destructive decoy touch must suspend");
            assert_eq!(monitor.detections().len(), 1);
        }
    }

    #[test]
    fn benign_workload_never_trips_decoys() {
        let (mut fs, monitor, decoy) = setup_with_decoy(20);
        let pid = fs.spawn_process("backup.exe");
        let docs = VPath::new(DOCS);
        // A benign backup reads everything — decoy included — and writes
        // copies elsewhere, never modifying the bait.
        fs.create_dir_all(pid, &docs.join("backup")).unwrap();
        let data = fs.read_file(pid, &decoy).unwrap();
        fs.write_file(pid, &docs.join("backup/passwords.xlsx"), &data)
            .unwrap();
        for i in 0..20 {
            let src = docs.join(format!("dir{}/file{i}.txt", i % 3));
            let data = fs.read_file(pid, &src).unwrap();
            fs.write_file(pid, &docs.join(format!("backup/file{i}.txt")), &data)
                .unwrap();
        }
        assert!(!fs.is_suspended(pid));
        assert!(monitor.detections().is_empty());
    }

    #[test]
    fn throttling_stretches_the_suspects_clock() {
        let run = |throttle: bool| -> (u64, bool) {
            let mut fs = Vfs::new();
            let docs = VPath::new(DOCS);
            for i in 0..60 {
                let path = docs.join(format!("dir{}/file{i}.txt", i % 3));
                fs.admin().write_file(&path, &text_content(i as u32, 4096)).unwrap();
            }
            let mut cfg = Config::protecting(DOCS);
            if throttle {
                cfg = cfg.with_throttling(30, 1_000_000);
            }
            let (engine, _monitor) = new_engine(cfg);
            fs.register_filter(Box::new(engine));
            let pid = fs.spawn_process("cryptolocker.exe");
            run_class_a(&mut fs, pid);
            (fs.clock().now_nanos(), fs.is_suspended(pid))
        };
        let (base_nanos, base_caught) = run(false);
        let (throttled_nanos, throttled_caught) = run(true);
        assert!(base_caught && throttled_caught);
        assert!(
            throttled_nanos > base_nanos,
            "throttling must cost the suspect simulated time: \
             {throttled_nanos} vs {base_nanos}"
        );
    }

    #[test]
    fn throttling_never_delays_processes_below_the_engage_score() {
        let mut fs = Vfs::new();
        let docs = VPath::new(DOCS);
        fs.admin().write_file(&docs.join("a.txt"), b"plain text body").unwrap();
        let cfg = Config::protecting(DOCS).with_throttling(30, 1_000_000);
        let (engine, monitor) = new_engine(cfg);
        fs.register_filter(Box::new(engine));
        let pid = fs.spawn_process("editor.exe");
        let before = fs.clock().now_nanos();
        fs.write_file(pid, &docs.join("a.txt"), b"plain text body, edited")
            .unwrap();
        let spent = fs.clock().now_nanos() - before;
        assert_eq!(monitor.score(pid), 0);
        // Only the ledger's per-op service times elapsed: no 30ms+
        // throttle penalty was charged at score 0.
        assert!(spent < 30_000_000, "benign op cost {spent}ns");
    }
}
