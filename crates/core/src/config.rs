//! Engine and scoring configuration.
//!
//! The paper parameterizes CryptoDrop with a *non-union detection threshold*
//! of 200 (§V-A) and a suspicious entropy delta of 0.1 (§IV-C1); union
//! indication "dramatically increases the current score of a process and
//! lowers that process's detection threshold" (§V-B2). The remaining
//! point values are implementation constants of the research prototype; the
//! defaults here were calibrated so the evaluation harness reproduces the
//! paper's headline shapes (see EXPERIMENTS.md).

use cryptodrop_vfs::VPath;
use serde::{Deserialize, Serialize};

/// How reputation points age out of the scoreboard over simulated time.
///
/// The paper's scoreboard is time-blind: a point awarded at t=0 weighs as
/// much as one awarded a nanosecond ago, which is what makes a slow-roll
/// attacker (§V-F: "monitoring any time window presents an evasion
/// opportunity") indistinguishable from a fast one. A decay policy ages
/// each award by the simulated time elapsed since its `at_nanos`, so the
/// *effective* score a threshold check sees is the sum of the decayed
/// award values — raw per-hit points are never mutated, which keeps the
/// audit trail exact and lets [`Monitor::audit_trail`](crate::Monitor)
/// replay the decayed arithmetic faithfully.
///
/// Every policy is monotonically non-increasing in age and exact at age
/// zero (`value(p, 0) == p`); `DecayPolicy::None` reproduces the paper's
/// scoring bit-for-bit and is the default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecayPolicy {
    /// No decay: points are permanent (the paper's behavior, default).
    None,
    /// Hard cutoff: an award keeps full value inside the window and
    /// contributes nothing once older than `window_nanos`.
    Window {
        /// Age in simulated nanoseconds beyond which an award is worth 0.
        window_nanos: u64,
    },
    /// Linear ramp: an award loses value proportionally with age,
    /// reaching 0 at `window_nanos`.
    Linear {
        /// Age in simulated nanoseconds at which an award reaches 0.
        window_nanos: u64,
    },
    /// Exponential decay by integer halvings: an award is worth
    /// `points >> (age / half_life_nanos)`. Never reaches exactly zero
    /// until the shift exhausts the points, so long-memory deployments
    /// keep a residue of old evidence.
    HalfLife {
        /// Age in simulated nanoseconds per halving of an award's value.
        half_life_nanos: u64,
    },
}

impl DecayPolicy {
    /// The decayed value of an award of `points` that is `age_nanos` old.
    #[inline]
    pub fn value(&self, points: u32, age_nanos: u64) -> u32 {
        match *self {
            DecayPolicy::None => points,
            DecayPolicy::Window { window_nanos } => {
                if age_nanos <= window_nanos {
                    points
                } else {
                    0
                }
            }
            DecayPolicy::Linear { window_nanos } => {
                if age_nanos >= window_nanos {
                    0
                } else {
                    // points × (window − age) / window, in u64 to avoid
                    // overflow; result fits u32 since the ratio is ≤ 1.
                    (u64::from(points) * (window_nanos - age_nanos) / window_nanos) as u32
                }
            }
            DecayPolicy::HalfLife { half_life_nanos } => {
                let halvings = (age_nanos / half_life_nanos.max(1)).min(31);
                points >> halvings
            }
        }
    }

    /// `true` for [`DecayPolicy::None`] — the engine skips the decayed
    /// re-summation entirely on this (default) path.
    #[inline]
    pub fn is_none(&self) -> bool {
        matches!(self, DecayPolicy::None)
    }
}

/// Reputation points and thresholds for the scoreboard (paper §IV-A/B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreConfig {
    /// Score at which a process is suspended without union indication
    /// (200 in the paper's experiments, §V-A).
    pub non_union_threshold: u32,
    /// The lowered threshold once union indication has occurred.
    pub union_threshold: u32,
    /// One-time score bonus when all three primary indicators have fired.
    pub union_bonus: u32,
    /// Points per file whose sniffed type changed across a modification.
    pub points_type_change: u32,
    /// Points per file whose similarity to its pre-image collapsed.
    pub points_similarity: u32,
    /// Points per atomic write whose process-wide entropy delta exceeds
    /// [`ScoreConfig::entropy_delta_threshold`].
    pub points_entropy_delta: u32,
    /// Points per protected-file deletion beyond the allowance.
    pub points_deletion: u32,
    /// Points each time the read-vs-written type gap crosses another
    /// multiple of [`ScoreConfig::funnel_gap`].
    pub points_funneling: u32,
    /// `Δe = P_write − P_read` at or above this is suspicious (0.1 in the
    /// paper, §IV-C1).
    pub entropy_delta_threshold: f64,
    /// sdhash scores at or below this count as "dissimilar" (the paper
    /// expects near-zero scores for ciphertext, §III-B).
    pub similarity_match_max: u32,
    /// The similarity indicator abstains when the pre-image's own entropy
    /// exceeds this (bits/byte): comparing two near-random blobs always
    /// yields ~0 and would penalize benign rewrites of compressed formats.
    pub similarity_max_source_entropy: f64,
    /// Deletions of pre-existing protected files tolerated before scoring
    /// begins (§III-D). Deletions of files the process itself created
    /// (temp files) never score.
    pub deletion_allowance: u32,
    /// Write operations at or above this many bytes earn full
    /// entropy-delta points; smaller writes earn proportionally fewer
    /// (min 1). This keeps floods of tiny-file encryptions from
    /// outpacing the indicators that need sdhash-digestible files.
    pub entropy_full_weight_bytes: usize,
    /// The read-minus-written distinct-type gap per funneling award
    /// (§III-D: "the difference of these can be assigned a threshold").
    pub funnel_gap: u32,
    /// Enable the write-burst time-window indicator (future work in the
    /// paper, §V-F; off by default — "monitoring any time window presents
    /// an evasion opportunity").
    pub burst_enabled: bool,
    /// The burst window in simulated nanoseconds.
    pub burst_window_nanos: u64,
    /// Files modified within the window tolerated before burst scoring.
    pub burst_threshold: u32,
    /// Points per modified file beyond the burst threshold. Zero
    /// disables the burst indicator entirely (no window bookkeeping, no
    /// 0-point audit hits), matching the other indicators' semantics.
    pub points_burst: u32,
    /// How awarded points age out of threshold checks over simulated
    /// time. [`DecayPolicy::None`] (the default) reproduces the paper's
    /// permanent-score arithmetic exactly.
    pub decay: DecayPolicy,
}

impl Default for ScoreConfig {
    fn default() -> Self {
        Self {
            non_union_threshold: 200,
            union_threshold: 160,
            union_bonus: 40,
            points_type_change: 6,
            points_similarity: 6,
            points_entropy_delta: 3,
            points_deletion: 15,
            points_funneling: 15,
            entropy_delta_threshold: 0.1,
            similarity_match_max: 10,
            similarity_max_source_entropy: 7.5,
            deletion_allowance: 2,
            funnel_gap: 5,
            entropy_full_weight_bytes: 4096,
            burst_enabled: false,
            burst_window_nanos: 10_000_000_000, // 10 simulated seconds
            burst_threshold: 30,
            points_burst: 5,
            decay: DecayPolicy::None,
        }
    }
}

/// Full engine configuration.
///
/// Fields stay public so experiment harnesses can tweak individual knobs
/// and serialized configs round-trip, but **avoid bare field-struct
/// construction** (`Config { ... }`) in new code: it bypasses validation
/// and breaks whenever a field is added. Start from
/// [`Config::protecting`] (or deserialize), adjust fields, and hand the
/// result to [`CryptoDrop::builder`](crate::CryptoDrop::builder) — the
/// builder's [`build`](crate::SessionBuilder::build) step validates the
/// whole configuration into a typed [`ConfigError`](crate::ConfigError)
/// instead of misbehaving at detection time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// The directories CryptoDrop protects (e.g. "My Documents").
    /// Operations on files outside these directories are ignored unless
    /// the file was moved out of a protected directory and is being
    /// tracked (§III, Class B).
    pub protected_dirs: Vec<VPath>,
    /// Scoring parameters.
    pub score: ScoreConfig,
    /// Track files moved out of protected directories (Class B defense).
    /// Disabled only by the ablation benchmarks.
    pub track_moved_files: bool,
    /// Enable union indication (disabled only by the ablation benchmarks).
    pub union_enabled: bool,
    /// Attribute operations to the issuing process's top-level ancestor,
    /// so a sample that fans work out across child processes is scored
    /// (and suspended) as one family — the paper's "suspends the
    /// suspicious process (or family of processes)" (§IV).
    pub aggregate_process_families: bool,
    /// Dynamic scoring (future work in the paper, §V-C): when the
    /// similarity indicator is structurally unavailable for a file (no
    /// pre-image digest), the type-change points for that file are
    /// doubled, compensating for the missing indicator.
    pub dynamic_scoring: bool,
    /// Maximum bytes of a file to similarity-digest per snapshot; larger
    /// files are digested by prefix. Bounds per-operation analysis cost.
    pub max_digest_bytes: usize,
    /// Maximum number of path-keyed snapshots the engine retains. The
    /// path index must survive deletes (the Class C link compares a
    /// replacement against the deleted original's snapshot), so it only
    /// shrinks by eviction; this cap bounds its memory. Eviction is
    /// least-recently-used. The default is far above every paper
    /// experiment's working set (thousands of paths), so results are
    /// unaffected unless deliberately lowered; an evicted path merely
    /// degrades to the no-pre-image abstain the paper already models for
    /// never-seen files. `0` means unbounded.
    ///
    /// The cap is spread over the engine's 16 path shards (rounding up
    /// to at least one slot per shard), so values below 16 act as 16
    /// single-entry caches. Sizing the cap below a workload's cyclic
    /// working set triggers the classic LRU sweep pathology — each path
    /// is revisited only after being evicted to admit the others, so
    /// evictions track misses one-for-one. Keep the cap comfortably
    /// above the hot path count (the default is 65,536).
    pub snapshot_cache_capacity: usize,
    /// Separate bound for **pinned** path snapshots: snapshots of deleted
    /// protected files are excluded from the LRU cap above (the Class C
    /// delete-then-drop link depends on them surviving unrelated cache
    /// pressure) and budgeted here instead, oldest-first. `0` means
    /// unbounded.
    pub pinned_snapshot_budget: usize,
    /// Reuse resident snapshots when a file's 64-bit content fingerprint
    /// is unchanged (skipping the sniff/digest/entropy recompute). On by
    /// default; disabling forces a full recompute on every refresh —
    /// byte-for-byte the reference behavior, used by tests to prove the
    /// cache never changes a verdict.
    pub fingerprint_cache: bool,
    /// Analyse closes from dirty extents when the VFS tracked them:
    /// delta-update the cached byte histogram, splice unchanged sdhash
    /// feature runs, and skip analysis entirely for stamp-unchanged
    /// content. On by default; disabling forces the whole-file recompute
    /// path on every close — the reference behavior, used by tests to
    /// prove incremental analysis never changes a verdict.
    pub incremental_analysis: bool,
    /// Registered decoy (bait) files. No legitimate workflow touches a
    /// decoy, so *any* destructive operation on one — a write-open,
    /// write, truncate, delete, rename endpoint, or attribute change —
    /// is an instant maximum-confidence detection: the issuing family is
    /// suspended immediately, bypassing the reputation scoreboard
    /// entirely. Reads are allowed (enumeration tools list decoys
    /// without tripping them). Empty (no decoys) by default.
    pub decoy_paths: Vec<VPath>,
    /// Enable reputation-driven operation throttling: once a family's
    /// score reaches [`Config::throttle_score`], each destructive
    /// in-scope operation it issues is delayed on the simulated clock by
    /// `score × throttle_nanos_per_point`, stretching the time budget an
    /// attacker needs to do damage while the scoreboard converges.
    /// Off by default.
    pub throttle_enabled: bool,
    /// Family score at which throttling engages. Set well below the
    /// detection threshold so slowdown starts during the suspicion
    /// window, not after suspension.
    pub throttle_score: u32,
    /// Simulated-clock delay per reputation point per throttled
    /// operation, in nanoseconds.
    pub throttle_nanos_per_point: u64,
    /// Enable per-family first-modification rate budgets: each family
    /// holds a token bucket of [`Config::rate_budget_capacity`] tokens
    /// that refills one token per
    /// [`Config::rate_refill_nanos_per_token`] simulated nanoseconds.
    /// Every *first* modification of a distinct file draws a token; once
    /// the bucket runs dry, each destructive in-scope operation the
    /// family issues is additionally delayed by
    /// [`Config::rate_throttle_nanos`] on the simulated clock, composing
    /// with reputation throttling above. Unlike the fixed burst window,
    /// a budget punishes *sustained* rate: an attacker pacing just under
    /// the window threshold still drains the bucket. Off by default.
    pub rate_budget_enabled: bool,
    /// Tokens a family's bucket holds when full (and starts with).
    pub rate_budget_capacity: u32,
    /// Simulated nanoseconds to refill one token.
    pub rate_refill_nanos_per_token: u64,
    /// Simulated-clock delay per destructive in-scope operation while a
    /// family's bucket is dry, in nanoseconds.
    pub rate_throttle_nanos: u64,
}

impl Config {
    /// A configuration protecting a single directory with default scoring.
    pub fn protecting(dir: impl Into<VPath>) -> Self {
        Self {
            protected_dirs: vec![dir.into()],
            score: ScoreConfig::default(),
            track_moved_files: true,
            union_enabled: true,
            aggregate_process_families: true,
            dynamic_scoring: false,
            max_digest_bytes: 256 * 1024,
            snapshot_cache_capacity: 1 << 16,
            pinned_snapshot_budget: 1 << 12,
            fingerprint_cache: true,
            incremental_analysis: true,
            decoy_paths: Vec::new(),
            throttle_enabled: false,
            throttle_score: 100,
            throttle_nanos_per_point: 1_000_000,
            rate_budget_enabled: false,
            rate_budget_capacity: 24,
            rate_refill_nanos_per_token: 2_000_000_000, // 2 simulated seconds
            rate_throttle_nanos: 250_000_000,           // 250 simulated ms
        }
    }

    /// Returns `true` if `path` lies under a protected directory.
    pub fn is_protected(&self, path: &VPath) -> bool {
        self.protected_dirs.iter().any(|d| path.starts_with(d))
    }

    /// Returns `true` if `path` is a registered decoy file.
    ///
    /// Linear scan; the engine itself pre-hashes
    /// [`Config::decoy_paths`] at construction and never calls this on
    /// the hot path.
    pub fn is_decoy(&self, path: &VPath) -> bool {
        self.decoy_paths.iter().any(|d| d == path)
    }

    /// Replaces the scoring parameters (builder-style).
    pub fn with_score(mut self, score: ScoreConfig) -> Self {
        self.score = score;
        self
    }

    /// Registers decoy files (builder-style). See [`Config::decoy_paths`].
    pub fn with_decoys(mut self, decoys: impl IntoIterator<Item = VPath>) -> Self {
        self.decoy_paths.extend(decoys);
        self
    }

    /// Enables reputation-driven throttling (builder-style) with the
    /// given engage score and per-point delay. See
    /// [`Config::throttle_enabled`].
    pub fn with_throttling(mut self, score: u32, nanos_per_point: u64) -> Self {
        self.throttle_enabled = true;
        self.throttle_score = score;
        self.throttle_nanos_per_point = nanos_per_point;
        self
    }

    /// Enables per-family first-modification rate budgets (builder-style)
    /// with the given bucket capacity, refill interval, and dry-bucket
    /// per-operation delay. See [`Config::rate_budget_enabled`].
    pub fn with_rate_budget(
        mut self,
        capacity: u32,
        refill_nanos_per_token: u64,
        throttle_nanos: u64,
    ) -> Self {
        self.rate_budget_enabled = true;
        self.rate_budget_capacity = capacity;
        self.rate_refill_nanos_per_token = refill_nanos_per_token;
        self.rate_throttle_nanos = throttle_nanos;
        self
    }

    /// Replaces the score-decay policy (builder-style). See
    /// [`ScoreConfig::decay`].
    pub fn with_decay(mut self, decay: DecayPolicy) -> Self {
        self.score.decay = decay;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let s = ScoreConfig::default();
        assert_eq!(s.non_union_threshold, 200, "paper §V-A");
        assert_eq!(s.entropy_delta_threshold, 0.1, "paper §IV-C1");
        assert!(s.union_threshold < s.non_union_threshold);
    }

    #[test]
    fn protected_dir_matching() {
        let cfg = Config::protecting("/Users/victim/Documents");
        assert!(cfg.is_protected(&VPath::new("/Users/victim/Documents/a/b.txt")));
        assert!(cfg.is_protected(&VPath::new("/Users/victim/Documents")));
        assert!(!cfg.is_protected(&VPath::new("/Users/victim/Downloads/x")));
        assert!(!cfg.is_protected(&VPath::new("/Users/victim/DocumentsEvil/x")));
    }

    #[test]
    fn multiple_protected_dirs() {
        let mut cfg = Config::protecting("/docs");
        cfg.protected_dirs.push(VPath::new("/desktop"));
        assert!(cfg.is_protected(&VPath::new("/desktop/note.txt")));
        assert!(cfg.is_protected(&VPath::new("/docs/x")));
        assert!(!cfg.is_protected(&VPath::new("/other")));
    }

    #[test]
    fn decoys_and_throttle_defaults_off() {
        let cfg = Config::protecting("/docs");
        assert!(cfg.decoy_paths.is_empty());
        assert!(!cfg.throttle_enabled);
        assert!(!cfg.is_decoy(&VPath::new("/docs/passwords.xlsx")));

        let cfg = cfg
            .with_decoys([VPath::new("/docs/passwords.xlsx")])
            .with_throttling(80, 2_000_000);
        assert!(cfg.is_decoy(&VPath::new("/docs/passwords.xlsx")));
        assert!(!cfg.is_decoy(&VPath::new("/docs/other.xlsx")));
        assert!(cfg.throttle_enabled);
        assert_eq!(cfg.throttle_score, 80);
        assert_eq!(cfg.throttle_nanos_per_point, 2_000_000);
    }

    #[test]
    fn decay_and_rate_budget_default_off() {
        let cfg = Config::protecting("/docs");
        assert!(cfg.score.decay.is_none());
        assert!(!cfg.rate_budget_enabled);

        let cfg = cfg
            .with_decay(DecayPolicy::HalfLife {
                half_life_nanos: 3_600_000_000_000,
            })
            .with_rate_budget(10, 1_000_000_000, 100_000_000);
        assert!(!cfg.score.decay.is_none());
        assert!(cfg.rate_budget_enabled);
        assert_eq!(cfg.rate_budget_capacity, 10);
        assert_eq!(cfg.rate_refill_nanos_per_token, 1_000_000_000);
        assert_eq!(cfg.rate_throttle_nanos, 100_000_000);
    }

    #[test]
    fn decay_value_exact_at_age_zero() {
        let policies = [
            DecayPolicy::None,
            DecayPolicy::Window { window_nanos: 100 },
            DecayPolicy::Linear { window_nanos: 100 },
            DecayPolicy::HalfLife {
                half_life_nanos: 100,
            },
        ];
        for p in policies {
            for points in [0u32, 1, 3, 6, 15, 40, 200, u32::MAX] {
                assert_eq!(p.value(points, 0), points, "{p:?} must be exact at age 0");
            }
        }
    }

    #[test]
    fn decay_value_monotone_in_age() {
        let policies = [
            DecayPolicy::None,
            DecayPolicy::Window { window_nanos: 977 },
            DecayPolicy::Linear { window_nanos: 977 },
            DecayPolicy::HalfLife {
                half_life_nanos: 977,
            },
        ];
        for p in policies {
            for points in [1u32, 6, 40, 255] {
                let mut prev = p.value(points, 0);
                // Exhaustive small ages plus a geometric tail: catches
                // off-by-ones at window edges and shift saturation.
                let ages = (0u64..4000).chain((2u64..40).map(|k| 977 * k * k));
                for age in ages {
                    let v = p.value(points, age);
                    assert!(
                        v <= prev,
                        "{p:?}: value({points}, {age}) = {v} rose above {prev}"
                    );
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn decay_window_and_linear_reach_zero() {
        let w = DecayPolicy::Window { window_nanos: 100 };
        assert_eq!(w.value(40, 100), 40);
        assert_eq!(w.value(40, 101), 0);
        let l = DecayPolicy::Linear { window_nanos: 100 };
        assert_eq!(l.value(40, 50), 20);
        assert_eq!(l.value(40, 100), 0);
        assert_eq!(l.value(40, u64::MAX), 0);
    }

    #[test]
    fn decay_half_life_halves_and_saturates() {
        let h = DecayPolicy::HalfLife {
            half_life_nanos: 100,
        };
        assert_eq!(h.value(40, 100), 20);
        assert_eq!(h.value(40, 200), 10);
        assert_eq!(h.value(40, 999), 0); // 9 halvings of 40 → 0
        assert_eq!(h.value(u32::MAX, u64::MAX), u32::MAX >> 31);
    }

    #[test]
    fn infinite_support_policies_match_none() {
        // A window (or half-life) wider than any simulated run cannot
        // age anything out — the decayed sum equals the raw sum. The
        // cross-crate equivalence suite leans on this identity.
        let policies = [
            DecayPolicy::Window {
                window_nanos: u64::MAX,
            },
            DecayPolicy::HalfLife {
                half_life_nanos: u64::MAX,
            },
        ];
        for p in policies {
            for points in [1u32, 6, 40, 200] {
                for age in [0u64, 1, 1 << 40, 1 << 62] {
                    assert_eq!(p.value(points, age), points, "{p:?}");
                }
            }
        }
    }

    #[test]
    fn builder_with_score() {
        let custom = ScoreConfig {
            non_union_threshold: 50,
            ..ScoreConfig::default()
        };
        let cfg = Config::protecting("/d").with_score(custom.clone());
        assert_eq!(cfg.score, custom);
    }
}
