//! Per-process detection audit trails.
//!
//! A detection is only as useful as its explanation: the paper's
//! user-facing side (§IV-A) asks the victim to judge whether suspended
//! activity was legitimate, which requires showing *which* indicators
//! fired, *when*, and *with what measured values*. [`AuditTrail`]
//! reconstructs that timeline for one process from the engine's hit log,
//! replaying the scoreboard arithmetic (including the one-time union
//! bonus, §III-E) so every entry carries the running score it produced.

use cryptodrop_vfs::ProcessId;
use serde::{Deserialize, Serialize};

use crate::config::Config;
use crate::indicators::{Indicator, IndicatorHit};
use crate::state::ProcessState;

/// One indicator contribution on a process's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Which indicator fired.
    pub indicator: Indicator,
    /// Its stable report name ("type-change", "similarity", ...).
    pub indicator_name: String,
    /// The measured value that tripped the indicator, in that indicator's
    /// own unit (see [`IndicatorHit::value`]).
    pub value: f64,
    /// The threshold the value was compared against, same unit.
    pub threshold: f64,
    /// Reputation points awarded.
    pub points: u32,
    /// The running score after this award (union bonus included when this
    /// award completed the primary union).
    pub score_after: u32,
    /// The running score with every prior award decayed to this entry's
    /// `at_nanos` under the configured
    /// [`DecayPolicy`](crate::DecayPolicy) — what the threshold check
    /// actually compared at this moment. `None` when the policy is
    /// [`DecayPolicy::None`](crate::DecayPolicy::None) (the raw
    /// `score_after` is then exact).
    pub decayed_after: Option<u32>,
    /// Simulated timestamp of the triggering operation.
    pub at_nanos: u64,
    /// Human-readable context (file, scores).
    pub detail: String,
}

/// The reconstructed detection timeline of one process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditTrail {
    /// The process (family root when aggregation is on).
    pub pid: ProcessId,
    /// Its executable name.
    pub process_name: String,
    /// Current reputation score (raw, undecayed).
    pub score: u32,
    /// The score decayed to the trail's final timestamp (the suspension
    /// time when one was issued, else the last hit) under the configured
    /// [`DecayPolicy`](crate::DecayPolicy); `None` when the policy is
    /// [`DecayPolicy::None`](crate::DecayPolicy::None).
    pub decayed_score: Option<u32>,
    /// The threshold currently applying (lowered after union indication).
    pub threshold: u32,
    /// Whether a suspension verdict has been issued.
    pub detected: bool,
    /// Whether union indication occurred.
    pub union_triggered: bool,
    /// Simulated time of union indication, if it occurred.
    pub union_at_nanos: Option<u64>,
    /// Pre-existing protected files lost.
    pub files_lost: u32,
    /// Simulated time of the suspension verdict, if one was issued.
    pub suspended_at_nanos: Option<u64>,
    /// Every indicator contribution, in firing order.
    pub entries: Vec<AuditEntry>,
}

impl AuditTrail {
    /// Reconstructs the trail from a process's state, replaying the award
    /// arithmetic of
    /// [`ProcessState::award`](crate::state::ProcessState::award) so each
    /// entry's `score_after` matches what the scoreboard held at that
    /// moment.
    pub(crate) fn rebuild(
        st: &ProcessState,
        cfg: &Config,
        suspended_at_nanos: Option<u64>,
    ) -> AuditTrail {
        let decaying = !cfg.score.decay.is_none();
        let mut running = 0u32;
        // The awards replayed so far, as (at_nanos, points) pairs — the
        // union bonus rides as its own award, stamped at the completing
        // hit's time, matching `ProcessState::decayed_score`.
        let mut awards: Vec<(u64, u32)> = Vec::new();
        let mut primaries = std::collections::BTreeSet::new();
        let mut union_done = false;
        let entries = st
            .hits()
            .iter()
            .map(|h: &IndicatorHit| {
                running += h.points;
                if decaying {
                    awards.push((h.at_nanos, h.points));
                }
                if h.indicator.is_primary() {
                    primaries.insert(h.indicator);
                }
                if cfg.union_enabled
                    && !union_done
                    && Indicator::PRIMARY.iter().all(|p| primaries.contains(p))
                {
                    union_done = true;
                    running += cfg.score.union_bonus;
                    if decaying {
                        awards.push((h.at_nanos, cfg.score.union_bonus));
                    }
                }
                // The decayed running score re-ages every prior award to
                // this entry's timestamp — O(n) per entry, but the audit
                // trail is a cold post-detection path.
                let decayed_after = decaying.then(|| {
                    let sum: u64 = awards
                        .iter()
                        .map(|&(at, points)| {
                            u64::from(
                                cfg.score
                                    .decay
                                    .value(points, h.at_nanos.saturating_sub(at)),
                            )
                        })
                        .sum();
                    u32::try_from(sum).unwrap_or(u32::MAX)
                });
                AuditEntry {
                    indicator: h.indicator,
                    indicator_name: h.indicator.name().to_string(),
                    value: h.value,
                    threshold: h.threshold,
                    points: h.points,
                    score_after: running,
                    decayed_after,
                    at_nanos: h.at_nanos,
                    detail: h.detail.clone(),
                }
            })
            .collect::<Vec<_>>();
        let summary = st.summary(&cfg.score);
        debug_assert_eq!(running, st.score(), "replay must agree with the scoreboard");
        let decayed_score = decaying.then(|| {
            let now = suspended_at_nanos
                .or_else(|| entries.last().map(|e: &AuditEntry| e.at_nanos))
                .unwrap_or(0);
            st.decayed_score(&cfg.score, now)
        });
        AuditTrail {
            pid: st.pid(),
            process_name: st.name().to_string(),
            score: st.score(),
            decayed_score,
            threshold: summary.threshold,
            detected: st.is_detected(),
            union_triggered: st.union_triggered(),
            union_at_nanos: summary.union_at_nanos,
            files_lost: st.files_lost(),
            suspended_at_nanos,
            entries,
        }
    }

    /// A human-readable rendering of the trail, one line per entry.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let decayed = match self.decayed_score {
            Some(d) => format!(" (decayed {d})"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{} (pid {}): score {}{}/{}{}{}",
            self.process_name,
            self.pid.0,
            self.score,
            decayed,
            self.threshold,
            if self.detected { " SUSPENDED" } else { "" },
            if self.union_triggered {
                " [union indication]"
            } else {
                ""
            },
        );
        for e in &self.entries {
            let decayed = match e.decayed_after {
                Some(d) => format!(" ({d} decayed)"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  t+{:>12}ns  {:<13} value {:>8.3} vs {:>7.3}  +{:<3} -> {:<4}{} {}",
                e.at_nanos,
                e.indicator_name,
                e.value,
                e.threshold,
                e.points,
                e.score_after,
                decayed,
                e.detail,
            );
        }
        if let Some(at) = self.suspended_at_nanos {
            let _ = writeln!(out, "  t+{at:>12}ns  suspended ({} files lost)", self.files_lost);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoreConfig;

    fn hit(indicator: Indicator, points: u32, at: u64) -> IndicatorHit {
        IndicatorHit {
            indicator,
            points,
            value: 2.5,
            threshold: 2.0,
            detail: format!("{indicator} fired"),
            at_nanos: at,
        }
    }

    #[test]
    fn replay_matches_scoreboard_including_union_bonus() {
        let cfg = Config::protecting("/d");
        let score = ScoreConfig::default();
        let mut st = ProcessState::new(ProcessId(7), "mal.exe", &score);
        for (i, ind) in [
            Indicator::Deletion,
            Indicator::TypeChange,
            Indicator::Similarity,
            Indicator::EntropyDelta, // completes the union here
            Indicator::TypeChange,
        ]
        .into_iter()
        .enumerate()
        {
            st.award(&score, cfg.union_enabled, hit(ind, 10, i as u64 * 100));
        }
        let trail = AuditTrail::rebuild(&st, &cfg, Some(999));
        assert_eq!(trail.score, st.score());
        assert_eq!(trail.entries.len(), 5);
        // The union-completing entry absorbs the bonus.
        assert_eq!(trail.entries[2].score_after, 30);
        assert_eq!(trail.entries[3].score_after, 40 + score.union_bonus);
        assert_eq!(trail.entries[4].score_after, 50 + score.union_bonus);
        assert!(trail.union_triggered);
        assert_eq!(trail.suspended_at_nanos, Some(999));
        assert_eq!(trail.entries[1].indicator_name, "type-change");
        let text = trail.render();
        assert!(text.contains("mal.exe"));
        assert!(text.contains("type-change"));
        assert!(text.contains("suspended"));
    }

    #[test]
    fn undecayed_trail_has_no_decay_columns() {
        let cfg = Config::protecting("/d");
        let score = ScoreConfig::default();
        let mut st = ProcessState::new(ProcessId(9), "y.exe", &score);
        st.award(&score, true, hit(Indicator::TypeChange, 10, 0));
        let trail = AuditTrail::rebuild(&st, &cfg, None);
        assert_eq!(trail.decayed_score, None);
        assert!(trail.entries.iter().all(|e| e.decayed_after.is_none()));
        assert!(!trail.render().contains("decayed"));
    }

    #[test]
    fn decayed_replay_ages_awards_per_entry() {
        use crate::config::DecayPolicy;
        let mut cfg = Config::protecting("/d");
        cfg.score.decay = DecayPolicy::Window { window_nanos: 150 };
        let score = cfg.score.clone();
        let mut st = ProcessState::new(ProcessId(11), "slow.exe", &score);
        st.award(&score, true, hit(Indicator::TypeChange, 10, 0));
        st.award(&score, true, hit(Indicator::TypeChange, 10, 100));
        st.award(&score, true, hit(Indicator::TypeChange, 10, 400));
        let trail = AuditTrail::rebuild(&st, &cfg, None);
        // Raw replay is untouched by decay.
        assert_eq!(
            trail.entries.iter().map(|e| e.score_after).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(trail.score, 30);
        // Decayed replay: at t=100 both awards are inside the window; at
        // t=400 only the newest survives.
        assert_eq!(
            trail
                .entries
                .iter()
                .map(|e| e.decayed_after)
                .collect::<Vec<_>>(),
            vec![Some(10), Some(20), Some(10)]
        );
        assert_eq!(trail.decayed_score, Some(10), "decayed to the last hit");
        let text = trail.render();
        assert!(text.contains("decayed"), "{text}");
    }

    #[test]
    fn decayed_replay_stamps_union_bonus_at_union_time() {
        use crate::config::DecayPolicy;
        let mut cfg = Config::protecting("/d");
        cfg.score.decay = DecayPolicy::Window { window_nanos: 150 };
        let score = cfg.score.clone();
        let mut st = ProcessState::new(ProcessId(12), "u.exe", &score);
        st.award(&score, true, hit(Indicator::TypeChange, 10, 0));
        st.award(&score, true, hit(Indicator::Similarity, 10, 10));
        st.award(&score, true, hit(Indicator::EntropyDelta, 10, 300));
        let trail = AuditTrail::rebuild(&st, &cfg, Some(300));
        // The union completes at t=300, where the first two awards have
        // aged out: decayed = entropy hit + full union bonus.
        let last = trail.entries.last().unwrap();
        assert_eq!(last.score_after, 30 + score.union_bonus);
        assert_eq!(last.decayed_after, Some(10 + score.union_bonus));
        assert_eq!(
            trail.decayed_score,
            Some(st.decayed_score(&score, 300)),
            "trail tail agrees with the scoreboard's own decay arithmetic"
        );
    }

    #[test]
    fn union_disabled_replay_has_no_bonus() {
        let mut cfg = Config::protecting("/d");
        cfg.union_enabled = false;
        let score = ScoreConfig::default();
        let mut st = ProcessState::new(ProcessId(8), "x.exe", &score);
        for ind in Indicator::PRIMARY {
            st.award(&score, false, hit(ind, 5, 0));
        }
        let trail = AuditTrail::rebuild(&st, &cfg, None);
        assert_eq!(trail.score, 15);
        assert_eq!(trail.entries.last().unwrap().score_after, 15);
        assert!(!trail.union_triggered);
    }
}
