//! The asynchronous batched analysis pipeline (ROADMAP: "sharding,
//! batching, async").
//!
//! Interposition callbacks stay on the verdict-critical fast path (family
//! gate, scope checks, content capture) and hand the heavy indicator work
//! — sniff, sdhash, entropy, score awards — to this pipeline as
//! [`OpRecord`](crate::record::OpRecord)s. Records are distributed over
//! bounded per-shard FIFO queues keyed by process family (matching the
//! engine's lock shards), so one family's records are always processed in
//! order while unrelated families flow in parallel. A worker pool drains
//! per-shard batches and publishes results back through the engine's
//! sharded state, keeping `Monitor` reads lock-cheap.
//!
//! Backpressure on a full shard queue is explicit policy, not an accident
//! — see [`Backpressure`]. Queue depth, batch size, drain latency, and
//! degradation events are exported through the telemetry registry
//! (`pipeline.*` metrics) and mirrored in the always-on
//! [`PipelineStats`] counters.
//!
//! # Fault tolerance
//!
//! A detector must keep watching while an attack is actively destroying
//! data, so every failure mode a worker can hit degrades instead of
//! wedging a producer:
//!
//! * **Worker panics** (real bugs or injected via
//!   [`FaultPlan::worker_panic_probability`](cryptodrop_vfs::FaultPlan))
//!   unwind out of [`PipelineShared::worker_loop`]; a drop guard requeues
//!   the interrupted batch at the front of its shard (FIFO preserved,
//!   nothing lost) and the session's respawn wrapper restarts the worker,
//!   counted in [`PipelineStats::worker_restarts`]. A record that keeps
//!   panicking its worker is retried once, then completed with `Allow`
//!   and counted in [`PipelineStats::abandoned`] — a poison pill must not
//!   crash-loop the pool.
//! * **Poisoned locks** never cascade: every mutex/condvar acquisition
//!   recovers the guard via [`PoisonError::into_inner`]. The protected
//!   state is a `VecDeque` plus counters, all valid at every await point,
//!   so recovery is safe by construction.
//! * **`Sync` verdict waits carry a deadline**
//!   ([`PipelineConfig::sync_deadline`]): a producer whose worker died
//!   re-claims its own record from the shard queue and processes it
//!   inline ([`PipelineStats::sync_fallbacks`]) instead of blocking on
//!   the condvar forever.
//!
//! The pipeline's blocking primitives are `std::sync` mutexes and condvars
//! (the vendored `parking_lot` stand-in has no condvar).

// Producers run inside filter callbacks on the caller's thread: a panic
// here aborts the user-visible operation, so unwrap/expect are banned.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use cryptodrop_telemetry::{Counter, Gauge, Histogram, JournalKind, Telemetry};
use cryptodrop_vfs::{FaultInjector, Verdict};

use crate::engine::CryptoDrop;
use crate::record::OpRecord;

/// Locks a mutex, recovering the guard from a poisoned lock. Workers can
/// die mid-batch (panic injection, real bugs); the data under every
/// pipeline lock is structurally valid at each await point, so producers
/// must keep going rather than cascade the panic.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How many times a record is handed to a worker before the pipeline
/// gives up on analyzing it (completing its slot with `Allow` and
/// counting it in [`PipelineStats::abandoned`]).
const MAX_PROCESS_ATTEMPTS: u32 = 2;

/// What happens when a record arrives at a full shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the producer until the worker makes room, and wait for each
    /// post-operation record's verdict before returning it to the VFS.
    /// Verdict-equivalent to the inline engine: every operation sees
    /// exactly the verdict the analysis produces, at the same point in
    /// the operation stream. The default.
    #[default]
    Sync,
    /// Never block and never drop: an enqueued post-operation submission
    /// returns `Allow` immediately (a crossing lands on the family's next
    /// operation via the inline family gate), and a full shard queue makes
    /// the *producer* drain it and process its own record inline —
    /// graceful degradation under sustained overload, counted in
    /// [`PipelineStats::degraded`] and journaled when telemetry is on.
    /// Records whose analysis is provably O(1) (stamp-matching
    /// steady-state saves) are processed on the calling thread instead of
    /// queued — cheaper than cloning their content — and return their
    /// real verdict, exactly as the inline engine would.
    DegradeToInline,
}

/// Sizing and policy for the analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of queue shards. Records shard by process family, so this
    /// bounds cross-family processing parallelism. Default 8.
    pub shards: usize,
    /// Bound on each shard queue, in records. Default 256.
    pub capacity: usize,
    /// Worker threads draining the shards (shard `s` belongs to worker
    /// `s % workers`). Default 2.
    pub workers: usize,
    /// Most records a worker takes from one shard per drain. Default 32.
    pub max_batch: usize,
    /// How long a `Sync` producer waits on its verdict slot (or a full
    /// queue) before assuming the owning worker died and falling back to
    /// processing inline. Purely a liveness bound — on a healthy pipeline
    /// the condvar fires long before it. Must be nonzero. Default 50ms.
    pub sync_deadline: Duration,
    /// Full-queue policy. Default [`Backpressure::Sync`].
    pub backpressure: Backpressure,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            capacity: 256,
            workers: 2,
            max_batch: 32,
            sync_deadline: Duration::from_millis(50),
            backpressure: Backpressure::Sync,
        }
    }
}

/// Point-in-time pipeline counters, available whether or not telemetry is
/// enabled. Read via [`Session::pipeline_stats`](crate::Session::pipeline_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Records accepted onto a shard queue.
    pub enqueued: u64,
    /// Queued records whose analysis completed (excludes records processed
    /// inline through degradation, which never enter a queue).
    pub processed: u64,
    /// Full-queue degradations: submissions that drained the shard and ran
    /// inline under [`Backpressure::DegradeToInline`].
    pub degraded: u64,
    /// Batches drained (by workers or by degrading producers).
    pub batches: u64,
    /// Workers respawned after a panic unwound their loop.
    pub worker_restarts: u64,
    /// `Sync` producers that hit [`PipelineConfig::sync_deadline`] and
    /// completed their record inline (queue reclaim or full-queue drain).
    pub sync_fallbacks: u64,
    /// Records whose analysis was abandoned (slot completed with `Allow`)
    /// after repeatedly panicking their worker.
    pub abandoned: u64,
}

/// A record in flight, with the completion slot the `Sync`-mode producer
/// is blocked on (`None` under `DegradeToInline`).
struct Queued {
    rec: OpRecord<'static>,
    slot: Option<Arc<VerdictSlot>>,
    /// Times a drain has picked this record up. Bumped before processing,
    /// so a panic mid-analysis is charged to the record that caused it.
    attempts: u32,
}

/// One-shot verdict hand-off from the worker to a waiting producer.
#[derive(Default)]
struct VerdictSlot {
    verdict: Mutex<Option<Verdict>>,
    ready: Condvar,
}

impl VerdictSlot {
    fn put(&self, v: Verdict) {
        let mut g = lock_recover(&self.verdict);
        *g = Some(v);
        drop(g);
        self.ready.notify_all();
    }

    /// Waits up to `timeout` for the verdict. `None` means the deadline
    /// (or a spurious wakeup) passed with the slot still empty — the
    /// caller decides whether to reclaim the record or keep waiting.
    fn wait_timeout(&self, timeout: Duration) -> Option<Verdict> {
        let mut g = lock_recover(&self.verdict);
        if let Some(v) = g.take() {
            return Some(v);
        }
        let (mut g, _timed_out) = self
            .ready
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        g.take()
    }
}

/// One bounded FIFO shard.
struct ShardQueue {
    q: Mutex<VecDeque<Queued>>,
    /// Signalled when the worker makes room (Sync producers wait here).
    not_full: Condvar,
    /// Held across batch processing, by the worker or by a degrading
    /// producer — guarantees a shard's records are never reordered even
    /// when a producer drains it.
    drain: Mutex<()>,
    enqueued: AtomicU64,
    processed: AtomicU64,
    /// Records enqueued on this shard and not yet completed — counts a
    /// record from its `q.push_back` until its verdict is produced, so it
    /// covers both queue residency *and* time inside a worker's batch
    /// (a panic-requeued record simply stays counted). The producer fast
    /// paths (`Sync` and the `DegradeToInline` light-record path) read
    /// this single atomic to prove the shard has no in-flight analysis to
    /// order against; fast-path records themselves never touch it.
    busy: AtomicU64,
}

impl ShardQueue {
    fn new() -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            not_full: Condvar::new(),
            drain: Mutex::new(()),
            enqueued: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            busy: AtomicU64::new(0),
        }
    }

    /// Removes and returns the queued record owned by `slot`, if it is
    /// still waiting on this shard (identity, not equality: the producer
    /// reclaims exactly its own record). Used by the `Sync` deadline
    /// fallback; under `Sync` every producer blocks per record, so a
    /// family never has two records queued from one thread and the
    /// out-of-queue completion cannot reorder a family's analysis.
    fn take_by_slot(&self, slot: &Arc<VerdictSlot>) -> Option<Queued> {
        let mut q = lock_recover(&self.q);
        let pos = q
            .iter()
            .position(|item| item.slot.as_ref().is_some_and(|s| Arc::ptr_eq(s, slot)))?;
        let item = q.remove(pos);
        drop(q);
        self.not_full.notify_all();
        item
    }
}

/// Telemetry handles resolved once at pipeline construction.
struct PipelineMetrics {
    enqueued: Counter,
    processed: Counter,
    degraded: Counter,
    worker_restarts: Counter,
    sync_fallbacks: Counter,
    abandoned: Counter,
    depth: Gauge,
    batch_size: Histogram,
    drain_ns: Histogram,
}

impl PipelineMetrics {
    fn new(t: &Telemetry) -> Self {
        Self {
            enqueued: t.counter("pipeline.enqueued"),
            processed: t.counter("pipeline.processed"),
            degraded: t.counter("pipeline.degraded"),
            worker_restarts: t.counter("pipeline.worker_restarts"),
            sync_fallbacks: t.counter("pipeline.sync_fallbacks"),
            abandoned: t.counter("pipeline.abandoned"),
            depth: t.gauge("pipeline.queue.depth"),
            batch_size: t.histogram("pipeline.batch.size"),
            drain_ns: t.histogram("pipeline.drain.ns"),
        }
    }
}

/// The pipeline state shared by producers (filter forks), workers, and the
/// owning [`Session`](crate::Session).
pub(crate) struct PipelineShared {
    cfg: PipelineConfig,
    shards: Vec<ShardQueue>,
    shutdown: AtomicBool,
    /// Work-available sequence + condvar: producers bump it after every
    /// enqueue; workers re-scan instead of sleeping whenever it moved.
    work_seq: Mutex<u64>,
    work_ready: Condvar,
    /// Workers currently parked inside `work_ready.wait_timeout`. Producers
    /// consult it on enqueue: with deep idle backoff (up to 50ms) a parked
    /// worker must be notified of *any* enqueue, not just the
    /// empty→non-empty transition, or a `DegradeToInline` producer — which
    /// never waits and so never re-signals — leaves records stranded until
    /// the backoff timer fires.
    sleepers: AtomicU64,
    degraded: AtomicU64,
    batches: AtomicU64,
    worker_restarts: AtomicU64,
    sync_fallbacks: AtomicU64,
    abandoned: AtomicU64,
    metrics: PipelineMetrics,
    telemetry: Telemetry,
    /// Shared fault-decision engine (chaos testing). Consulted by workers
    /// only — producer-side drains are never panicked, they are already
    /// the degraded path.
    injector: Option<FaultInjector>,
}

/// Drop guard around one drained batch: on a panic mid-processing the
/// not-yet-completed remainder (including the record being processed) is
/// pushed back onto the **front** of the shard queue in its original
/// order, so nothing is lost, FIFO holds, and every waiting producer's
/// slot is eventually completed by the respawned worker (or reclaimed by
/// its producer at the sync deadline).
struct BatchGuard<'a> {
    pipeline: &'a PipelineShared,
    shard: &'a ShardQueue,
    pending: VecDeque<Queued>,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        if self.pending.is_empty() {
            return; // normal completion
        }
        let mut q = lock_recover(&self.shard.q);
        while let Some(item) = self.pending.pop_back() {
            q.push_front(item);
        }
        drop(q);
        // Wake the respawned worker (and any deadline-waiting producers'
        // eventual reclaim scans find the records back on the queue).
        self.pipeline.signal_work();
    }
}

impl PipelineShared {
    pub(crate) fn new(
        cfg: PipelineConfig,
        telemetry: Telemetry,
        injector: Option<FaultInjector>,
    ) -> Self {
        let metrics = PipelineMetrics::new(&telemetry);
        Self {
            shards: (0..cfg.shards.max(1)).map(|_| ShardQueue::new()).collect(),
            cfg,
            shutdown: AtomicBool::new(false),
            work_seq: Mutex::new(0),
            work_ready: Condvar::new(),
            sleepers: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            sync_fallbacks: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            metrics,
            telemetry,
            injector,
        }
    }

    pub(crate) fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Same Fibonacci spread as the engine's lock shards, folded onto the
    /// queue shard count — one family always lands on one queue.
    fn shard_for(&self, key: cryptodrop_vfs::ProcessId) -> usize {
        (u64::from(key.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    fn signal_work(&self) {
        let mut g = lock_recover(&self.work_seq);
        *g = g.wrapping_add(1);
        drop(g);
        self.work_ready.notify_all();
    }

    /// Wake policy after an enqueue, per backpressure mode.
    ///
    /// * `Sync`: the producer is (or is about to be) blocked on its
    ///   verdict slot, so the worker must run *now* — the empty→non-empty
    ///   transition always signals (a deeper queue means an earlier
    ///   enqueue already bumped `work_seq`, or a worker is mid-drain and
    ///   its loop picks the record up), and so does any enqueue made
    ///   while a worker is parked, because the exponential idle backoff
    ///   can otherwise hold a parked worker for up to 50ms.
    /// * `DegradeToInline`: the producer never waits, so an eager wake
    ///   buys nothing and costs a lot — waking a parked worker preempts
    ///   the producer (the sleeper has all the scheduler credit), which
    ///   hands the analysis right back to the producer-visible window the
    ///   mode exists to protect. Wakes are therefore *batched*: nothing
    ///   is signalled until the queue reaches half capacity (sustained
    ///   overload — the worker must engage or the producer will hit the
    ///   full-queue inline drain), and below that the worker's bounded
    ///   idle timer (≤50ms) or an explicit [`Self::quiesce`] picks the
    ///   records up. A lagged crossing still lands via the inline family
    ///   gate, which is this mode's documented contract.
    fn wake_for_enqueue(&self, depth: usize) {
        let wake = match self.cfg.backpressure {
            Backpressure::Sync => depth == 1 || self.sleepers.load(Ordering::Relaxed) > 0,
            Backpressure::DegradeToInline => depth >= (self.cfg.capacity / 2).max(1),
        };
        if wake {
            self.signal_work();
        }
    }

    fn note_enqueued(&self, shard: &ShardQueue, depth: usize) {
        shard.enqueued.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.metrics.enqueued.inc();
            self.metrics.depth.set(depth as i64);
        }
    }

    /// Records that a worker was respawned after a panic. Called by the
    /// session's worker wrapper, which owns the `catch_unwind`.
    pub(crate) fn note_worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.metrics.worker_restarts.inc();
            self.telemetry.journal_event(0, 0, || JournalKind::Fault {
                site: "pipeline.worker".to_string(),
                detail: "worker respawned after panic".to_string(),
            });
        }
    }

    fn note_sync_fallback(&self) {
        self.sync_fallbacks.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.metrics.sync_fallbacks.inc();
        }
    }

    /// Submits one record. `wait` requests per-record completion waiting,
    /// honoured only under `Backpressure::Sync` (whose contract is
    /// byte-identical behavior to the inline engine);
    /// `DegradeToInline` ignores it and never blocks.
    pub(crate) fn submit(&self, engine: &CryptoDrop, rec: OpRecord<'_>, wait: bool) -> Verdict {
        if self.shutdown.load(Ordering::Acquire) {
            // The owning Session is gone: degrade to inline processing.
            return engine.process_record(&rec);
        }
        let shard = &self.shards[self.shard_for(rec.key)];
        match self.cfg.backpressure {
            Backpressure::Sync => {
                // Producer fast path: a waiting `Sync` submission needs its
                // verdict before returning anyway, so the producer
                // processes the record on the calling thread — skipping
                // the whole own/enqueue/wake/condvar round-trip (and its
                // allocations). Ordering is safe without holding any
                // shard lock across the analysis, because the queue only
                // exists to keep one *family's* records FIFO, and under
                // `Sync` every production submission waits for its
                // verdict (`Engine::dispatch` passes `wait = true` for
                // refreshes and post-operation records alike): a family's
                // previous record has fully settled before its producer
                // can even construct the next one. The only same-family
                // records that can exist concurrently come from
                // `wait = false` callers (pipeline-internal tests), and
                // those are exactly what `busy` counts — every record
                // from enqueue to verdict, queue residency and worker
                // batches alike — so one acquire load proves the shard
                // has nothing in flight to order against (the release
                // decrement at completion publishes that record's engine
                // effects). On a nonzero count we conservatively fall
                // through to the queue. No lock is held across the
                // analysis, so concurrent producers in different
                // families proceed in parallel exactly as the inline
                // engine would. Accounting still records the record as
                // enqueued + processed so the settlement invariant
                // (`enqueued == processed` at quiesce) holds. Disabled
                // while a fault injector is armed: chaos runs exist to
                // exercise the worker path (panic injection, respawn,
                // batch requeue), and the fast path would starve workers
                // of records entirely.
                if wait && self.injector.is_none() && shard.busy.load(Ordering::Acquire) == 0 {
                    let v = engine.process_record(&rec);
                    shard.enqueued.fetch_add(1, Ordering::Relaxed);
                    shard.processed.fetch_add(1, Ordering::Relaxed);
                    if self.telemetry.is_enabled() {
                        self.metrics.enqueued.inc();
                        self.metrics.processed.inc();
                    }
                    return v;
                }
                let mut q = lock_recover(&shard.q);
                while q.len() >= self.cfg.capacity {
                    if self.shutdown.load(Ordering::Acquire) {
                        drop(q);
                        return engine.process_record(&rec);
                    }
                    let (guard, timed_out) = shard
                        .not_full
                        .wait_timeout(q, self.cfg.sync_deadline)
                        .unwrap_or_else(PoisonError::into_inner);
                    q = guard;
                    if timed_out.timed_out() && q.len() >= self.cfg.capacity {
                        // The owning worker looks dead: drain the shard
                        // ourselves (FIFO under the drain lock) so the
                        // producer is never wedged on a full queue.
                        drop(q);
                        self.note_sync_fallback();
                        {
                            let _drain = lock_recover(&shard.drain);
                            self.drain_shard(engine, shard, false);
                        }
                        q = lock_recover(&shard.q);
                    }
                }
                let slot = if wait {
                    Some(Arc::new(VerdictSlot::default()))
                } else {
                    None
                };
                q.push_back(Queued {
                    rec: rec.into_owned(),
                    slot: slot.clone(),
                    attempts: 0,
                });
                shard.busy.fetch_add(1, Ordering::Release);
                let depth = q.len();
                drop(q);
                self.note_enqueued(shard, depth);
                self.wake_for_enqueue(depth);
                match slot {
                    Some(slot) => self.await_verdict(engine, shard, &slot),
                    None => Verdict::Allow,
                }
            }
            Backpressure::DegradeToInline => {
                // Producer fast path, Degrade flavor. A Degrade producer
                // never waits, so handing a record to a worker is a real
                // win only when the analysis outweighs the hand-off —
                // and the hand-off is not free: `into_owned` clones the
                // record's full content (refresh/read/write/close records
                // carry the whole file), and the enqueue+wake round-trip
                // costs a lock and a notify. For a *light* record (every
                // content pass resolves through a stamp-matching snapshot
                // in O(1) — the steady-state save), the clone alone dwarfs
                // the analysis, so the producer processes it borrowed on
                // the calling thread. Heavy records (changed content, full
                // sniff/sdhash/entropy) still enqueue: that is the burst
                // the pipeline exists to absorb. Ordering mirrors the
                // `Sync` fast path: one acquire load of `busy == 0`
                // proves this shard has nothing queued or mid-batch to
                // order against, and in production a family's records come
                // from one `Vfs` thread, so no same-family record can be
                // submitted concurrently. Counted as enqueued + processed
                // so the settlement invariant holds; disabled under fault
                // injection so chaos runs keep exercising the worker path.
                if self.injector.is_none()
                    && shard.busy.load(Ordering::Acquire) == 0
                    && engine.record_is_light(&rec)
                {
                    let v = engine.process_record(&rec);
                    shard.enqueued.fetch_add(1, Ordering::Relaxed);
                    shard.processed.fetch_add(1, Ordering::Relaxed);
                    if self.telemetry.is_enabled() {
                        self.metrics.enqueued.inc();
                        self.metrics.processed.inc();
                    }
                    return v;
                }
                {
                    let mut q = lock_recover(&shard.q);
                    if q.len() < self.cfg.capacity {
                        q.push_back(Queued {
                            rec: rec.into_owned(),
                            slot: None,
                            attempts: 0,
                        });
                        shard.busy.fetch_add(1, Ordering::Release);
                        let depth = q.len();
                        drop(q);
                        self.note_enqueued(shard, depth);
                        self.wake_for_enqueue(depth);
                        return Verdict::Allow;
                    }
                }
                // Shard saturated: the producer degrades. Take the drain
                // lock so inline processing cannot reorder against the
                // worker's in-flight batch, empty the shard first (FIFO),
                // then process the new record directly from its borrowed
                // form — nothing is ever dropped and nothing is copied.
                self.degraded.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.is_enabled() {
                    self.metrics.degraded.inc();
                    let shard_idx = self.shard_for(rec.key) as u64;
                    self.telemetry
                        .journal_event(rec.at_nanos, rec.key.0, || JournalKind::Backpressure {
                            shard: shard_idx,
                            queued: self.cfg.capacity as u64,
                        });
                }
                let _drain = lock_recover(&shard.drain);
                self.drain_shard(engine, shard, false);
                engine.process_record(&rec)
            }
        }
    }

    /// Blocks on `slot` with the configured deadline. Each expiry checks
    /// whether the record is still sitting on the shard queue (its worker
    /// died before picking it up, or a panic requeued it): if so, the
    /// producer reclaims it and analyzes inline; if it is in a worker's
    /// batch, the batch guard guarantees the slot completes or the record
    /// returns to the queue, so waiting again always terminates.
    fn await_verdict(
        &self,
        engine: &CryptoDrop,
        shard: &ShardQueue,
        slot: &Arc<VerdictSlot>,
    ) -> Verdict {
        loop {
            if let Some(v) = slot.wait_timeout(self.cfg.sync_deadline) {
                return v;
            }
            if let Some(item) = shard.take_by_slot(slot) {
                let v = engine.process_record(&item.rec);
                shard.busy.fetch_sub(1, Ordering::Release);
                shard.processed.fetch_add(1, Ordering::Relaxed);
                self.note_sync_fallback();
                if self.telemetry.is_enabled() {
                    self.metrics.processed.inc();
                }
                return v;
            }
        }
    }

    /// Empties one shard in max-batch chunks, processing every record and
    /// completing its slot. Caller must hold the shard's drain lock.
    /// `worker` marks worker-context drains (the only ones subject to
    /// panic injection). Returns the number of records processed.
    ///
    /// Panic-safe: an unwind mid-batch (injected or real) requeues the
    /// unfinished remainder at the shard front via [`BatchGuard`].
    fn drain_shard(&self, engine: &CryptoDrop, shard: &ShardQueue, worker: bool) -> usize {
        let mut total = 0usize;
        loop {
            let batch: VecDeque<Queued> = {
                let mut q = lock_recover(&shard.q);
                let n = q.len().min(self.cfg.max_batch.max(1));
                if n == 0 {
                    break;
                }
                q.drain(..n).collect()
            };
            shard.not_full.notify_all();
            let timer = self.telemetry.start_timer();
            let batch_len = batch.len() as u64;
            let mut guard = BatchGuard {
                pipeline: self,
                shard,
                pending: batch,
            };
            while let Some(item) = guard.pending.front_mut() {
                item.attempts += 1;
                if item.attempts > MAX_PROCESS_ATTEMPTS {
                    // This record has already taken a worker down with it
                    // more than once: complete it un-analyzed rather than
                    // crash-looping the pool.
                    if let Some(item) = guard.pending.pop_front() {
                        if let Some(slot) = &item.slot {
                            slot.put(Verdict::Allow);
                        }
                        shard.busy.fetch_sub(1, Ordering::Release);
                        shard.processed.fetch_add(1, Ordering::Relaxed);
                        self.abandoned.fetch_add(1, Ordering::Relaxed);
                        if self.telemetry.is_enabled() {
                            self.metrics.processed.inc();
                            self.metrics.abandoned.inc();
                            self.telemetry.journal_event(item.rec.at_nanos, item.rec.key.0, || {
                                JournalKind::Fault {
                                    site: "pipeline.worker".to_string(),
                                    detail: "record abandoned after repeated panics".to_string(),
                                }
                            });
                        }
                        total += 1;
                    }
                    continue;
                }
                if worker {
                    if let Some(injector) = &self.injector {
                        if injector.worker_panic() {
                            // The guard requeues `pending` (this record
                            // included) and the session wrapper respawns
                            // the worker.
                            panic!("injected fault: pipeline worker panic");
                        }
                    }
                }
                let v = engine.process_record(&item.rec);
                if let Some(done) = guard.pending.pop_front() {
                    if let Some(slot) = &done.slot {
                        slot.put(v);
                    }
                }
                shard.busy.fetch_sub(1, Ordering::Release);
                shard.processed.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.is_enabled() {
                    self.metrics.processed.inc();
                }
                total += 1;
            }
            drop(guard); // empty: disarms without requeueing
            self.batches.fetch_add(1, Ordering::Relaxed);
            if self.telemetry.is_enabled() {
                self.metrics.batch_size.record(batch_len);
                self.metrics.drain_ns.record_elapsed(timer);
            }
        }
        total
    }

    /// One worker's main loop: round-robin over its owned shards, sleeping
    /// on the work signal only when every owned shard is dry. Exits after
    /// shutdown once its shards are empty (drain-first shutdown: every
    /// queued record is processed, every waiting producer released).
    ///
    /// May panic (that is the point of worker-panic injection, and a
    /// defensive posture toward real analysis bugs): callers wrap it in
    /// `catch_unwind` and re-enter after
    /// [`note_worker_restart`](Self::note_worker_restart).
    pub(crate) fn worker_loop(&self, engine: &CryptoDrop, worker_idx: usize, workers: usize) {
        let owns = |i: usize| i % workers.max(1) == worker_idx;
        // Idle backoff for the missed-wakeup safety net below: producers
        // always bump `work_seq` and notify before a worker could sleep
        // through an enqueue, so the timeout only guards against lost
        // wakeups — an idle worker doubles it up to 50ms rather than
        // re-scanning every few milliseconds and stealing timeslices
        // from producers (the `Sync` fast path keeps queues empty, so
        // idle is the steady state there).
        const IDLE_MIN: Duration = Duration::from_millis(1);
        const IDLE_MAX: Duration = Duration::from_millis(50);
        let mut idle = IDLE_MIN;
        loop {
            let seen = *lock_recover(&self.work_seq);
            let mut did = 0usize;
            for (i, shard) in self.shards.iter().enumerate() {
                if !owns(i) {
                    continue;
                }
                let _drain = lock_recover(&shard.drain);
                did += self.drain_shard(engine, shard, true);
            }
            if did > 0 {
                idle = IDLE_MIN;
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                let empty = self
                    .shards
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| owns(*i))
                    .all(|(_, s)| lock_recover(&s.q).is_empty());
                if empty {
                    break;
                }
                continue;
            }
            let g = lock_recover(&self.work_seq);
            if *g == seen {
                // Timeout is a missed-wakeup safety net only; producers
                // bump the sequence before notifying, so a signal between
                // the scan and this check is never lost. The sleeper count
                // is published while the sequence lock is still held:
                // a producer that misses it (raced the park) bumps the
                // sequence under the same lock, which this worker observes
                // on the next `seen` read.
                self.sleepers.fetch_add(1, Ordering::Release);
                let _ = self
                    .work_ready
                    .wait_timeout(g, idle)
                    .unwrap_or_else(PoisonError::into_inner);
                self.sleepers.fetch_sub(1, Ordering::Release);
                idle = (idle * 2).min(IDLE_MAX);
            }
        }
    }

    /// Blocks until every record enqueued so far has been processed. Kicks
    /// the workers on every poll: `DegradeToInline` batches its wakes, so
    /// records may be sitting in a shallow queue with every worker parked
    /// — quiesce must not wait out the idle timer.
    pub(crate) fn quiesce(&self) {
        loop {
            let settled = self.shards.iter().all(|s| {
                lock_recover(&s.q).is_empty()
                    && s.enqueued.load(Ordering::Acquire) == s.processed.load(Ordering::Acquire)
            });
            if settled {
                return;
            }
            self.signal_work();
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Initiates drain-first shutdown: workers finish their queues, then
    /// exit; later submissions process inline.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.signal_work();
        for shard in &self.shards {
            shard.not_full.notify_all();
        }
    }

    pub(crate) fn stats(&self) -> PipelineStats {
        let (mut enqueued, mut processed) = (0u64, 0u64);
        for s in &self.shards {
            enqueued += s.enqueued.load(Ordering::Relaxed);
            processed += s.processed.load(Ordering::Relaxed);
        }
        PipelineStats {
            enqueued,
            processed,
            degraded: self.degraded.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            sync_fallbacks: self.sync_fallbacks.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use std::borrow::Cow;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Once;

    use cryptodrop_vfs::{FaultPlan, FileId, ProcessId};

    use super::*;
    use crate::config::Config;
    use crate::record::RecordBody;

    /// Injected worker panics are expected here: silence the default
    /// panic-hook stderr spam for threads this module kills on purpose,
    /// delegating everything else to the previous hook.
    fn quiet_expected_panics() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let expected = std::thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with("cryptodrop-pipeline"));
                if !expected {
                    prev(info);
                }
            }));
        });
    }

    fn test_record(pid: u32, at_nanos: u64) -> OpRecord<'static> {
        OpRecord {
            key: ProcessId(pid),
            issuer: ProcessId(pid),
            process_name: Cow::Owned("chaos.exe".to_string()),
            at_nanos,
            body: RecordBody::Truncate { file: FileId(1) },
        }
    }

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            shards: 1,
            capacity: 8,
            workers: 1,
            max_batch: 4,
            sync_deadline: Duration::from_millis(10),
            backpressure: Backpressure::Sync,
        }
    }

    fn test_engine() -> CryptoDrop {
        let (engine, _monitor) =
            CryptoDrop::with_telemetry_inner(Config::protecting("/docs"), Telemetry::disabled());
        engine
    }

    /// Regression (satellite 1): a `Sync` producer used to block forever
    /// on `ready.wait` when the worker that owned its record died. The
    /// deadline fallback must reclaim the record and return.
    #[test]
    fn sync_producer_survives_worker_death_mid_batch() {
        quiet_expected_panics();
        let engine = test_engine();
        // The worker panics on the very first record it picks up — and
        // there is no respawn wrapper here, so the worker stays dead.
        let plan = FaultPlan::seeded(7).worker_panic_at(0);
        let shared = Arc::new(PipelineShared::new(
            small_config(),
            Telemetry::disabled(),
            Some(FaultInjector::new(plan)),
        ));
        let worker_engine = engine.detached_fork();
        let pipe = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("cryptodrop-pipeline-test".to_string())
            .spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| pipe.worker_loop(&worker_engine, 0, 1)));
            })
            .unwrap();

        // Occupy the shard first: an idle shard would let the waiting
        // submit below fast-path inline without ever touching the worker.
        // This record wakes the worker, which panics on it (requeueing it
        // under the batch guard) and stays dead — so the shard is
        // non-empty and the next submit must take the queue path.
        assert_eq!(shared.submit(&engine, test_record(3, 0), false), Verdict::Allow);

        // Must return despite the dead worker (used to hang forever).
        let v = shared.submit(&engine, test_record(3, 1), true);
        assert_eq!(v, Verdict::Allow);
        let stats = shared.stats();
        assert!(
            stats.sync_fallbacks >= 1,
            "producer must have reclaimed its record: {stats:?}"
        );

        // The first record is still queued (the dead worker requeued it on
        // unwind, and `take_by_slot` only reclaims the producer's own
        // record). Settle it with a producer-context drain, then the
        // shard's books must balance.
        {
            let shard = &shared.shards[0];
            let _drain = lock_recover(&shard.drain);
            shared.drain_shard(&engine, shard, false);
        }
        let stats = shared.stats();
        assert_eq!(stats.enqueued, stats.processed);

        shared.begin_shutdown();
        worker.join().unwrap();
    }

    /// The batch guard requeues an interrupted batch at the shard front:
    /// nothing is lost and FIFO order holds for the records behind it.
    #[test]
    fn panicking_drain_requeues_pending_records_in_order() {
        quiet_expected_panics();
        let engine = test_engine();
        let plan = FaultPlan::seeded(1).worker_panic_at(0);
        let shared = PipelineShared::new(
            small_config(),
            Telemetry::disabled(),
            Some(FaultInjector::new(plan)),
        );
        for i in 0..3 {
            // wait=false so submission does not block on a slot.
            assert_eq!(shared.submit(&engine, test_record(5, i), false), Verdict::Allow);
        }
        let shard = &shared.shards[0];
        {
            let _drain = lock_recover(&shard.drain);
            let result = catch_unwind(AssertUnwindSafe(|| {
                // Worker context: injection fires on the first record.
                shared.drain_shard(&engine, shard, true)
            }));
            assert!(result.is_err(), "injected panic must unwind");
        }
        let q = lock_recover(&shard.q);
        assert_eq!(q.len(), 3, "entire batch requeued, nothing lost");
        let at: Vec<u64> = q.iter().map(|i| i.rec.at_nanos).collect();
        assert_eq!(at, [0, 1, 2], "FIFO order preserved across the requeue");
        assert_eq!(q[0].attempts, 1, "interrupted record keeps its attempt count");
        drop(q);
        // A second (non-worker) drain is not subject to injection and
        // completes the whole batch.
        let _drain = lock_recover(&shard.drain);
        assert_eq!(shared.drain_shard(&engine, shard, false), 3);
        assert_eq!(shared.stats().processed, 3);
    }

    /// A record that panics its worker on every attempt is completed with
    /// `Allow` after `MAX_PROCESS_ATTEMPTS`, not retried forever.
    #[test]
    fn poison_pill_record_is_abandoned_after_retries() {
        quiet_expected_panics();
        let engine = test_engine();
        // Panic on every worker decision: the record can never process.
        let plan = FaultPlan::seeded(2).worker_panic_probability(1.0);
        let shared = PipelineShared::new(
            small_config(),
            Telemetry::disabled(),
            Some(FaultInjector::new(plan)),
        );
        assert_eq!(shared.submit(&engine, test_record(9, 0), false), Verdict::Allow);
        let shard = &shared.shards[0];
        let mut panics = 0;
        // MAX_PROCESS_ATTEMPTS panicking drains, then one that abandons.
        for _ in 0..=MAX_PROCESS_ATTEMPTS {
            let _drain = lock_recover(&shard.drain);
            if catch_unwind(AssertUnwindSafe(|| shared.drain_shard(&engine, shard, true))).is_err()
            {
                panics += 1;
            }
        }
        assert_eq!(panics, MAX_PROCESS_ATTEMPTS);
        let stats = shared.stats();
        assert_eq!(stats.abandoned, 1, "poison pill completed un-analyzed");
        assert_eq!(stats.processed, 1);
        assert!(lock_recover(&shard.q).is_empty());
    }

    /// Poisoned pipeline locks must not cascade into producers.
    #[test]
    fn poisoned_shard_lock_recovers() {
        quiet_expected_panics();
        let shared = Arc::new(PipelineShared::new(
            small_config(),
            Telemetry::disabled(),
            None,
        ));
        let poisoner = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cryptodrop-pipeline-poison".to_string())
            .spawn(move || {
                let _g = poisoner.shards[0].q.lock().unwrap();
                panic!("poison the shard lock");
            })
            .unwrap()
            .join()
            .unwrap_err();
        assert!(shared.shards[0].q.is_poisoned());
        // Submission still works end to end through the recovered guard.
        let engine = test_engine();
        let v = shared.submit(&engine, test_record(4, 0), false);
        assert_eq!(v, Verdict::Allow);
        assert_eq!(shared.stats().enqueued, 1);
    }
}
