//! The asynchronous batched analysis pipeline (ROADMAP: "sharding,
//! batching, async").
//!
//! Interposition callbacks stay on the verdict-critical fast path (family
//! gate, scope checks, content capture) and hand the heavy indicator work
//! — sniff, sdhash, entropy, score awards — to this pipeline as
//! [`OpRecord`](crate::record::OpRecord)s. Records are distributed over
//! bounded per-shard FIFO queues keyed by process family (matching the
//! engine's lock shards), so one family's records are always processed in
//! order while unrelated families flow in parallel. A worker pool drains
//! per-shard batches and publishes results back through the engine's
//! sharded state, keeping `Monitor` reads lock-cheap.
//!
//! Backpressure on a full shard queue is explicit policy, not an accident
//! — see [`Backpressure`]. Queue depth, batch size, drain latency, and
//! degradation events are exported through the telemetry registry
//! (`pipeline.*` metrics) and mirrored in the always-on
//! [`PipelineStats`] counters.
//!
//! The pipeline's blocking primitives are `std::sync` mutexes and condvars
//! (the vendored `parking_lot` stand-in has no condvar).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cryptodrop_telemetry::{Counter, Gauge, Histogram, JournalKind, Telemetry};
use cryptodrop_vfs::Verdict;

use crate::engine::CryptoDrop;
use crate::record::OpRecord;

/// What happens when a record arrives at a full shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the producer until the worker makes room, and wait for each
    /// post-operation record's verdict before returning it to the VFS.
    /// Verdict-equivalent to the inline engine: every operation sees
    /// exactly the verdict the analysis produces, at the same point in
    /// the operation stream. The default.
    #[default]
    Sync,
    /// Never block and never drop: post-operation submissions return
    /// `Allow` immediately (a crossing lands on the family's next
    /// operation via the inline family gate), and a full shard queue makes
    /// the *producer* drain it and process its own record inline —
    /// graceful degradation under sustained overload, counted in
    /// [`PipelineStats::degraded`] and journaled when telemetry is on.
    DegradeToInline,
}

/// Sizing and policy for the analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of queue shards. Records shard by process family, so this
    /// bounds cross-family processing parallelism. Default 8.
    pub shards: usize,
    /// Bound on each shard queue, in records. Default 256.
    pub capacity: usize,
    /// Worker threads draining the shards (shard `s` belongs to worker
    /// `s % workers`). Default 2.
    pub workers: usize,
    /// Most records a worker takes from one shard per drain. Default 32.
    pub max_batch: usize,
    /// Full-queue policy. Default [`Backpressure::Sync`].
    pub backpressure: Backpressure,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            capacity: 256,
            workers: 2,
            max_batch: 32,
            backpressure: Backpressure::Sync,
        }
    }
}

/// Point-in-time pipeline counters, available whether or not telemetry is
/// enabled. Read via [`Session::pipeline_stats`](crate::Session::pipeline_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Records accepted onto a shard queue.
    pub enqueued: u64,
    /// Queued records whose analysis completed (excludes records processed
    /// inline through degradation, which never enter a queue).
    pub processed: u64,
    /// Full-queue degradations: submissions that drained the shard and ran
    /// inline under [`Backpressure::DegradeToInline`].
    pub degraded: u64,
    /// Batches drained (by workers or by degrading producers).
    pub batches: u64,
}

/// A record in flight, with the completion slot the `Sync`-mode producer
/// is blocked on (`None` under `DegradeToInline`).
struct Queued {
    rec: OpRecord<'static>,
    slot: Option<Arc<VerdictSlot>>,
}

/// One-shot verdict hand-off from the worker to a waiting producer.
#[derive(Default)]
struct VerdictSlot {
    verdict: Mutex<Option<Verdict>>,
    ready: Condvar,
}

impl VerdictSlot {
    fn put(&self, v: Verdict) {
        let mut g = self.verdict.lock().expect("verdict slot poisoned");
        *g = Some(v);
        self.ready.notify_all();
    }

    fn wait(&self) -> Verdict {
        let mut g = self.verdict.lock().expect("verdict slot poisoned");
        loop {
            match g.take() {
                Some(v) => return v,
                None => g = self.ready.wait(g).expect("verdict slot poisoned"),
            }
        }
    }
}

/// One bounded FIFO shard.
struct ShardQueue {
    q: Mutex<VecDeque<Queued>>,
    /// Signalled when the worker makes room (Sync producers wait here).
    not_full: Condvar,
    /// Held across batch processing, by the worker or by a degrading
    /// producer — guarantees a shard's records are never reordered even
    /// when a producer drains it.
    drain: Mutex<()>,
    enqueued: AtomicU64,
    processed: AtomicU64,
}

impl ShardQueue {
    fn new() -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            not_full: Condvar::new(),
            drain: Mutex::new(()),
            enqueued: AtomicU64::new(0),
            processed: AtomicU64::new(0),
        }
    }
}

/// Telemetry handles resolved once at pipeline construction.
struct PipelineMetrics {
    enqueued: Counter,
    processed: Counter,
    degraded: Counter,
    depth: Gauge,
    batch_size: Histogram,
    drain_ns: Histogram,
}

impl PipelineMetrics {
    fn new(t: &Telemetry) -> Self {
        Self {
            enqueued: t.counter("pipeline.enqueued"),
            processed: t.counter("pipeline.processed"),
            degraded: t.counter("pipeline.degraded"),
            depth: t.gauge("pipeline.queue.depth"),
            batch_size: t.histogram("pipeline.batch.size"),
            drain_ns: t.histogram("pipeline.drain.ns"),
        }
    }
}

/// The pipeline state shared by producers (filter forks), workers, and the
/// owning [`Session`](crate::Session).
pub(crate) struct PipelineShared {
    cfg: PipelineConfig,
    shards: Vec<ShardQueue>,
    shutdown: AtomicBool,
    /// Work-available sequence + condvar: producers bump it after every
    /// enqueue; workers re-scan instead of sleeping whenever it moved.
    work_seq: Mutex<u64>,
    work_ready: Condvar,
    degraded: AtomicU64,
    batches: AtomicU64,
    metrics: PipelineMetrics,
    telemetry: Telemetry,
}

impl PipelineShared {
    pub(crate) fn new(cfg: PipelineConfig, telemetry: Telemetry) -> Self {
        let metrics = PipelineMetrics::new(&telemetry);
        Self {
            shards: (0..cfg.shards.max(1)).map(|_| ShardQueue::new()).collect(),
            cfg,
            shutdown: AtomicBool::new(false),
            work_seq: Mutex::new(0),
            work_ready: Condvar::new(),
            degraded: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            metrics,
            telemetry,
        }
    }

    pub(crate) fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Same Fibonacci spread as the engine's lock shards, folded onto the
    /// queue shard count — one family always lands on one queue.
    fn shard_for(&self, key: cryptodrop_vfs::ProcessId) -> usize {
        (u64::from(key.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    fn signal_work(&self) {
        let mut g = self.work_seq.lock().expect("work signal poisoned");
        *g = g.wrapping_add(1);
        drop(g);
        self.work_ready.notify_all();
    }

    fn note_enqueued(&self, shard: &ShardQueue, depth: usize) {
        shard.enqueued.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.metrics.enqueued.inc();
            self.metrics.depth.set(depth as i64);
        }
    }

    /// Submits one record. `wait` requests per-record completion waiting,
    /// honoured only under `Backpressure::Sync` (whose contract is
    /// byte-identical behavior to the inline engine);
    /// `DegradeToInline` ignores it and never blocks.
    pub(crate) fn submit(&self, engine: &CryptoDrop, rec: OpRecord<'_>, wait: bool) -> Verdict {
        if self.shutdown.load(Ordering::Acquire) {
            // The owning Session is gone: degrade to inline processing.
            return engine.process_record(&rec);
        }
        let shard = &self.shards[self.shard_for(rec.key)];
        match self.cfg.backpressure {
            Backpressure::Sync => {
                let mut q = shard.q.lock().expect("shard queue poisoned");
                while q.len() >= self.cfg.capacity {
                    if self.shutdown.load(Ordering::Acquire) {
                        drop(q);
                        return engine.process_record(&rec);
                    }
                    q = shard.not_full.wait(q).expect("shard queue poisoned");
                }
                let slot = if wait {
                    Some(Arc::new(VerdictSlot::default()))
                } else {
                    None
                };
                q.push_back(Queued {
                    rec: rec.into_owned(),
                    slot: slot.clone(),
                });
                let depth = q.len();
                drop(q);
                self.note_enqueued(shard, depth);
                self.signal_work();
                match slot {
                    Some(slot) => slot.wait(),
                    None => Verdict::Allow,
                }
            }
            Backpressure::DegradeToInline => {
                {
                    let mut q = shard.q.lock().expect("shard queue poisoned");
                    if q.len() < self.cfg.capacity {
                        q.push_back(Queued {
                            rec: rec.into_owned(),
                            slot: None,
                        });
                        let depth = q.len();
                        drop(q);
                        self.note_enqueued(shard, depth);
                        self.signal_work();
                        return Verdict::Allow;
                    }
                }
                // Shard saturated: the producer degrades. Take the drain
                // lock so inline processing cannot reorder against the
                // worker's in-flight batch, empty the shard first (FIFO),
                // then process the new record directly from its borrowed
                // form — nothing is ever dropped and nothing is copied.
                self.degraded.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.is_enabled() {
                    self.metrics.degraded.inc();
                    let shard_idx = self.shard_for(rec.key) as u64;
                    self.telemetry
                        .journal_event(rec.at_nanos, rec.key.0, || JournalKind::Backpressure {
                            shard: shard_idx,
                            queued: self.cfg.capacity as u64,
                        });
                }
                let _drain = shard.drain.lock().expect("drain lock poisoned");
                self.drain_shard(engine, shard);
                engine.process_record(&rec)
            }
        }
    }

    /// Empties one shard in max-batch chunks, processing every record and
    /// completing its slot. Caller must hold the shard's drain lock.
    /// Returns the number of records processed.
    fn drain_shard(&self, engine: &CryptoDrop, shard: &ShardQueue) -> usize {
        let mut total = 0usize;
        loop {
            let batch: Vec<Queued> = {
                let mut q = shard.q.lock().expect("shard queue poisoned");
                let n = q.len().min(self.cfg.max_batch.max(1));
                if n == 0 {
                    break;
                }
                q.drain(..n).collect()
            };
            shard.not_full.notify_all();
            let timer = self.telemetry.start_timer();
            for item in &batch {
                let v = engine.process_record(&item.rec);
                if let Some(slot) = &item.slot {
                    slot.put(v);
                }
            }
            let n = batch.len() as u64;
            shard.processed.fetch_add(n, Ordering::Relaxed);
            self.batches.fetch_add(1, Ordering::Relaxed);
            if self.telemetry.is_enabled() {
                self.metrics.processed.add(n);
                self.metrics.batch_size.record(n);
                self.metrics.drain_ns.record_elapsed(timer);
            }
            total += n as usize;
        }
        total
    }

    /// One worker's main loop: round-robin over its owned shards, sleeping
    /// on the work signal only when every owned shard is dry. Exits after
    /// shutdown once its shards are empty (drain-first shutdown: every
    /// queued record is processed, every waiting producer released).
    pub(crate) fn worker_loop(&self, engine: &CryptoDrop, worker_idx: usize, workers: usize) {
        let owns = |i: usize| i % workers.max(1) == worker_idx;
        loop {
            let seen = *self.work_seq.lock().expect("work signal poisoned");
            let mut did = 0usize;
            for (i, shard) in self.shards.iter().enumerate() {
                if !owns(i) {
                    continue;
                }
                let _drain = shard.drain.lock().expect("drain lock poisoned");
                did += self.drain_shard(engine, shard);
            }
            if did > 0 {
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                let empty = self
                    .shards
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| owns(*i))
                    .all(|(_, s)| s.q.lock().expect("shard queue poisoned").is_empty());
                if empty {
                    break;
                }
                continue;
            }
            let g = self.work_seq.lock().expect("work signal poisoned");
            if *g == seen {
                // Timeout is a missed-wakeup safety net only; producers
                // bump the sequence before notifying, so a signal between
                // the scan and this check is never lost.
                let _ = self
                    .work_ready
                    .wait_timeout(g, Duration::from_millis(5))
                    .expect("work signal poisoned");
            }
        }
    }

    /// Blocks until every record enqueued so far has been processed.
    pub(crate) fn quiesce(&self) {
        loop {
            let settled = self.shards.iter().all(|s| {
                s.q.lock().expect("shard queue poisoned").is_empty()
                    && s.enqueued.load(Ordering::Acquire) == s.processed.load(Ordering::Acquire)
            });
            if settled {
                return;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Initiates drain-first shutdown: workers finish their queues, then
    /// exit; later submissions process inline.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.signal_work();
        for shard in &self.shards {
            shard.not_full.notify_all();
        }
    }

    pub(crate) fn stats(&self) -> PipelineStats {
        let (mut enqueued, mut processed) = (0u64, 0u64);
        for s in &self.shards {
            enqueued += s.enqueued.load(Ordering::Relaxed);
            processed += s.processed.load(Ordering::Relaxed);
        }
        PipelineStats {
            enqueued,
            processed,
            degraded: self.degraded.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }
}
