//! Deferred analysis records.
//!
//! The engine's filter callbacks are split into a **verdict-critical fast
//! path** (family permitted/detected gate, scope checks, enqueue-side
//! bookkeeping) and the **analysis body** (sniff, sdhash, entropy, score
//! awards). An [`OpRecord`] is the hand-off between the two: the fast path
//! builds one per in-scope operation, capturing everything the analysis
//! needs — including file *content* at operation time, so the analysis is
//! a pure function of the record stream and never touches the filesystem.
//!
//! In inline execution the record borrows from the callback arguments and
//! is processed immediately (zero copies). The pipelined executor calls
//! [`OpRecord::into_owned`] and ships the record through a bounded shard
//! queue to a worker thread instead.

use std::borrow::Cow;

use cryptodrop_vfs::{DirtyReport, FileId, ProcessId, VPath};

/// One unit of deferred analysis work: the operation's identity plus every
/// input the indicator evaluation needs, captured at operation time.
#[derive(Debug, Clone)]
pub(crate) struct OpRecord<'a> {
    /// The scoring key: the family root when
    /// [`Config::aggregate_process_families`](crate::Config::aggregate_process_families)
    /// is on, otherwise the issuing pid. Also selects the pipeline shard,
    /// so one family's records are always processed in order.
    pub key: ProcessId,
    /// The issuing pid. Rename replacements are scored against the issuer
    /// (matching the pre-shard engine), which can differ from `key`.
    pub issuer: ProcessId,
    /// The issuing process's executable name.
    pub process_name: Cow<'a, str>,
    /// Simulated timestamp of the operation.
    pub at_nanos: u64,
    /// The operation-specific payload.
    pub body: RecordBody<'a>,
}

/// The operation-specific payload of an [`OpRecord`].
#[derive(Debug, Clone)]
pub(crate) enum RecordBody<'a> {
    /// Pre-operation snapshot refresh of a path about to be overwritten,
    /// deleted, or replaced. `data` is the content *before* the operation.
    Refresh {
        /// The path to refresh.
        path: Cow<'a, VPath>,
        /// The path's content at pre-operation time (never empty).
        data: Cow<'a, [u8]>,
        /// The content's [stamp](cryptodrop_vfs::content_stamp) (`0` =
        /// unknown): lets the refresh skip even the fingerprint pass when
        /// the resident snapshot already carries this stamp.
        stamp: u64,
    },
    /// An in-scope file was opened: propagate its path-keyed snapshot to
    /// the open file id.
    Open {
        /// The opened path.
        path: Cow<'a, VPath>,
        /// The opened file's id.
        file: FileId,
    },
    /// Data was read from an in-scope file.
    Read {
        /// The file's path.
        path: Cow<'a, VPath>,
        /// The file's id.
        file: FileId,
        /// Byte offset of the read.
        offset: u64,
        /// The bytes actually read.
        data: Cow<'a, [u8]>,
        /// The file content's [stamp](cryptodrop_vfs::content_stamp),
        /// nonzero **only** when `data` is the file's entire content at
        /// operation time — the proof that lets analysis reuse a
        /// stamp-matching snapshot's entropy instead of recomputing.
        stamp: u64,
    },
    /// Data was written to an in-scope file.
    Write {
        /// The file's path.
        path: Cow<'a, VPath>,
        /// The file's id.
        file: FileId,
        /// The bytes written.
        data: Cow<'a, [u8]>,
        /// The post-write content's
        /// [stamp](cryptodrop_vfs::content_stamp), nonzero **only** when
        /// `data` is the file's entire content after the write (see
        /// [`RecordBody::Read::stamp`]).
        stamp: u64,
    },
    /// An in-scope file was truncated or extended.
    Truncate {
        /// The file's id.
        file: FileId,
    },
    /// A modified in-scope handle was closed: run the content indicators
    /// against the pre-image snapshot and refresh both snapshot indices.
    Close {
        /// The file's path.
        path: Cow<'a, VPath>,
        /// The file's id.
        file: FileId,
        /// The file's content at close time.
        current: Cow<'a, [u8]>,
        /// The content's [stamp](cryptodrop_vfs::content_stamp) at close
        /// time (`0` = unknown).
        stamp: u64,
        /// The closing handle's dirty-extent report, when the VFS tracked
        /// one (writable handles).
        dirty: Option<Cow<'a, DirtyReport>>,
    },
    /// A protected file was deleted.
    Delete {
        /// The deleted path.
        path: Cow<'a, VPath>,
        /// The deleted file's id.
        file: FileId,
    },
    /// A file was renamed with at least one side in scope. Tracked-set
    /// bookkeeping already happened on the fast path; `was_tracked` and
    /// the captured destination content carry its outcome.
    Rename {
        /// Source path.
        from: Cow<'a, VPath>,
        /// Destination path.
        to: Cow<'a, VPath>,
        /// The moved file's id.
        file: FileId,
        /// The id of a replaced destination file, if any.
        replaced: Option<FileId>,
        /// Whether the destination lies in a protected directory.
        to_protected: bool,
        /// The destination's content after the move, captured when a
        /// protected destination was replaced (the Class C link input).
        dest_current: Option<Vec<u8>>,
    },
}

impl OpRecord<'_> {
    /// Detaches the record from its borrowed callback arguments so it can
    /// cross the queue to a worker thread.
    pub(crate) fn into_owned(self) -> OpRecord<'static> {
        fn own_path(p: Cow<'_, VPath>) -> Cow<'static, VPath> {
            Cow::Owned(p.into_owned())
        }
        fn own_bytes(b: Cow<'_, [u8]>) -> Cow<'static, [u8]> {
            Cow::Owned(b.into_owned())
        }
        OpRecord {
            key: self.key,
            issuer: self.issuer,
            process_name: Cow::Owned(self.process_name.into_owned()),
            at_nanos: self.at_nanos,
            body: match self.body {
                RecordBody::Refresh { path, data, stamp } => RecordBody::Refresh {
                    path: own_path(path),
                    data: own_bytes(data),
                    stamp,
                },
                RecordBody::Open { path, file } => RecordBody::Open {
                    path: own_path(path),
                    file,
                },
                RecordBody::Read {
                    path,
                    file,
                    offset,
                    data,
                    stamp,
                } => RecordBody::Read {
                    path: own_path(path),
                    file,
                    offset,
                    data: own_bytes(data),
                    stamp,
                },
                RecordBody::Write { path, file, data, stamp } => RecordBody::Write {
                    path: own_path(path),
                    file,
                    data: own_bytes(data),
                    stamp,
                },
                RecordBody::Truncate { file } => RecordBody::Truncate { file },
                RecordBody::Close {
                    path,
                    file,
                    current,
                    stamp,
                    dirty,
                } => RecordBody::Close {
                    path: own_path(path),
                    file,
                    current: own_bytes(current),
                    stamp,
                    dirty: dirty.map(|d| Cow::Owned(d.into_owned())),
                },
                RecordBody::Delete { path, file } => RecordBody::Delete {
                    path: own_path(path),
                    file,
                },
                RecordBody::Rename {
                    from,
                    to,
                    file,
                    replaced,
                    to_protected,
                    dest_current,
                } => RecordBody::Rename {
                    from: own_path(from),
                    to: own_path(to),
                    file,
                    replaced,
                    to_protected,
                    dest_current,
                },
            },
        }
    }
}
