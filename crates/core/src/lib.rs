//! # CryptoDrop — early-warning ransomware detection on user data
//!
//! A reproduction of *"CryptoLock (and Drop It): Stopping Ransomware
//! Attacks on User Data"* (Scaife, Carter, Traynor, Butler — ICDCS 2016).
//!
//! CryptoDrop is "the first ransomware detection system that monitors user
//! data for changes that may indicate transformation rather than attempting
//! to identify ransomware by inspecting its execution". It interposes on
//! filesystem operations against the user's protected documents and scores
//! each process on a set of behaviour indicators:
//!
//! * **Primary indicators** (§III): [file type
//!   changes](indicators::type_change), [similarity
//!   collapse](indicators::similarity), and [write-over-read entropy
//!   deltas](indicators::entropy_delta).
//! * **Secondary indicators** (§III-D): [bulk deletion](indicators::deletion)
//!   and [file-type funneling](indicators::funneling).
//! * **Union indication** (§III-E): a process that trips all three primary
//!   indicators gets a score bonus and a lowered threshold — in the paper's
//!   evaluation no benign program ever tripped all three, while 93% of
//!   ransomware samples did.
//!
//! When a process's reputation score crosses its effective threshold, the
//! engine suspends it ("drops it"), bounding the victim's data loss — a
//! median of 10 of 5,099 files across the paper's 492 live samples.
//!
//! ## Quick start
//!
//! ```
//! use cryptodrop::CryptoDrop;
//! use cryptodrop_vfs::{OpenOptions, Vfs, VPath};
//!
//! // A filesystem with protected user documents.
//! let mut fs = Vfs::new();
//! let docs = VPath::new("/Users/victim/Documents");
//! for i in 0..50 {
//!     let body: Vec<u8> = (0..150u32)
//!         .flat_map(|l| format!("file {i} line {l}: quarterly figures\n").into_bytes())
//!         .collect();
//!     fs.admin().write_file(&docs.join(format!("report-{i}.txt")), &body).unwrap();
//! }
//!
//! // Arm CryptoDrop: build a validated Session, register a fork.
//! let session = CryptoDrop::builder()
//!     .protecting(docs.as_str())
//!     .build()
//!     .expect("valid config");
//! fs.register_filter(Box::new(session.fork()));
//!
//! // A ransomware-like process encrypts documents in place...
//! let pid = fs.spawn_process("cryptolocker.exe");
//! for i in 0..50 {
//!     let path = docs.join(format!("report-{i}.txt"));
//!     let Ok(h) = fs.open(pid, &path, OpenOptions::modify()) else { break };
//!     let Ok(data) = fs.read_to_end(pid, h) else { break };
//!     let ct: Vec<u8> = data
//!         .iter()
//!         .enumerate()
//!         .map(|(j, b)| b ^ (j as u8).wrapping_mul(197).wrapping_add(91))
//!         .collect();
//!     if fs.seek(pid, h, 0).is_err() || fs.write(pid, h, &ct).is_err() {
//!         let _ = fs.close(pid, h);
//!         break;
//!     }
//!     if fs.close(pid, h).is_err() {
//!         break;
//!     }
//! }
//!
//! // ...and is suspended after losing only a handful of files.
//! let report = session.detections().pop().expect("detected");
//! assert!(report.files_lost < 15);
//! assert!(fs.is_suspended(pid));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod baseline;
pub mod config;
pub mod engine;
pub mod indicators;
pub mod pipeline;
mod record;
pub mod session;
pub mod state;

pub use audit::{AuditEntry, AuditTrail};
pub use baseline::{
    BaselineAlert, EntropyOnlyDetector, EntropyOnlyHandle, IntegrityHandle, IntegrityMonitor,
};
pub use config::{Config, DecayPolicy, ScoreConfig};
pub use cryptodrop_recovery::{
    RecoveryAction, RecoveryConflict, RecoveryPlan, RecoveryReport, ShadowConfig, ShadowStats,
    ShadowStore,
};
pub use cryptodrop_telemetry::Telemetry;
pub use engine::{CacheStats, CryptoDrop, DetectionReport, Monitor};
pub use indicators::{Indicator, IndicatorHit};
pub use pipeline::{Backpressure, PipelineConfig, PipelineStats};
pub use session::{ConfigError, Session, SessionBuilder};
pub use state::{FileSnapshot, ProcessState, ProcessSummary};

/// Everything a typical embedding needs, in one import:
/// `use cryptodrop::prelude::*;`.
pub mod prelude {
    pub use crate::config::{Config, DecayPolicy, ScoreConfig};
    pub use crate::engine::{CryptoDrop, DetectionReport, Monitor};
    pub use crate::pipeline::{Backpressure, PipelineConfig, PipelineStats};
    pub use crate::session::{ConfigError, Session, SessionBuilder};
    pub use cryptodrop_recovery::{RecoveryReport, ShadowConfig, ShadowStore};
    pub use cryptodrop_telemetry::Telemetry;
    pub use cryptodrop_vfs::{
        ErrorKind, FsProvider, MemProvider, MountOptions, ProcessId, VPath, Verdict, Vfs,
        VfsError, VfsResult,
    };
}
