//! Primary indicator 1: file type changes (paper §III-A).
//!
//! "Since files generally retain their file type and formatting over the
//! course of their existence, bulk modification of such data should be
//! considered suspicious." The indicator compares the magic-number type
//! of a file before and after it is written.

use cryptodrop_sniff::FileType;

/// The outcome of a before/after type comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeChangeOutcome {
    /// The type is unchanged — no suspicion.
    Unchanged(FileType),
    /// The type changed. A single change "does not automatically imply
    /// malicious actions" (a format upgrade, §III-A), so this contributes
    /// points rather than an immediate verdict.
    Changed {
        /// Type before the modification.
        before: FileType,
        /// Type after the modification.
        after: FileType,
    },
}

impl TypeChangeOutcome {
    /// Returns `true` when the indicator fired.
    pub fn fired(&self) -> bool {
        matches!(self, TypeChangeOutcome::Changed { .. })
    }
}

/// Compares the sniffed types of a file before and after modification.
///
/// Transitions *to* [`FileType::Empty`] are not flagged: truncation to
/// zero length is routine (editors truncate before rewriting), and the
/// rewrite that follows is evaluated on its own.
pub fn evaluate(before: FileType, after: FileType) -> TypeChangeOutcome {
    if before == after || after == FileType::Empty {
        TypeChangeOutcome::Unchanged(after)
    } else {
        TypeChangeOutcome::Changed { before, after }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchanged_types_do_not_fire() {
        assert!(!evaluate(FileType::Pdf, FileType::Pdf).fired());
        assert!(!evaluate(FileType::Docx, FileType::Docx).fired());
        assert!(!evaluate(FileType::Data, FileType::Data).fired());
    }

    #[test]
    fn encryption_transition_fires() {
        // The signature ransomware transition: structured -> data.
        let out = evaluate(FileType::Pdf, FileType::Data);
        assert!(out.fired());
        assert_eq!(
            out,
            TypeChangeOutcome::Changed {
                before: FileType::Pdf,
                after: FileType::Data
            }
        );
    }

    #[test]
    fn format_upgrade_also_fires_once() {
        // A benign format change (§III-A's software-upgrade example) fires
        // too — that is why a single change only contributes points.
        assert!(evaluate(FileType::OleCompound, FileType::Docx).fired());
    }

    #[test]
    fn truncation_to_empty_is_tolerated() {
        assert!(!evaluate(FileType::Docx, FileType::Empty).fired());
    }

    #[test]
    fn growth_from_empty_fires() {
        // An empty file gaining unrecognizable content is a change; new
        // files never get a snapshot, so this only applies to pre-existing
        // zero-length files, which are rare and quickly outweighed.
        assert!(evaluate(FileType::Empty, FileType::Data).fired());
    }
}
