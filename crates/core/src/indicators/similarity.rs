//! Primary indicator 2: similarity measurement (paper §III-B).
//!
//! "Given the similarity hash of the previous version of a file, a
//! comparison with the hash of the encrypted version of that file should
//! yield no match, since the ciphertext should be indistinguishable from
//! random data."
//!
//! The indicator abstains — contributes nothing either way — when sdhash
//! cannot characterize one of the versions:
//!
//! * inputs under 512 bytes produce no digest (the §V-C small-file gap
//!   that let CTB-Locker encrypt 26 tiny files before union detection);
//! * featureless inputs (constant bytes) produce no digest;
//! * a pre-image that is itself near-ciphertext entropy (compressed
//!   formats like `.docx`) makes the comparison uninformative — two
//!   high-entropy blobs always score ~0, so a 0 would penalize benign
//!   rewrites of compressed documents (this is why the paper's
//!   ImageMagick/Excel runs do not accumulate similarity points).

use cryptodrop_simhash::SdDigest;

/// The outcome of a similarity comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityOutcome {
    /// The new content is dissimilar from the pre-image — the ransomware
    /// signature. Carries the 0–100 sdhash score.
    Dissimilar(u32),
    /// The new content still resembles the pre-image (an ordinary edit).
    Similar(u32),
    /// The comparison is uninformative and the indicator abstains.
    Abstain(AbstainReason),
}

/// Why the similarity indicator abstained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstainReason {
    /// No digest of the pre-image (too small or featureless).
    NoPreImageDigest,
    /// No digest of the new content (too small or featureless).
    NoPostImageDigest,
    /// The pre-image is itself near-random (already-compressed format).
    HighEntropySource,
}

impl SimilarityOutcome {
    /// Returns `true` when the indicator fired (dissimilarity detected).
    pub fn fired(&self) -> bool {
        matches!(self, SimilarityOutcome::Dissimilar(_))
    }
}

/// What [`evaluate_full`] learned about the post-image's digest, so a
/// caller that also needs that digest (the engine's close-time snapshot
/// refresh digests exactly the same window) can reuse it instead of
/// recomputing sdhash over the content a second time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PostImageDigest {
    /// Evaluation abstained before reaching the post-image; nothing is
    /// known about its digest.
    NotComputed,
    /// The post-image was digested: `Some(d)` carries the digest,
    /// `None` records that the content is undigestible (also a reusable
    /// fact — the recompute would return `None` again).
    Computed(Option<SdDigest>),
}

impl PostImageDigest {
    /// Converts into the reuse argument for
    /// [`FileSnapshot::capture_reusing`](crate::state::FileSnapshot::capture_reusing):
    /// `Some(..)` when the digest outcome is known, `None` when it must
    /// be computed fresh.
    pub fn into_reusable(self) -> Option<Option<SdDigest>> {
        match self {
            PostImageDigest::NotComputed => None,
            PostImageDigest::Computed(d) => Some(d),
        }
    }
}

/// Compares a snapshot digest against new content.
///
/// * `pre_digest` — the pre-image's sdhash digest, if one existed.
/// * `pre_entropy` — the pre-image's whole-file Shannon entropy.
/// * `post` — the file's new content.
/// * `match_max` — scores at or below this count as dissimilar.
/// * `max_source_entropy` — abstain above this pre-image entropy.
pub fn evaluate(
    pre_digest: Option<&SdDigest>,
    pre_entropy: f64,
    post: &[u8],
    match_max: u32,
    max_source_entropy: f64,
) -> SimilarityOutcome {
    evaluate_full(pre_digest, pre_entropy, post, match_max, max_source_entropy).0
}

/// [`evaluate`], additionally returning the post-image digest when the
/// evaluation computed one (see [`PostImageDigest`]).
pub fn evaluate_full(
    pre_digest: Option<&SdDigest>,
    pre_entropy: f64,
    post: &[u8],
    match_max: u32,
    max_source_entropy: f64,
) -> (SimilarityOutcome, PostImageDigest) {
    let Some(pre) = pre_digest else {
        return (
            SimilarityOutcome::Abstain(AbstainReason::NoPreImageDigest),
            PostImageDigest::NotComputed,
        );
    };
    if pre_entropy > max_source_entropy {
        return (
            SimilarityOutcome::Abstain(AbstainReason::HighEntropySource),
            PostImageDigest::NotComputed,
        );
    }
    let Some(post_digest) = SdDigest::compute(post) else {
        return (
            SimilarityOutcome::Abstain(AbstainReason::NoPostImageDigest),
            PostImageDigest::Computed(None),
        );
    };
    let score = pre.similarity(&post_digest);
    let outcome = if score <= match_max {
        SimilarityOutcome::Dissimilar(score)
    } else {
        SimilarityOutcome::Similar(score)
    };
    (outcome, PostImageDigest::Computed(Some(post_digest)))
}

/// [`evaluate`] against a post-image digest the caller already computed
/// (e.g. incrementally from dirty extents). Produces exactly the outcome
/// [`evaluate`] would if `post_digest` equals what `SdDigest::compute`
/// yields over the post content — the abstain ladder is identical.
pub fn evaluate_precomputed(
    pre_digest: Option<&SdDigest>,
    pre_entropy: f64,
    post_digest: Option<&SdDigest>,
    match_max: u32,
    max_source_entropy: f64,
) -> SimilarityOutcome {
    let Some(pre) = pre_digest else {
        return SimilarityOutcome::Abstain(AbstainReason::NoPreImageDigest);
    };
    if pre_entropy > max_source_entropy {
        return SimilarityOutcome::Abstain(AbstainReason::HighEntropySource);
    }
    let Some(post) = post_digest else {
        return SimilarityOutcome::Abstain(AbstainReason::NoPostImageDigest);
    };
    let score = pre.similarity(post);
    if score <= match_max {
        SimilarityOutcome::Dissimilar(score)
    } else {
        SimilarityOutcome::Similar(score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(n: usize) -> Vec<u8> {
        (0..)
            .flat_map(|i| format!("sentence number {i} of the document body\n").into_bytes())
            .take(n)
            .collect()
    }

    fn encrypt(data: &[u8]) -> Vec<u8> {
        let mut s: u64 = 0x12345;
        data.iter()
            .map(|b| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                b ^ (s >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn encryption_is_dissimilar() {
        let plain = text(4096);
        let digest = SdDigest::compute(&plain).unwrap();
        let out = evaluate(Some(&digest), 4.3, &encrypt(&plain), 10, 7.5);
        assert!(out.fired(), "got {out:?}");
    }

    #[test]
    fn ordinary_edit_is_similar() {
        let plain = text(4096);
        let digest = SdDigest::compute(&plain).unwrap();
        let mut edited = plain.clone();
        edited.extend_from_slice(b"one more closing sentence\n");
        let out = evaluate(Some(&digest), 4.3, &edited, 10, 7.5);
        assert!(matches!(out, SimilarityOutcome::Similar(s) if s > 10), "got {out:?}");
    }

    #[test]
    fn abstains_without_pre_image_digest() {
        let out = evaluate(None, 4.0, &text(4096), 10, 7.5);
        assert_eq!(out, SimilarityOutcome::Abstain(AbstainReason::NoPreImageDigest));
        assert!(!out.fired());
    }

    #[test]
    fn abstains_on_high_entropy_source() {
        // A .docx-like pre-image: digest exists but entropy ~7.9.
        let plain = text(4096);
        let digest = SdDigest::compute(&plain).unwrap();
        let out = evaluate(Some(&digest), 7.9, &encrypt(&plain), 10, 7.5);
        assert_eq!(out, SimilarityOutcome::Abstain(AbstainReason::HighEntropySource));
    }

    #[test]
    fn abstains_on_tiny_post_image() {
        let plain = text(4096);
        let digest = SdDigest::compute(&plain).unwrap();
        let out = evaluate(Some(&digest), 4.3, b"tiny", 10, 7.5);
        assert_eq!(out, SimilarityOutcome::Abstain(AbstainReason::NoPostImageDigest));
    }

    #[test]
    fn evaluate_full_reports_post_digest() {
        let plain = text(4096);
        let digest = SdDigest::compute(&plain).unwrap();
        let post = encrypt(&plain);
        let (out, pd) = evaluate_full(Some(&digest), 4.3, &post, 10, 7.5);
        assert!(out.fired());
        assert_eq!(
            pd,
            PostImageDigest::Computed(SdDigest::compute(&post)),
            "the returned digest must be the one a fresh compute yields"
        );
        // Abstaining before the post-image: digest unknown.
        let (_, pd) = evaluate_full(None, 4.0, &post, 10, 7.5);
        assert_eq!(pd, PostImageDigest::NotComputed);
        assert_eq!(pd.clone().into_reusable(), None);
        let (_, pd) = evaluate_full(Some(&digest), 7.9, &post, 10, 7.5);
        assert_eq!(pd, PostImageDigest::NotComputed);
        // Undigestible post-image: known-undigestible is reusable.
        let (_, pd) = evaluate_full(Some(&digest), 4.3, b"tiny", 10, 7.5);
        assert_eq!(pd, PostImageDigest::Computed(None));
        assert_eq!(pd.into_reusable(), Some(None));
    }

    #[test]
    fn threshold_is_inclusive() {
        // Construct a comparison that yields score 0 and check the boundary
        // logic via match_max = 0.
        let plain = text(8192);
        let digest = SdDigest::compute(&plain).unwrap();
        let out = evaluate(Some(&digest), 4.3, &encrypt(&plain), 0, 7.5);
        // Score may be 0 (fires at match_max=0) or slightly above (doesn't).
        match out {
            SimilarityOutcome::Dissimilar(s) => assert_eq!(s, 0),
            SimilarityOutcome::Similar(s) => assert!(s > 0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
