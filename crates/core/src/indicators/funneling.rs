//! Secondary indicator: file-type funneling (paper §III-D).
//!
//! "File type funneling occurs when an application reads an unusually
//! disparate number of files as it writes. ... By tracking the number of
//! file types a process has read and written, the difference of these can
//! be assigned a threshold before considering it suspicious."
//!
//! A word processor embedding pictures reads a handful of types and writes
//! one — below threshold. Ransomware reads *every* type in the corpus and
//! writes only unrecognizable data — far above it.

use std::collections::BTreeSet;

use cryptodrop_sniff::FileType;
use serde::{Deserialize, Serialize};

/// Tracks the distinct file types a process has read and written.
///
/// Awards fire each time the `read − written` gap crosses another multiple
/// of the configured gap, so a process that keeps funneling keeps scoring.
///
/// # Examples
///
/// ```
/// use cryptodrop::indicators::funneling::FunnelTracker;
/// use cryptodrop_sniff::FileType;
///
/// let mut t = FunnelTracker::new(3);
/// t.record_written(FileType::Data);
/// assert_eq!(t.record_read(FileType::Pdf), 0);
/// assert_eq!(t.record_read(FileType::Docx), 0);
/// assert_eq!(t.record_read(FileType::Jpeg), 0);
/// // Fourth distinct type read: gap = 4 - 1 = 3 crosses the threshold.
/// assert_eq!(t.record_read(FileType::Mp3), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FunnelTracker {
    gap: u32,
    types_read: BTreeSet<FileType>,
    types_written: BTreeSet<FileType>,
    levels_awarded: u32,
}

impl FunnelTracker {
    /// Creates a tracker with the given gap threshold.
    pub fn new(gap: u32) -> Self {
        Self {
            gap: gap.max(1),
            ..Self::default()
        }
    }

    /// Records a type read; returns how many *new* award levels this
    /// crossing unlocked (usually 0 or 1).
    pub fn record_read(&mut self, t: FileType) -> u32 {
        self.types_read.insert(t);
        self.take_new_levels()
    }

    /// Records a type written; returns newly unlocked award levels
    /// (writing types can only shrink the gap, so this returns 0, but the
    /// symmetric API keeps call sites uniform).
    pub fn record_written(&mut self, t: FileType) -> u32 {
        self.types_written.insert(t);
        self.take_new_levels()
    }

    /// The current `read − written` distinct-type gap.
    pub fn gap(&self) -> u32 {
        (self.types_read.len() as u32).saturating_sub(self.types_written.len() as u32)
    }

    /// The distinct types read so far.
    pub fn types_read(&self) -> usize {
        self.types_read.len()
    }

    /// The distinct types written so far.
    pub fn types_written(&self) -> usize {
        self.types_written.len()
    }

    fn take_new_levels(&mut self) -> u32 {
        let level = self.gap() / self.gap;
        let new = level.saturating_sub(self.levels_awarded);
        self.levels_awarded = self.levels_awarded.max(level);
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn types(n: usize) -> Vec<FileType> {
        use FileType as T;
        vec![
            T::Pdf,
            T::Docx,
            T::Xlsx,
            T::Pptx,
            T::Jpeg,
            T::Png,
            T::Gif,
            T::Mp3,
            T::Wav,
            T::Html,
            T::Xml,
            T::Csv,
            T::Utf8Text,
            T::Rtf,
            T::Zip,
            T::OleCompound,
        ][..n]
            .to_vec()
    }

    #[test]
    fn word_processor_stays_quiet() {
        // Reads a few embedded media types, writes documents: gap 3 < 5.
        let mut t = FunnelTracker::new(5);
        let mut awards = 0;
        awards += t.record_written(FileType::Docx);
        for ty in [FileType::Jpeg, FileType::Png, FileType::Mp3, FileType::Docx] {
            awards += t.record_read(ty);
        }
        assert_eq!(awards, 0);
        assert_eq!(t.gap(), 3);
    }

    #[test]
    fn ransomware_funnels_repeatedly() {
        // Reads every corpus type, writes only Data.
        let mut t = FunnelTracker::new(5);
        let mut awards = 0;
        awards += t.record_written(FileType::Data);
        for ty in types(16) {
            awards += t.record_read(ty);
        }
        // gap = 16 - 1 = 15 -> levels 1, 2 and 3 crossed.
        assert_eq!(awards, 3);
        assert_eq!(t.gap(), 15);
        assert_eq!(t.types_read(), 16);
        assert_eq!(t.types_written(), 1);
    }

    #[test]
    fn duplicate_types_do_not_inflate() {
        let mut t = FunnelTracker::new(2);
        let mut awards = 0;
        for _ in 0..100 {
            awards += t.record_read(FileType::Pdf);
        }
        assert_eq!(awards, 0);
        assert_eq!(t.gap(), 1);
    }

    #[test]
    fn writing_more_types_shrinks_gap() {
        let mut t = FunnelTracker::new(3);
        for ty in types(6) {
            t.record_read(ty);
        }
        assert_eq!(t.gap(), 6);
        t.record_written(FileType::Pdf);
        t.record_written(FileType::Docx);
        assert_eq!(t.gap(), 4);
        // Levels already awarded are not re-awarded when the gap re-crosses.
        let again = t.record_read(FileType::Flac);
        assert_eq!(t.gap(), 5);
        assert_eq!(again, 0, "level 1 was already awarded at gap 6");
    }

    #[test]
    fn zero_gap_config_is_clamped() {
        let t = FunnelTracker::new(0);
        assert_eq!(t.gap, 1, "gap of 0 would divide by zero");
    }
}
