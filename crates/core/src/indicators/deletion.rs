//! Secondary indicator: bulk deletion (paper §III-D).
//!
//! "Deletion is a basic filesystem operation and is not generally
//! suspicious ... However, the deletion of many files from a user's
//! documents may indicate malicious activity." Class C ransomware deletes
//! the original after writing an independent encrypted copy; "early
//! detection of this type of malware depends on capturing this operation."

use serde::{Deserialize, Serialize};

/// Counts protected-file deletions per process, scoring each deletion
/// beyond an allowance.
///
/// # Examples
///
/// ```
/// use cryptodrop::indicators::deletion::DeletionTracker;
///
/// let mut t = DeletionTracker::new(3);
/// assert!(!t.observe_delete()); // ordinary temp-file cleanup
/// assert!(!t.observe_delete());
/// assert!(!t.observe_delete());
/// assert!(t.observe_delete(), "the fourth deletion starts scoring");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeletionTracker {
    allowance: u32,
    deletions: u32,
}

impl DeletionTracker {
    /// Creates a tracker tolerating `allowance` deletions before scoring.
    pub fn new(allowance: u32) -> Self {
        Self {
            allowance,
            deletions: 0,
        }
    }

    /// Records a deletion; returns `true` when this deletion scores
    /// (i.e. it exceeded the allowance).
    pub fn observe_delete(&mut self) -> bool {
        self.deletions += 1;
        self.deletions > self.allowance
    }

    /// Total deletions observed.
    pub fn deletions(&self) -> u32 {
        self.deletions
    }

    /// Deletions beyond the allowance (the scoring count).
    pub fn scored_deletions(&self) -> u32 {
        self.deletions.saturating_sub(self.allowance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowance_is_respected() {
        let mut t = DeletionTracker::new(2);
        assert!(!t.observe_delete());
        assert!(!t.observe_delete());
        assert!(t.observe_delete());
        assert!(t.observe_delete());
        assert_eq!(t.deletions(), 4);
        assert_eq!(t.scored_deletions(), 2);
    }

    #[test]
    fn zero_allowance_scores_immediately() {
        let mut t = DeletionTracker::new(0);
        assert!(t.observe_delete());
        assert_eq!(t.scored_deletions(), 1);
    }

    #[test]
    fn no_deletions_scores_nothing() {
        let t = DeletionTracker::new(3);
        assert_eq!(t.deletions(), 0);
        assert_eq!(t.scored_deletions(), 0);
    }
}
