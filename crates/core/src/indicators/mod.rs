//! The ransomware indicators (paper §III).
//!
//! Three *primary* indicators each measure an aspect of a file's
//! transformation from usable to unusable:
//!
//! 1. [`type_change`] — the file's magic-number type changed across a
//!    modification (§III-A);
//! 2. [`similarity`] — the file's similarity digest no longer matches its
//!    pre-image (§III-B);
//! 3. [`entropy_delta`] — the process writes measurably higher-entropy data
//!    than it reads (§III-C, §IV-C1).
//!
//! Two *secondary* indicators fill the gaps (§III-D): bulk [`deletion`] of
//! protected files (Class C ransomware) and file-type [`funneling`] (many
//! types read, few written). The occurrence of **all three primary
//! indicators** in one process is the *union indication* (§III-E) that lets
//! CryptoDrop act fast with few false positives.

pub mod deletion;
pub mod entropy_delta;
pub mod funneling;
pub mod similarity;
pub mod type_change;

use serde::{Deserialize, Serialize};

/// Identifies one of CryptoDrop's indicators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Indicator {
    /// Primary: sniffed file type changed across a modification.
    TypeChange,
    /// Primary: similarity digest collapsed across a modification.
    Similarity,
    /// Primary: write entropy exceeds read entropy by the threshold.
    EntropyDelta,
    /// Secondary: bulk deletion of protected files.
    Deletion,
    /// Secondary: many file types read while few are written.
    Funneling,
    /// Secondary (future-work, §V-F): many files modified within a short
    /// time window. Off by default — "research into time window
    /// parameterization may lead to another primary indicator in future
    /// versions of CryptoDrop".
    WriteBurst,
}

impl Indicator {
    /// All indicators, primaries first.
    pub const ALL: [Indicator; 6] = [
        Indicator::TypeChange,
        Indicator::Similarity,
        Indicator::EntropyDelta,
        Indicator::Deletion,
        Indicator::Funneling,
        Indicator::WriteBurst,
    ];

    /// The three primary indicators whose union triggers fast detection.
    pub const PRIMARY: [Indicator; 3] = [
        Indicator::TypeChange,
        Indicator::Similarity,
        Indicator::EntropyDelta,
    ];

    /// Returns `true` for the primary indicators.
    pub fn is_primary(self) -> bool {
        matches!(
            self,
            Indicator::TypeChange | Indicator::Similarity | Indicator::EntropyDelta
        )
    }

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Indicator::TypeChange => "type-change",
            Indicator::Similarity => "similarity",
            Indicator::EntropyDelta => "entropy-delta",
            Indicator::Deletion => "deletion",
            Indicator::Funneling => "funneling",
            Indicator::WriteBurst => "write-burst",
        }
    }
}

impl std::fmt::Display for Indicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One indicator firing, with the points it contributed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndicatorHit {
    /// Which indicator fired.
    pub indicator: Indicator,
    /// Reputation points awarded.
    pub points: u32,
    /// The measured value that tripped the indicator, in that indicator's
    /// own unit (entropy delta in bits/byte, similarity score, deletion
    /// count, funnel gap, burst count; boolean indicators use 1.0).
    pub value: f64,
    /// The threshold the value was compared against, same unit.
    pub threshold: f64,
    /// Human-readable context (file, scores) for the audit trail.
    pub detail: String,
    /// Simulated timestamp of the triggering operation.
    pub at_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_classification() {
        assert!(Indicator::TypeChange.is_primary());
        assert!(Indicator::Similarity.is_primary());
        assert!(Indicator::EntropyDelta.is_primary());
        assert!(!Indicator::Deletion.is_primary());
        assert!(!Indicator::Funneling.is_primary());
        assert!(!Indicator::WriteBurst.is_primary());
        assert_eq!(Indicator::PRIMARY.len(), 3);
        assert!(Indicator::PRIMARY.iter().all(|i| i.is_primary()));
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = Indicator::ALL.iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), Indicator::ALL.len());
        assert_eq!(Indicator::Funneling.to_string(), "funneling");
    }
}
