//! Primary indicator 3: Shannon-entropy delta (paper §III-C, §IV-C1).
//!
//! Per process, a weighted mean of read entropies and a weighted mean of
//! write entropies are maintained; after each operation (once both
//! directions have been observed) the delta `Δe = P_write − P_read` is
//! evaluated against the 0.1 threshold. The check is "stateless with
//! regard to the previous or future state of a file and occurs for every
//! atomic read or write operation where the threshold is exceeded".

use cryptodrop_entropy::{entropy_lut_of, EntropyDelta};
use serde::{Deserialize, Serialize};

/// The per-process entropy-delta tracker.
///
/// # Examples
///
/// ```
/// use cryptodrop::indicators::entropy_delta::EntropyDeltaTracker;
///
/// let mut t = EntropyDeltaTracker::new(0.1);
/// t.observe_read(b"plain english text read from a document file");
/// // A ciphertext-like write: every byte value occurs once.
/// let ciphertext: Vec<u8> = (0..=255u8).map(|b| b.wrapping_mul(193)).collect();
/// let fired = t.observe_write(&ciphertext);
/// assert!(fired, "high-entropy write after low-entropy read");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyDeltaTracker {
    delta: EntropyDelta,
    threshold: f64,
}

impl EntropyDeltaTracker {
    /// Creates a tracker with the given suspicion threshold (0.1 in the
    /// paper).
    pub fn new(threshold: f64) -> Self {
        Self {
            delta: EntropyDelta::new(),
            threshold,
        }
    }

    /// Folds in a read operation's payload.
    ///
    /// Entropy is computed with the table-driven stack fold
    /// ([`entropy_lut_of`]) — bit-identical to the fold snapshot capture
    /// uses, so a caller holding a snapshot whose stamp proves the
    /// payload identical to the snapshotted content may substitute the
    /// snapshot's entropy via [`observe_read_known`](Self::observe_read_known)
    /// with bit-identical results.
    pub fn observe_read(&mut self, data: &[u8]) {
        self.observe_read_known(entropy_lut_of(data), data.len() as u64);
    }

    /// [`observe_read`](Self::observe_read) with the payload's entropy
    /// already known (e.g. reused from a stamp-matching snapshot).
    pub fn observe_read_known(&mut self, entropy: f64, len: u64) {
        self.delta.record_read(entropy, len);
    }

    /// Folds in a write operation's payload and returns `true` when the
    /// post-update delta is at or above the threshold (the indicator
    /// fires on this operation). Uses the same table-driven entropy fold
    /// as [`observe_read`](Self::observe_read).
    pub fn observe_write(&mut self, data: &[u8]) -> bool {
        self.observe_write_known(entropy_lut_of(data), data.len() as u64)
    }

    /// [`observe_write`](Self::observe_write) with the payload's entropy
    /// already known (e.g. reused from a stamp-matching snapshot).
    pub fn observe_write_known(&mut self, entropy: f64, len: u64) -> bool {
        self.delta.record_write(entropy, len);
        self.is_suspicious()
    }

    /// The current delta, if both directions have been observed.
    pub fn delta(&self) -> Option<f64> {
        self.delta.delta()
    }

    /// Whether the current state satisfies `Δe ≥ threshold`.
    pub fn is_suspicious(&self) -> bool {
        self.delta.delta_exceeds(self.threshold)
    }

    /// The read-side weighted mean (`P_read`).
    pub fn read_mean(&self) -> Option<f64> {
        self.delta.read_mean()
    }

    /// The write-side weighted mean (`P_write`).
    pub fn write_mean(&self) -> Option<f64> {
        self.delta.write_mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn high_entropy(n: usize) -> Vec<u8> {
        let mut s: u64 = 0xfeed;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    fn text(n: usize) -> Vec<u8> {
        b"ordinary prose with ordinary letter frequencies. "
            .iter()
            .cycle()
            .take(n)
            .copied()
            .collect()
    }

    #[test]
    fn needs_both_directions() {
        let mut t = EntropyDeltaTracker::new(0.1);
        assert!(!t.observe_write(&high_entropy(4096)), "no read yet");
        assert_eq!(t.delta(), None);
        t.observe_read(&text(4096));
        assert!(t.is_suspicious(), "now both directions are present");
    }

    #[test]
    fn encryption_pattern_fires_per_write() {
        let mut t = EntropyDeltaTracker::new(0.1);
        t.observe_read(&text(8192));
        assert!(t.observe_write(&high_entropy(8192)));
        assert!(t.observe_write(&high_entropy(8192)), "fires on every op");
    }

    #[test]
    fn benign_copy_does_not_fire() {
        // Reading and writing the same kind of data: delta ~ 0.
        let mut t = EntropyDeltaTracker::new(0.1);
        t.observe_read(&text(8192));
        assert!(!t.observe_write(&text(8192)));
    }

    #[test]
    fn compressed_source_fires_weakly_but_fires() {
        // Reading ~7.8-entropy data and writing ~8.0: small delta, but the
        // 0.1 threshold "provides resolution for detecting the small
        // entropy increase for compressed files" (§IV-C1).
        let mut t = EntropyDeltaTracker::new(0.1);
        // Mildly structured high-entropy read: random bytes with every 16th
        // byte zero, entropy ≈ 7.6.
        let mut read = high_entropy(16384);
        for b in read.iter_mut().step_by(12) {
            *b = 0;
        }
        t.observe_read(&read);
        let fired = t.observe_write(&high_entropy(16384));
        let d = t.delta().unwrap();
        assert!(d > 0.1 && d < 1.0, "delta = {d}");
        assert!(fired);
    }

    #[test]
    fn ransom_notes_do_not_mask_encryption() {
        // §IV-C1's motivating case: low-entropy note writes between
        // encrypted writes must not pull the write mean below threshold.
        let mut t = EntropyDeltaTracker::new(0.1);
        t.observe_read(&text(65536));
        t.observe_write(&high_entropy(65536));
        for _ in 0..50 {
            t.observe_write(&text(300)); // ransom note per directory
        }
        assert!(t.is_suspicious(), "delta = {:?}", t.delta());
    }

    #[test]
    fn reverse_direction_never_fires() {
        // Decompression-like: read high entropy, write text.
        let mut t = EntropyDeltaTracker::new(0.1);
        t.observe_read(&high_entropy(8192));
        assert!(!t.observe_write(&text(8192)));
        assert_eq!(t.delta(), Some(0.0), "clamped at zero");
    }

    #[test]
    fn means_are_exposed() {
        let mut t = EntropyDeltaTracker::new(0.1);
        t.observe_read(&text(4096));
        t.observe_write(&high_entropy(4096));
        assert!(t.read_mean().unwrap() < 5.0);
        assert!(t.write_mean().unwrap() > 7.5);
    }
}
