//! The unified `Session` detector API.
//!
//! [`CryptoDrop::builder`] → [`SessionBuilder`] → [`Session`] is the one
//! entry point for configuring, validating, and running a detector. It
//! subsumes the deprecated `CryptoDrop::new` / `new_with_telemetry` /
//! `fork` / `Monitor::fork_engine` constructors: the builder validates the
//! configuration up front (returning a typed [`ConfigError`] instead of
//! silently accepting a detector that can never fire), and the session
//! decides — by configuration, not by call site — whether analysis runs
//! inline in the filter callbacks or on the async batched
//! [pipeline](crate::pipeline).
//!
//! ```
//! use cryptodrop::CryptoDrop;
//! use cryptodrop_vfs::{VPath, Vfs};
//!
//! let session = CryptoDrop::builder()
//!     .protecting("/docs")
//!     .build()
//!     .expect("valid config");
//!
//! let mut fs = Vfs::new();
//! fs.register_filter(Box::new(session.fork()));
//! let pid = fs.spawn_process("app.exe");
//! fs.create_dir_all(pid, &VPath::new("/docs")).unwrap();
//! fs.write_file(pid, &VPath::new("/docs/a.txt"), b"hi").unwrap();
//! session.drain();
//! assert_eq!(session.score(pid), 0);
//! ```

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;
use std::thread::JoinHandle;

use cryptodrop_recovery::{RecoveryReport, ShadowConfig, ShadowStore};
use cryptodrop_telemetry::Telemetry;
use cryptodrop_vfs::{FaultInjector, FaultPlan, FaultStats, ProcessId, VPath, Vfs};

use crate::config::{Config, DecayPolicy, ScoreConfig};
use crate::engine::{CryptoDrop, Monitor};
use crate::pipeline::{PipelineConfig, PipelineShared, PipelineStats};

/// Why a [`SessionBuilder`] rejected its configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// No protected directories: the detector would never score anything.
    NoProtectedDirs,
    /// A detection threshold of zero would suspend every process on its
    /// first operation. Carries the offending field name.
    ZeroThreshold(&'static str),
    /// `union_threshold` must not exceed `non_union_threshold` — union
    /// indication *lowers* the threshold (paper §V-B2).
    UnionThresholdAboveBase {
        /// The configured `union_threshold`.
        union: u32,
        /// The configured `non_union_threshold`.
        non_union: u32,
    },
    /// A bounded snapshot cache smaller than the pinned budget could never
    /// honour the pin guarantee.
    SnapshotCacheBelowPinnedBudget {
        /// The configured `snapshot_cache_capacity`.
        capacity: usize,
        /// The configured `pinned_snapshot_budget`.
        budget: usize,
    },
    /// `max_digest_bytes` of zero disables the similarity indicator for
    /// every file.
    ZeroMaxDigestBytes,
    /// A pipeline sizing parameter was zero. Carries the field name.
    ZeroPipelineParam(&'static str),
    /// A recovery shadow store with a zero byte budget could never hold a
    /// single pre-image: every capture would be evicted on arrival.
    ZeroShadowBudget,
    /// Throttling enabled with an engage score of zero would delay every
    /// process — including fully benign ones at score 0 — on every
    /// destructive in-scope operation.
    ZeroThrottleScore,
    /// A decay policy with a zero time parameter would age every award
    /// out instantly: the scoreboard could never accumulate anything.
    /// Carries the offending field name.
    ZeroDecayParam(&'static str),
    /// A rate-budget parameter of zero would either throttle every
    /// family from its first modification (zero capacity) or make the
    /// budget meaningless (zero refill interval or zero delay). Carries
    /// the offending field name.
    ZeroRateBudgetParam(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoProtectedDirs => {
                write!(f, "no protected directories: the detector would never score")
            }
            Self::ZeroThreshold(which) => {
                write!(f, "{which} must be nonzero (zero suspends every process)")
            }
            Self::UnionThresholdAboveBase { union, non_union } => write!(
                f,
                "union_threshold ({union}) must not exceed non_union_threshold \
                 ({non_union}): union indication lowers the threshold"
            ),
            Self::SnapshotCacheBelowPinnedBudget { capacity, budget } => write!(
                f,
                "snapshot_cache_capacity ({capacity}) is below \
                 pinned_snapshot_budget ({budget}): the pin guarantee cannot hold"
            ),
            Self::ZeroMaxDigestBytes => {
                write!(f, "max_digest_bytes must be nonzero to digest any file")
            }
            Self::ZeroPipelineParam(which) => {
                write!(f, "pipeline {which} must be nonzero")
            }
            Self::ZeroShadowBudget => {
                write!(
                    f,
                    "recovery byte_budget must be nonzero: a zero-budget shadow \
                     store evicts every pre-image on arrival"
                )
            }
            Self::ZeroThrottleScore => {
                write!(
                    f,
                    "throttle_score must be nonzero when throttling is enabled: \
                     zero would delay every process from its first operation"
                )
            }
            Self::ZeroDecayParam(which) => {
                write!(
                    f,
                    "decay {which} must be nonzero: a zero-width policy ages every \
                     award out instantly and the scoreboard never accumulates"
                )
            }
            Self::ZeroRateBudgetParam(which) => {
                write!(
                    f,
                    "rate budget {which} must be nonzero when the rate budget is \
                     enabled"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates an engine configuration — the checks behind
/// [`SessionBuilder::build`], shared with tests.
pub(crate) fn validate(config: &Config) -> Result<(), ConfigError> {
    if config.protected_dirs.is_empty() {
        return Err(ConfigError::NoProtectedDirs);
    }
    let s = &config.score;
    if s.non_union_threshold == 0 {
        return Err(ConfigError::ZeroThreshold("non_union_threshold"));
    }
    if s.union_threshold == 0 {
        return Err(ConfigError::ZeroThreshold("union_threshold"));
    }
    if s.union_threshold > s.non_union_threshold {
        return Err(ConfigError::UnionThresholdAboveBase {
            union: s.union_threshold,
            non_union: s.non_union_threshold,
        });
    }
    if config.snapshot_cache_capacity != 0
        && config.pinned_snapshot_budget != 0
        && config.snapshot_cache_capacity < config.pinned_snapshot_budget
    {
        return Err(ConfigError::SnapshotCacheBelowPinnedBudget {
            capacity: config.snapshot_cache_capacity,
            budget: config.pinned_snapshot_budget,
        });
    }
    if config.max_digest_bytes == 0 {
        return Err(ConfigError::ZeroMaxDigestBytes);
    }
    if config.throttle_enabled && config.throttle_score == 0 {
        return Err(ConfigError::ZeroThrottleScore);
    }
    match s.decay {
        DecayPolicy::None => {}
        DecayPolicy::Window { window_nanos } | DecayPolicy::Linear { window_nanos } => {
            if window_nanos == 0 {
                return Err(ConfigError::ZeroDecayParam("window_nanos"));
            }
        }
        DecayPolicy::HalfLife { half_life_nanos } => {
            if half_life_nanos == 0 {
                return Err(ConfigError::ZeroDecayParam("half_life_nanos"));
            }
        }
    }
    if config.rate_budget_enabled {
        if config.rate_budget_capacity == 0 {
            return Err(ConfigError::ZeroRateBudgetParam("rate_budget_capacity"));
        }
        if config.rate_refill_nanos_per_token == 0 {
            return Err(ConfigError::ZeroRateBudgetParam(
                "rate_refill_nanos_per_token",
            ));
        }
        if config.rate_throttle_nanos == 0 {
            return Err(ConfigError::ZeroRateBudgetParam("rate_throttle_nanos"));
        }
    }
    Ok(())
}

fn validate_pipeline(cfg: &PipelineConfig) -> Result<(), ConfigError> {
    if cfg.shards == 0 {
        return Err(ConfigError::ZeroPipelineParam("shards"));
    }
    if cfg.capacity == 0 {
        return Err(ConfigError::ZeroPipelineParam("capacity"));
    }
    if cfg.workers == 0 {
        return Err(ConfigError::ZeroPipelineParam("workers"));
    }
    if cfg.max_batch == 0 {
        return Err(ConfigError::ZeroPipelineParam("max_batch"));
    }
    if cfg.sync_deadline.is_zero() {
        // A zero deadline would spin producers through the reclaim path on
        // every wait instead of ever letting a worker answer.
        return Err(ConfigError::ZeroPipelineParam("sync_deadline"));
    }
    Ok(())
}

/// Builds a validated [`Session`]. Obtain one with [`CryptoDrop::builder`].
#[derive(Default)]
#[must_use = "a builder does nothing until `.build()` is called"]
pub struct SessionBuilder {
    config: Option<Config>,
    protected: Vec<VPath>,
    score: Option<ScoreConfig>,
    telemetry: Option<Telemetry>,
    pipeline: Option<PipelineConfig>,
    recovery: Option<ShadowConfig>,
    faults: Option<FaultPlan>,
    decoys: Vec<VPath>,
    throttle: Option<(u32, u64)>,
    rate_budget: Option<(u32, u64, u64)>,
    decay: Option<DecayPolicy>,
    deterministic_clock: bool,
}

impl SessionBuilder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Adds a protected directory. May be called repeatedly; directories
    /// accumulate on top of any base [`config`](Self::config).
    pub fn protecting(mut self, dir: impl Into<VPath>) -> Self {
        self.protected.push(dir.into());
        self
    }

    /// Starts from a complete [`Config`] instead of the defaults.
    /// Directories added with [`protecting`](Self::protecting) and a score
    /// set with [`score`](Self::score) still apply on top.
    pub fn config(mut self, config: Config) -> Self {
        self.config = Some(config);
        self
    }

    /// Replaces the scoring parameters.
    pub fn score(mut self, score: ScoreConfig) -> Self {
        self.score = Some(score);
        self
    }

    /// Wires the engine (and its pipeline, if enabled) to a [`Telemetry`]
    /// sink. Share the same handle with
    /// [`Vfs::set_telemetry`](cryptodrop_vfs::Vfs::set_telemetry) to merge
    /// filter and engine events onto one timeline.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Runs analysis on the async batched pipeline with default sizing
    /// (see [`PipelineConfig`]). Without this (or
    /// [`pipeline_config`](Self::pipeline_config)), analysis runs inline
    /// in the filter callbacks.
    pub fn pipelined(self) -> Self {
        self.pipeline_config(PipelineConfig::default())
    }

    /// Runs analysis on the async batched pipeline with explicit sizing
    /// and backpressure policy.
    pub fn pipeline_config(mut self, config: PipelineConfig) -> Self {
        self.pipeline = Some(config);
        self
    }

    /// Enables the shadow-copy recovery subsystem: the session owns a
    /// [`ShadowStore`] that journals pre-images of destructive operations
    /// (attach it to a filesystem with [`Session::attach`]), pins shadows
    /// of families the engine is scoring, and rolls suspects back after
    /// suspension ([`Session::restore`] /
    /// [`Session::reconcile_and_restore`]).
    pub fn recovery(mut self, config: ShadowConfig) -> Self {
        self.recovery = Some(config);
        self
    }

    /// Registers decoy (bait) files on top of any base
    /// [`config`](Self::config): any destructive operation on one is an
    /// instant maximum-confidence detection (see
    /// [`Config::decoy_paths`]). May be called repeatedly; decoys
    /// accumulate. Pair with
    /// [`Corpus::decoy_paths`](../cryptodrop_corpus/index.html) or any
    /// other source of bait paths, and keep the files themselves staged
    /// in the filesystem so enumeration finds them.
    pub fn decoys(mut self, decoys: impl IntoIterator<Item = VPath>) -> Self {
        self.decoys.extend(decoys);
        self
    }

    /// Enables reputation-driven throttling: once a family's score
    /// reaches `score`, each destructive in-scope operation it issues is
    /// delayed on the simulated clock by `score × nanos_per_point` (see
    /// [`Config::throttle_enabled`]).
    pub fn throttling(mut self, score: u32, nanos_per_point: u64) -> Self {
        self.throttle = Some((score, nanos_per_point));
        self
    }

    /// Enables per-family first-modification rate budgets: a token
    /// bucket of `capacity` tokens per family, refilling one token per
    /// `refill_nanos_per_token` of simulated time; while a family's
    /// bucket is dry, each destructive in-scope operation it issues is
    /// delayed by `throttle_nanos` on the simulated clock (composing
    /// with [`throttling`](Self::throttling)). See
    /// [`Config::rate_budget_enabled`].
    pub fn rate_budget(
        mut self,
        capacity: u32,
        refill_nanos_per_token: u64,
        throttle_nanos: u64,
    ) -> Self {
        self.rate_budget = Some((capacity, refill_nanos_per_token, throttle_nanos));
        self
    }

    /// Replaces the score-decay policy: reputation points age out of
    /// threshold checks over simulated time. See [`ScoreConfig::decay`].
    pub fn decay(mut self, policy: DecayPolicy) -> Self {
        self.decay = Some(policy);
        self
    }

    /// Arms deterministic fault injection (chaos testing): the session
    /// builds a [`FaultInjector`] from `plan`, hands it to the pipeline
    /// (worker-panic and latency sites) and — via [`Session::attach`] — to
    /// every attached [`Vfs`] (I/O-error and shadow-capture sites). The
    /// same seed always produces the same fault schedule. A
    /// [`FaultPlan::default`] plan is inert, so wiring this in
    /// unconditionally with an inactive plan costs nothing.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Makes every filesystem attached to this session keep deterministic
    /// timestamps: [`Session::attach`] sets
    /// [`ClockPolicy::Deterministic`](cryptodrop_vfs::ClockPolicy) on the
    /// [`Vfs`], so measured filter overhead is still recorded in the
    /// latency ledger but never advanced into the simulated clock. Two
    /// runs issuing the same operations then report identical `at_nanos`
    /// values in detection reports and audit trails.
    pub fn deterministic_clock(mut self) -> Self {
        self.deterministic_clock = true;
        self
    }

    /// Validates the configuration and starts the session (spawning the
    /// pipeline worker pool when pipelined).
    pub fn build(self) -> Result<Session, ConfigError> {
        let mut config = match self.config {
            Some(cfg) => cfg,
            None => match self.protected.first() {
                Some(first) => Config::protecting(first.clone()),
                None => return Err(ConfigError::NoProtectedDirs),
            },
        };
        for dir in self.protected {
            if !config.protected_dirs.contains(&dir) {
                config.protected_dirs.push(dir);
            }
        }
        if let Some(score) = self.score {
            config.score = score;
        }
        for decoy in self.decoys {
            if !config.decoy_paths.contains(&decoy) {
                config.decoy_paths.push(decoy);
            }
        }
        if let Some((score, nanos)) = self.throttle {
            config.throttle_enabled = true;
            config.throttle_score = score;
            config.throttle_nanos_per_point = nanos;
        }
        if let Some((capacity, refill, delay)) = self.rate_budget {
            config.rate_budget_enabled = true;
            config.rate_budget_capacity = capacity;
            config.rate_refill_nanos_per_token = refill;
            config.rate_throttle_nanos = delay;
        }
        if let Some(policy) = self.decay {
            config.score.decay = policy;
        }
        validate(&config)?;
        if let Some(pcfg) = &self.pipeline {
            validate_pipeline(pcfg)?;
        }
        if let Some(scfg) = &self.recovery {
            if scfg.byte_budget == 0 {
                return Err(ConfigError::ZeroShadowBudget);
            }
        }

        let telemetry = self.telemetry.unwrap_or_else(Telemetry::disabled);
        let faults = self
            .faults
            .map(|plan| FaultInjector::with_telemetry(plan, telemetry.clone()));
        let (mut engine, monitor) = CryptoDrop::with_telemetry_inner(config, telemetry.clone());
        // Attach the shadow store before any fork is taken: pipeline
        // workers must carry the reputation feed from their first record.
        let shadow = self.recovery.map(|scfg| {
            let store = Arc::new(ShadowStore::with_telemetry(scfg, telemetry.clone()));
            engine.attach_shadow(Arc::clone(&store));
            store
        });
        let mut workers = Vec::new();
        let pipeline = match self.pipeline {
            Some(pcfg) => {
                let shared = Arc::new(PipelineShared::new(pcfg, telemetry, faults.clone()));
                for idx in 0..pcfg.workers {
                    let pipe = Arc::clone(&shared);
                    // Workers hold a detached fork: processing a record
                    // must never re-enter the queue.
                    let worker_engine = engine.detached_fork();
                    let handle = std::thread::Builder::new()
                        .name(format!("cryptodrop-pipeline-{idx}"))
                        .spawn(move || {
                            // A panic (an analysis bug, or injected fault)
                            // unwinds the loop; the batch guard has already
                            // requeued the interrupted batch, so re-enter in
                            // place — same thread, same shards — and count
                            // the restart. A clean exit means shutdown.
                            loop {
                                let run = std::panic::catch_unwind(
                                    std::panic::AssertUnwindSafe(|| {
                                        pipe.worker_loop(&worker_engine, idx, pcfg.workers)
                                    }),
                                );
                                match run {
                                    Ok(()) => break,
                                    Err(_) => pipe.note_worker_restart(),
                                }
                            }
                        })
                        .expect("spawn pipeline worker");
                    workers.push(handle);
                }
                engine.attach_pipeline(Arc::clone(&shared));
                Some(shared)
            }
            None => None,
        };
        Ok(Session {
            engine,
            monitor,
            pipeline,
            shadow,
            faults,
            deterministic_clock: self.deterministic_clock,
            workers,
        })
    }
}

impl fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("config", &self.config)
            .field("protected", &self.protected)
            .field("score", &self.score)
            .field("pipelined", &self.pipeline.is_some())
            .finish_non_exhaustive()
    }
}

/// A running detector: the engine template, its [`Monitor`] view, and —
/// when pipelined — the shard queues and worker pool. Dropping the session
/// shuts the pipeline down drain-first: every queued record is analyzed
/// before the workers exit.
///
/// `Session` dereferences to [`Monitor`], so every read
/// (`score`, `detections`, `summaries`, `audit_trail`, ...) is available
/// directly on the session.
pub struct Session {
    engine: CryptoDrop,
    monitor: Monitor,
    pipeline: Option<Arc<PipelineShared>>,
    shadow: Option<Arc<ShadowStore>>,
    faults: Option<FaultInjector>,
    deterministic_clock: bool,
    workers: Vec<JoinHandle<()>>,
}

impl Session {
    /// A filter driver over this session's engine, for
    /// [`Vfs::register_filter`](cryptodrop_vfs::Vfs::register_filter).
    /// Forks share the scoreboard, snapshot cache, and detection log, and
    /// carry the pipeline attachment — register one per `Vfs` (one per
    /// thread) to fan a single detector out across filesystems.
    pub fn fork(&self) -> CryptoDrop {
        self.engine.fork_inner()
    }

    /// A clonable read handle onto the engine state, for threads that only
    /// observe (the session itself [derefs](Self#deref-methods) to the
    /// same view).
    pub fn monitor(&self) -> Monitor {
        self.monitor.clone()
    }

    /// Whether analysis runs on the async pipeline (`false` = inline).
    pub fn is_pipelined(&self) -> bool {
        self.pipeline.is_some()
    }

    /// The pipeline sizing, when pipelined.
    pub fn pipeline_config(&self) -> Option<PipelineConfig> {
        self.pipeline.as_ref().map(|p| *p.config())
    }

    /// Blocks until every record enqueued so far has been analyzed. A
    /// no-op for inline sessions. Call before reading scores or detections
    /// under `Backpressure::DegradeToInline`; under `Sync` every verdict
    /// is already complete when the operation returns.
    pub fn drain(&self) {
        if let Some(p) = &self.pipeline {
            p.quiesce();
        }
    }

    /// Point-in-time pipeline counters (all zero for inline sessions).
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default()
    }

    /// The session's shadow store, when recovery is enabled.
    pub fn shadow_store(&self) -> Option<&Arc<ShadowStore>> {
        self.shadow.as_ref()
    }

    /// The session's fault injector, when built with
    /// [`faults`](SessionBuilder::faults).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// How many faults each injection site has fired so far (all zero when
    /// the session was built without [`faults`](SessionBuilder::faults)).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// Wires `fs` into this session in one call: registers a filter fork
    /// and — when recovery is enabled — installs the shadow store as the
    /// filesystem's pre-image sink. Equivalent to calling
    /// [`Vfs::register_filter`] and
    /// [`Vfs::set_shadow_sink`](cryptodrop_vfs::Vfs::set_shadow_sink)
    /// yourself. A session built with
    /// [`deterministic_clock`](SessionBuilder::deterministic_clock) also
    /// switches the filesystem's clock policy here.
    ///
    /// Returns a typed [`ClockHandle`](cryptodrop_vfs::ClockHandle) onto
    /// the attached filesystem's simulated clock, so callers pacing a
    /// workload (or reading detection timestamps) get the clock through
    /// the session wiring instead of raw nanosecond plumbing. Ignoring it
    /// is fine.
    pub fn attach(&self, fs: &mut Vfs) -> cryptodrop_vfs::ClockHandle {
        if let Some(shadow) = &self.shadow {
            fs.set_shadow_sink(Arc::clone(shadow) as _);
        }
        if let Some(faults) = &self.faults {
            // One shared decision stream: every attached filesystem draws
            // from the same deterministic fault schedule as the pipeline.
            fs.set_fault_injector(faults.clone());
        }
        if self.deterministic_clock {
            fs.set_clock_policy(cryptodrop_vfs::ClockPolicy::Deterministic);
        }
        fs.register_filter(Box::new(self.fork()));
        fs.clock_handle()
    }

    /// Whether this session pins attached filesystems to the
    /// deterministic clock policy.
    pub fn is_deterministic_clock(&self) -> bool {
        self.deterministic_clock
    }

    /// Rolls `family`'s destructive operations back against `fs` from the
    /// shadow store (see [`ShadowStore::recover`] for the semantics).
    /// Returns `None` when the session was built without
    /// [`recovery`](SessionBuilder::recovery).
    pub fn restore(&self, fs: &mut Vfs, family: ProcessId) -> Option<RecoveryReport> {
        self.shadow.as_ref().map(|s| s.recover(family, fs))
    }

    /// [`reconcile`](Self::reconcile)s pending detections into
    /// suspensions, then rolls back every detected family from the shadow
    /// store. A rollback consumes the family's journal state, so families
    /// already restored earlier (e.g. right after an inline suspension)
    /// produce an empty report the second time — the call is idempotent.
    /// Returns one report per detected family.
    pub fn reconcile_and_restore(&self, fs: &mut Vfs) -> Vec<RecoveryReport> {
        self.drain();
        let Some(shadow) = &self.shadow else {
            self.reconcile(fs);
            return Vec::new();
        };
        let mut reports = Vec::new();
        for report in self.monitor.detections() {
            fs.suspend_process(report.pid, "cryptodrop", &report.reason());
            reports.push(shadow.recover(report.pid, fs));
        }
        reports
    }

    /// Shuts the session down deterministically and returns the final
    /// pipeline counters: drains every queued record, captures the stats,
    /// then stops and joins the worker pool. `Drop` performs the same
    /// teardown, but fleet hosts despawning one tenant among thousands
    /// want the terminal stats for their rollup — after `drop` they are
    /// gone. Inline sessions return the default (all-zero) stats.
    pub fn shutdown(mut self) -> PipelineStats {
        let Some(p) = self.pipeline.take() else {
            return PipelineStats::default();
        };
        p.quiesce();
        let stats = p.stats();
        p.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        stats
    }

    /// Drains the pipeline, then applies any detection that has not yet
    /// reached `fs`'s process table as a suspension. Under
    /// `Backpressure::DegradeToInline` a threshold crossing can land
    /// *after* the triggering operation returned `Allow`; the family gate
    /// suspends on the family's next operation, but a process that goes
    /// quiet would otherwise never be suspended. Returns the number of
    /// suspensions applied.
    pub fn reconcile(&self, fs: &mut Vfs) -> usize {
        self.drain();
        let mut applied = 0;
        for report in self.monitor.detections() {
            if fs.suspend_process(report.pid, "cryptodrop", &report.reason()) {
                applied += 1;
            }
        }
        applied
    }
}

impl Deref for Session {
    type Target = Monitor;

    fn deref(&self) -> &Monitor {
        &self.monitor
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(p) = &self.pipeline {
            p.begin_shutdown();
            for handle in self.workers.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("pipelined", &self.pipeline.is_some())
            .field("workers", &self.workers.len())
            .field("engine", &self.engine)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_empty_protection() {
        assert_eq!(
            CryptoDrop::builder().build().err(),
            Some(ConfigError::NoProtectedDirs)
        );
    }

    #[test]
    fn builder_rejects_zero_thresholds() {
        let score = ScoreConfig {
            non_union_threshold: 0,
            ..ScoreConfig::default()
        };
        assert_eq!(
            CryptoDrop::builder()
                .protecting("/d")
                .score(score)
                .build()
                .err(),
            Some(ConfigError::ZeroThreshold("non_union_threshold"))
        );
        let score = ScoreConfig {
            union_threshold: 0,
            ..ScoreConfig::default()
        };
        assert_eq!(
            CryptoDrop::builder()
                .protecting("/d")
                .score(score)
                .build()
                .err(),
            Some(ConfigError::ZeroThreshold("union_threshold"))
        );
    }

    #[test]
    fn builder_rejects_inverted_thresholds() {
        let score = ScoreConfig {
            union_threshold: 300,
            non_union_threshold: 200,
            ..ScoreConfig::default()
        };
        assert_eq!(
            CryptoDrop::builder()
                .protecting("/d")
                .score(score)
                .build()
                .err(),
            Some(ConfigError::UnionThresholdAboveBase {
                union: 300,
                non_union: 200
            })
        );
    }

    #[test]
    fn builder_rejects_pin_budget_over_capacity() {
        let mut cfg = Config::protecting("/d");
        cfg.snapshot_cache_capacity = 100;
        cfg.pinned_snapshot_budget = 200;
        assert_eq!(
            CryptoDrop::builder().config(cfg).build().err(),
            Some(ConfigError::SnapshotCacheBelowPinnedBudget {
                capacity: 100,
                budget: 200
            })
        );
    }

    #[test]
    fn builder_rejects_zero_digest_budget() {
        let mut cfg = Config::protecting("/d");
        cfg.max_digest_bytes = 0;
        assert_eq!(
            CryptoDrop::builder().config(cfg).build().err(),
            Some(ConfigError::ZeroMaxDigestBytes)
        );
    }

    #[test]
    fn builder_rejects_zero_throttle_score() {
        let mut cfg = Config::protecting("/d");
        cfg.throttle_enabled = true;
        cfg.throttle_score = 0;
        let err = CryptoDrop::builder().config(cfg).build().err();
        assert_eq!(err, Some(ConfigError::ZeroThrottleScore));
        assert!(err.unwrap().to_string().contains("throttle_score"));
        // Score 0 with throttling off is the inert default — fine.
        let mut cfg = Config::protecting("/d");
        cfg.throttle_score = 0;
        assert!(CryptoDrop::builder().config(cfg).build().is_ok());
    }

    #[test]
    fn builder_threads_decoys_and_throttling_into_the_config() {
        use cryptodrop_vfs::VPath;
        let bait = VPath::new("/d/_passwords.xlsx");
        let session = CryptoDrop::builder()
            .protecting("/d")
            .decoys([bait.clone(), bait.clone()]) // duplicates collapse
            .throttling(40, 2_000_000)
            .build()
            .expect("valid");
        let cfg = session.config();
        assert_eq!(cfg.decoy_paths, vec![bait.clone()]);
        assert!(cfg.is_decoy(&bait));
        assert!(cfg.throttle_enabled);
        assert_eq!(cfg.throttle_score, 40);
        assert_eq!(cfg.throttle_nanos_per_point, 2_000_000);
    }

    #[test]
    fn builder_rejects_zero_pipeline_params() {
        for (which, pcfg) in [
            (
                "shards",
                PipelineConfig {
                    shards: 0,
                    ..PipelineConfig::default()
                },
            ),
            (
                "capacity",
                PipelineConfig {
                    capacity: 0,
                    ..PipelineConfig::default()
                },
            ),
            (
                "workers",
                PipelineConfig {
                    workers: 0,
                    ..PipelineConfig::default()
                },
            ),
            (
                "max_batch",
                PipelineConfig {
                    max_batch: 0,
                    ..PipelineConfig::default()
                },
            ),
            (
                "sync_deadline",
                PipelineConfig {
                    sync_deadline: std::time::Duration::ZERO,
                    ..PipelineConfig::default()
                },
            ),
        ] {
            assert_eq!(
                CryptoDrop::builder()
                    .protecting("/d")
                    .pipeline_config(pcfg)
                    .build()
                    .err(),
                Some(ConfigError::ZeroPipelineParam(which))
            );
        }
    }

    #[test]
    fn builder_accumulates_protected_dirs() {
        let session = CryptoDrop::builder()
            .protecting("/docs")
            .protecting("/desktop")
            .protecting("/docs") // duplicate collapses
            .build()
            .unwrap();
        assert_eq!(session.config().protected_dirs.len(), 2);
        assert!(!session.is_pipelined());
        assert_eq!(session.pipeline_stats(), PipelineStats::default());
    }

    #[test]
    fn config_error_messages_name_the_field() {
        let msgs = [
            ConfigError::NoProtectedDirs.to_string(),
            ConfigError::ZeroThreshold("union_threshold").to_string(),
            ConfigError::UnionThresholdAboveBase {
                union: 3,
                non_union: 2,
            }
            .to_string(),
            ConfigError::SnapshotCacheBelowPinnedBudget {
                capacity: 1,
                budget: 2,
            }
            .to_string(),
            ConfigError::ZeroMaxDigestBytes.to_string(),
            ConfigError::ZeroPipelineParam("workers").to_string(),
            ConfigError::ZeroPipelineParam("sync_deadline").to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
        }
        assert!(msgs[1].contains("union_threshold"));
        assert!(msgs[5].contains("workers"));
        assert!(msgs[6].contains("sync_deadline"));
    }

    #[test]
    fn inert_fault_plan_changes_nothing() {
        let session = CryptoDrop::builder()
            .protecting("/docs")
            .pipelined()
            .faults(FaultPlan::default())
            .build()
            .unwrap();
        assert!(session.fault_injector().is_some());
        assert!(!session.fault_injector().unwrap().plan().is_active());
        let mut fs = Vfs::new();
        session.attach(&mut fs);
        let pid = fs.spawn_process("app.exe");
        fs.create_dir_all(pid, &VPath::new("/docs")).unwrap();
        fs.write_file(pid, &VPath::new("/docs/a.txt"), b"hello")
            .unwrap();
        session.drain();
        assert_eq!(session.fault_stats(), FaultStats::default());
    }

    #[test]
    fn pipelined_session_starts_and_drops_cleanly() {
        let session = CryptoDrop::builder()
            .protecting("/docs")
            .pipelined()
            .build()
            .unwrap();
        assert!(session.is_pipelined());
        assert_eq!(session.pipeline_config().unwrap().shards, 8);
        session.drain();
        drop(session); // workers join without any work
    }
}
