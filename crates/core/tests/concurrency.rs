//! Multi-process stress test for the sharded engine.
//!
//! Eight process families interleave operations from eight OS threads,
//! each driving its own [`Vfs`] namespace against forks of one shared
//! engine. The sharded scoreboard must produce exactly the detections,
//! scores, and summaries that a serial replay of the same workloads
//! produces — concurrency is an implementation detail, never visible in
//! the results.

use cryptodrop::{Config, CryptoDrop, DetectionReport, Monitor};
use cryptodrop_vfs::{OpenOptions, ProcessId, VPath, Vfs};

const FAMILIES: usize = 8;
const FILES_PER_FAMILY: usize = 30;

fn docs_dir(i: usize) -> VPath {
    VPath::new(format!("/Users/victim/Documents{i}"))
}

/// One config protecting every family's directory.
fn config() -> Config {
    let mut cfg = Config::protecting(docs_dir(0));
    for i in 1..FAMILIES {
        cfg.protected_dirs.push(docs_dir(i));
    }
    cfg
}

fn text_content(tag: u64, n: usize) -> Vec<u8> {
    (0..)
        .flat_map(|i| format!("family {tag} paragraph {i} with ordinary words\n").into_bytes())
        .take(n)
        .collect()
}

fn encrypt(data: &[u8], seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    data.iter()
        .map(|b| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            b ^ (s >> 32) as u8
        })
        .collect()
}

/// Runs family `i`'s whole workload on its own namespaced Vfs against a
/// fork of the shared engine. Even families run a Class A in-place
/// encryption loop; odd families run a benign copy loop. Returns the
/// family's pid and whether it ended up suspended.
fn run_family(i: usize, engine: CryptoDrop) -> (ProcessId, bool) {
    let mut fs = Vfs::with_namespace(i as u32 + 1);
    let docs = docs_dir(i);
    for f in 0..FILES_PER_FAMILY {
        fs.admin().write_file(
            &docs.join(format!("file{f}.txt")),
            &text_content(i as u64, 4096),
        )
        .unwrap();
    }
    fs.register_filter(Box::new(engine));
    let pid = fs.spawn_process(format!("proc{i}.exe"));
    if i.is_multiple_of(2) {
        // Class A: read, encrypt in place, close — until suspended.
        for f in 0..FILES_PER_FAMILY {
            let path = docs.join(format!("file{f}.txt"));
            let Ok(h) = fs.open(pid, &path, OpenOptions::modify()) else {
                break;
            };
            let Ok(data) = fs.read_to_end(pid, h) else {
                break;
            };
            let ct = encrypt(&data, (i * FILES_PER_FAMILY + f) as u64 + 1);
            if fs.seek(pid, h, 0).is_err()
                || fs.write(pid, h, &ct).is_err()
                || fs.close(pid, h).is_err()
            {
                let _ = fs.close(pid, h);
                break;
            }
        }
    } else {
        // Benign: copy every document unchanged into a backup folder,
        // then re-save each original in place (an editor's no-op save —
        // this is the snapshot cache's hit path).
        fs.create_dir_all(pid, &docs.join("backup")).unwrap();
        for f in 0..FILES_PER_FAMILY {
            let src = docs.join(format!("file{f}.txt"));
            let data = fs.read_file(pid, &src).unwrap();
            fs.write_file(pid, &docs.join(format!("backup/copy{f}.txt")), &data)
                .unwrap();
            let h = fs.open(pid, &src, OpenOptions::modify()).unwrap();
            fs.write(pid, h, &data).unwrap();
            fs.close(pid, h).unwrap();
        }
    }
    (pid, fs.is_suspended(pid))
}

/// Runs all families — concurrently or serially — over one fresh engine
/// and returns the monitor plus per-family (pid, suspended) outcomes.
fn run_all(concurrent: bool) -> (Monitor, Vec<(ProcessId, bool)>) {
    let session = CryptoDrop::builder()
        .config(config())
        .build()
        .expect("valid config");
    let outcomes = if concurrent {
        let session = &session;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..FAMILIES)
                .map(|i| scope.spawn(move |_| run_family(i, session.fork())))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("family worker must not panic"))
                .collect::<Vec<_>>()
        })
        .expect("scope must not panic")
    } else {
        (0..FAMILIES).map(|i| run_family(i, session.fork())).collect()
    };
    (session.monitor(), outcomes)
}

/// Detections sorted by pid with timestamps zeroed: the Vfs charges the
/// *measured* (wall-clock) filter overhead onto its simulated clock, so
/// `at_nanos` legitimately varies run to run; everything else must not.
fn sorted_detections(m: &Monitor) -> Vec<DetectionReport> {
    let mut d = m.detections();
    d.sort_by_key(|r| r.pid);
    for r in &mut d {
        r.at_nanos = 0;
    }
    d
}

#[test]
fn sharded_engine_matches_serial_replay() {
    let (par_monitor, par_outcomes) = run_all(true);
    let (ser_monitor, ser_outcomes) = run_all(false);

    // Same suspension outcomes: every even (ransomware) family caught,
    // every odd (benign) family untouched.
    assert_eq!(par_outcomes, ser_outcomes);
    for (i, (_, suspended)) in par_outcomes.iter().enumerate() {
        assert_eq!(
            *suspended,
            i % 2 == 0,
            "family {i} suspension mismatch (ransomware iff even)"
        );
    }

    // Identical detection reports (sorted by pid: cross-family completion
    // order is the only thing concurrency may reorder).
    let par = sorted_detections(&par_monitor);
    let ser = sorted_detections(&ser_monitor);
    assert_eq!(par, ser, "detection reports must be interleaving-invariant");
    assert_eq!(par.len(), FAMILIES / 2);

    // Identical scoreboard state and indicator audit trails (timestamps
    // excluded for the same reason as above).
    let neutralize = |mut summaries: Vec<cryptodrop::ProcessSummary>| {
        for s in &mut summaries {
            s.union_at_nanos = s.union_at_nanos.map(|_| 0);
        }
        summaries
    };
    assert_eq!(
        neutralize(par_monitor.summaries()),
        neutralize(ser_monitor.summaries())
    );
    for (pid, _) in &par_outcomes {
        assert_eq!(par_monitor.score(*pid), ser_monitor.score(*pid));
        assert_eq!(par_monitor.files_lost(*pid), ser_monitor.files_lost(*pid));
        let strip = |hits: Vec<cryptodrop::IndicatorHit>| {
            hits.into_iter()
                .map(|h| (h.indicator, h.points, h.detail))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            strip(par_monitor.hits(*pid)),
            strip(ser_monitor.hits(*pid))
        );
    }

    // Cache effectiveness is also interleaving-invariant: the same
    // refreshes hit and miss regardless of thread schedule.
    let p = par_monitor.cache_stats();
    let s = ser_monitor.cache_stats();
    assert_eq!((p.hits, p.misses), (s.hits, s.misses));
    assert!(p.hits > 0, "benign identical copies must produce cache hits");
}

#[test]
fn namespaced_vfs_instances_do_not_collide() {
    // Distinct namespaces hand out disjoint pid and file-id ranges, so
    // one engine's per-file bookkeeping cannot alias across filesystems.
    let a = Vfs::with_namespace(1).spawn_process("a.exe");
    let b = Vfs::with_namespace(2).spawn_process("b.exe");
    assert_ne!(a, b);
    assert_eq!(a, ProcessId((1 << 20) + 1));
    assert_eq!(b, ProcessId((2 << 20) + 1));
}
