//! Property tests for the snapshot-cache content fingerprint.
//!
//! The engine's zero-recompute path is only sound if the fingerprint
//! never treats changed content as unchanged in practice. These
//! properties pin the invariants the cache relies on: size alone never
//! produces a collision between distinct contents, every crate computes
//! the same fingerprint, and the engine recomputes whenever bytes
//! actually changed.

use cryptodrop::{CryptoDrop, FileSnapshot};
use cryptodrop_entropy::ByteHistogram;
use cryptodrop_simhash::content_fingerprint;
use cryptodrop_vfs::{OpenOptions, VPath, Vfs};
use proptest::prelude::*;

proptest! {
    /// Distinct contents of the *same size* fingerprint differently —
    /// size is folded in but never stands in for the bytes.
    #[test]
    fn same_size_distinct_contents_distinct_fingerprints(
        a in proptest::collection::vec(any::<u8>(), 128usize..129),
        b in proptest::collection::vec(any::<u8>(), 128usize..129),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(content_fingerprint(&a), content_fingerprint(&b));
    }

    /// The fused histogram+fingerprint pass agrees with the canonical
    /// fingerprint bit for bit (the two crates keep constants in
    /// lockstep; this is the cross-crate check).
    #[test]
    fn fused_pass_agrees_with_canonical_fingerprint(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        let (hist, fp) = ByteHistogram::from_bytes_with_fingerprint(&data);
        prop_assert_eq!(fp, content_fingerprint(&data));
        prop_assert_eq!(hist, ByteHistogram::from_bytes(&data));
    }

    /// A snapshot's fingerprint is the canonical fingerprint of the FULL
    /// content, and any single-bit mutation changes it — so a cache hit
    /// can never skip a changed file.
    #[test]
    fn single_bit_mutation_invalidates_snapshot(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        idx in any::<u16>(),
        bit in 0u32..8,
    ) {
        let snap = FileSnapshot::capture(&data, 256 * 1024);
        prop_assert_eq!(snap.fingerprint, content_fingerprint(&data));
        let mut mutated = data.clone();
        let i = (idx as usize) % mutated.len();
        mutated[i] ^= 1 << bit;
        prop_assert_ne!(content_fingerprint(&mutated), snap.fingerprint);
    }

    /// The fingerprint covers bytes beyond the digest window: mutating
    /// only the tail (outside `max_digest_bytes`) still invalidates.
    #[test]
    fn tail_mutation_beyond_digest_window_invalidates(
        head in proptest::collection::vec(any::<u8>(), 64..256),
        tail_byte in any::<u8>(),
    ) {
        let window = 64usize;
        let snap = FileSnapshot::capture(&head, window);
        let mut grown = head.clone();
        grown.push(tail_byte);
        // The appended tail must invalidate even though the digest
        // window itself is unchanged.
        prop_assert_ne!(content_fingerprint(&grown), snap.fingerprint);
    }
}

/// Engine-level invariant: a close that wrote different bytes is always a
/// cache miss (full recompute); a close that wrote identical bytes is a
/// hit. The hit path never swallows a change.
#[test]
fn engine_cache_hit_never_skips_a_changed_file() {
    for changed in [false, true] {
        let mut fs = Vfs::new();
        let docs = VPath::new("/docs");
        let path = docs.join("a.txt");
        let content: Vec<u8> = (0..)
            .flat_map(|i| format!("paragraph {i} of a perfectly normal file\n").into_bytes())
            .take(4096)
            .collect();
        fs.admin().write_file(&path, &content).unwrap();
        let monitor = CryptoDrop::builder()
            .protecting("/docs")
            .build()
            .expect("valid config");
        fs.register_filter(Box::new(monitor.fork()));
        let pid = fs.spawn_process("editor.exe");

        let h = fs.open(pid, &path, OpenOptions::modify()).unwrap();
        let mut data = fs.read_to_end(pid, h).unwrap();
        if changed {
            data[0] ^= 0x01;
        }
        fs.seek(pid, h, 0).unwrap();
        fs.write(pid, h, &data).unwrap();
        fs.close(pid, h).unwrap();

        let stats = monitor.cache_stats();
        if changed {
            // pre_op capture and close-time refresh both recompute.
            assert_eq!(stats.hits, 0, "changed content must never hit: {stats:?}");
            assert_eq!(stats.misses, 2, "{stats:?}");
        } else {
            // pre_op capture misses (first sighting); the close hits.
            assert_eq!(stats.hits, 1, "{stats:?}");
            assert_eq!(stats.misses, 1, "{stats:?}");
        }
    }
}
