//! Pipeline execution must be an implementation detail.
//!
//! `Backpressure::Sync` promises byte-identical behavior to the inline
//! engine: every operation's verdict, every detection report, every
//! indicator hit, and the final scoreboard must match an inline replay of
//! the same randomized multi-process op stream. `DegradeToInline` promises
//! something weaker but still strong: no record is ever dropped — the
//! final analysis state of a benign stream equals inline even under forced
//! queue saturation — and every degradation is counted and journaled.

use cryptodrop::{
    Backpressure, CryptoDrop, PipelineConfig, ProcessSummary, Session, Telemetry,
};
use cryptodrop_telemetry::JournalKind;
use cryptodrop_vfs::{OpenOptions, ProcessId, VPath, Vfs};

/// Deterministic xorshift stream — no wall-clock, no global RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn text_content(tag: u64, n: usize) -> Vec<u8> {
    (0..)
        .flat_map(|i| format!("doc {tag} paragraph {i} with ordinary words\n").into_bytes())
        .take(n)
        .collect()
}

fn encrypt(data: &[u8], seed: u64) -> Vec<u8> {
    let mut r = Rng(seed | 1);
    data.iter().map(|b| b ^ (r.next() >> 32) as u8).collect()
}

/// Everything observable about one replay, timestamps neutralized (the
/// Vfs charges measured wall-clock filter overhead onto its simulated
/// clock, so `at_nanos` legitimately varies run to run).
#[derive(Debug, PartialEq)]
struct Replay {
    /// One entry per attempted operation: `actor:op:outcome`.
    ops: Vec<String>,
    detections: Vec<cryptodrop::DetectionReport>,
    summaries: Vec<ProcessSummary>,
    /// Per-pid `(score, files_lost, suspended-in-vfs, stripped hits)`.
    #[allow(clippy::type_complexity)]
    state: Vec<(u32, u32, bool, Vec<(cryptodrop::Indicator, u32, String)>)>,
    cache: (u64, u64),
}

/// Replays a seeded multi-process stream through `session` and collects
/// the full observable outcome. Three actors interleave under the RNG: a
/// ransomware family (parent + child, exercising family aggregation), a
/// benign editor, and a deletion-heavy wiper — disjoint working sets, one
/// shared Vfs.
fn run_stream(session: &Session, seed: u64) -> Replay {
    let mut fs = Vfs::new();
    let docs = VPath::new("/docs");
    for f in 0..24 {
        fs.admin().write_file(&docs.join(format!("file{f}.txt")), &text_content(f, 4096))
            .unwrap();
    }
    fs.register_filter(Box::new(session.fork()));

    let evil = fs.spawn_process("evil.exe");
    let evil_child = fs.spawn_child_process(evil, "evil-child.exe");
    let editor = fs.spawn_process("editor.exe");
    let wiper = fs.spawn_process("wiper.exe");
    fs.create_dir_all(editor, &docs.join("backup")).ok();
    fs.create_dir_all(wiper, &VPath::new("/tmp")).ok();

    let mut rng = Rng(seed.max(1));
    let mut ops = Vec::new();
    let (mut evil_cursor, mut editor_cursor, mut wiper_cursor) = (0u64, 0u64, 0u64);
    let mut note = |actor: &str, op: &str, ok: bool| {
        ops.push(format!("{actor}:{op}:{}", if ok { "ok" } else { "err" }));
    };

    for _ in 0..160 {
        match rng.below(10) {
            // Ransomware: in-place encryption of files 0..12, alternating
            // between parent and child so the family aggregates.
            0..=4 => {
                let pid = if rng.below(2) == 0 { evil } else { evil_child };
                let path = docs.join(format!("file{}.txt", evil_cursor % 12));
                evil_cursor += 1;
                let Ok(h) = fs.open(pid, &path, OpenOptions::modify()) else {
                    note("evil", "open", false);
                    continue;
                };
                note("evil", "open", true);
                let Ok(data) = fs.read_to_end(pid, h) else {
                    note("evil", "read", false);
                    continue;
                };
                let ct = encrypt(&data, evil_cursor + seed);
                let wrote = fs.seek(pid, h, 0).is_ok() && fs.write(pid, h, &ct).is_ok();
                note("evil", "write", wrote);
                note("evil", "close", fs.close(pid, h).is_ok());
            }
            // Benign editor: copy a document, then a no-op re-save of the
            // original (the fingerprint cache's hit path).
            5..=7 => {
                let src = docs.join(format!("file{}.txt", 12 + editor_cursor % 6));
                editor_cursor += 1;
                let Ok(data) = fs.read_file(editor, &src) else {
                    note("editor", "read", false);
                    continue;
                };
                note("editor", "read", true);
                let copy = docs.join(format!("backup/copy{}.txt", editor_cursor % 6));
                note("editor", "copy", fs.write_file(editor, &copy, &data).is_ok());
                let Ok(h) = fs.open(editor, &src, OpenOptions::modify()) else {
                    note("editor", "open", false);
                    continue;
                };
                let saved = fs.write(editor, h, &data).is_ok() && fs.close(editor, h).is_ok();
                note("editor", "save", saved);
            }
            // Wiper: delete protected files 18..24, then rename one out of
            // the protected tree (Class B) every few rounds.
            _ => {
                let idx = 18 + wiper_cursor % 6;
                wiper_cursor += 1;
                let path = docs.join(format!("file{idx}.txt"));
                if rng.below(4) == 0 {
                    let dest = VPath::new(format!("/tmp/out{wiper_cursor}.bin"));
                    note("wiper", "rename", fs.rename(wiper, &path, &dest, true).is_ok());
                } else {
                    note("wiper", "delete", fs.delete(wiper, &path).is_ok());
                }
            }
        }
    }

    session.drain();
    let mut detections = session.detections();
    for d in &mut detections {
        d.at_nanos = 0;
    }
    let mut summaries = session.summaries();
    for s in &mut summaries {
        s.union_at_nanos = s.union_at_nanos.map(|_| 0);
    }
    let strip = |pid: ProcessId| {
        session
            .hits(pid)
            .into_iter()
            .map(|h| (h.indicator, h.points, h.detail))
            .collect::<Vec<_>>()
    };
    let state = [evil, evil_child, editor, wiper]
        .into_iter()
        .map(|pid| {
            (
                session.score(pid),
                session.files_lost(pid),
                fs.is_suspended(pid),
                strip(pid),
            )
        })
        .collect();
    let cache = {
        let c = session.cache_stats();
        (c.hits, c.misses)
    };
    Replay {
        ops,
        detections,
        summaries,
        state,
        cache,
    }
}

fn inline_session() -> Session {
    CryptoDrop::builder()
        .protecting("/docs")
        .build()
        .unwrap()
}

fn sync_session(pcfg: PipelineConfig) -> Session {
    assert_eq!(pcfg.backpressure, Backpressure::Sync);
    CryptoDrop::builder()
        .protecting("/docs")
        .pipeline_config(pcfg)
        .build()
        .unwrap()
}

#[test]
fn sync_pipeline_is_byte_identical_to_inline() {
    for seed in [0x1u64, 0xBEEF, 0xC0FFEE] {
        let inline = run_stream(&inline_session(), seed);

        // The stream must actually exercise detection: the evil family is
        // caught, the benign actors are not.
        assert!(!inline.detections.is_empty(), "seed {seed:#x}: no detection");
        assert!(inline.ops.iter().any(|o| o.starts_with("evil:") && o.ends_with(":err")));
        assert!(inline.ops.iter().all(|o| !o.starts_with("editor:") || o.ends_with(":ok")));

        // Default sizing, and a deliberately tight queue (capacity 4,
        // batch 2) that forces the producer through the blocking path.
        for pcfg in [
            PipelineConfig::default(),
            PipelineConfig {
                shards: 3,
                capacity: 4,
                workers: 2,
                max_batch: 2,
                backpressure: Backpressure::Sync,
                ..PipelineConfig::default()
            },
        ] {
            let piped = run_stream(&sync_session(pcfg), seed);
            assert_eq!(
                inline, piped,
                "seed {seed:#x}, {pcfg:?}: Sync pipeline diverged from inline"
            );
        }
    }
}

#[test]
fn degraded_pipeline_drops_nothing_and_counts_degradations() {
    // A benign-only workload (the editor loop alone), long enough to
    // saturate a capacity-1 single-shard queue: on any scheduler the
    // producer out-runs the single worker at least once, and every
    // overflow must degrade — never drop.
    let run_benign = |session: &Session| {
        let mut fs = Vfs::new();
        let docs = VPath::new("/docs");
        for f in 0..8 {
            fs.admin().write_file(&docs.join(format!("file{f}.txt")), &text_content(f, 4096))
                .unwrap();
        }
        fs.register_filter(Box::new(session.fork()));
        let pid = fs.spawn_process("editor.exe");
        fs.create_dir_all(pid, &docs.join("backup")).unwrap();
        for round in 0..40u64 {
            let src = docs.join(format!("file{}.txt", round % 8));
            let data = fs.read_file(pid, &src).unwrap();
            fs.write_file(pid, &docs.join(format!("backup/copy{}.txt", round % 8)), &data)
                .unwrap();
            let h = fs.open(pid, &src, OpenOptions::modify()).unwrap();
            fs.write(pid, h, &data).unwrap();
            fs.close(pid, h).unwrap();
        }
        session.drain();
        let c = session.cache_stats();
        (
            session.score(pid),
            session.summaries(),
            session.hits(pid).len(),
            (c.hits, c.misses),
        )
    };

    let inline = run_benign(&inline_session());

    let telemetry = Telemetry::new(16 * 1024);
    let session = CryptoDrop::builder()
        .protecting("/docs")
        .telemetry(telemetry.clone())
        .pipeline_config(PipelineConfig {
            shards: 1,
            capacity: 1,
            workers: 1,
            max_batch: 4,
            backpressure: Backpressure::DegradeToInline,
            ..PipelineConfig::default()
        })
        .build()
        .unwrap();
    let degraded_run = run_benign(&session);

    // No record dropped: the final analysis state is exactly inline's.
    // (Timestamps are not part of any compared field here.)
    assert_eq!(inline.0, degraded_run.0);
    assert_eq!(inline.2, degraded_run.2);
    assert_eq!(inline.3, degraded_run.3, "every snapshot refresh must land");
    let neutralize = |mut s: Vec<ProcessSummary>| {
        for x in &mut s {
            x.union_at_nanos = x.union_at_nanos.map(|_| 0);
        }
        s
    };
    assert_eq!(neutralize(inline.1), neutralize(degraded_run.1));

    // The saturation actually happened, and the books balance: everything
    // enqueued was processed, degradations were counted in the always-on
    // stats, mirrored in the metric registry, and journaled.
    let stats = session.pipeline_stats();
    assert!(stats.degraded > 0, "capacity-1 queue never saturated");
    assert_eq!(stats.enqueued, stats.processed, "queued records leaked");
    assert!(stats.batches > 0);
    let snap = telemetry.metrics().snapshot();
    assert_eq!(
        snap.counters.get("pipeline.degraded").copied().unwrap_or(0),
        stats.degraded
    );
    assert_eq!(
        snap.counters.get("pipeline.processed").copied().unwrap_or(0),
        stats.processed
    );
    assert!(
        telemetry
            .journal()
            .events()
            .iter()
            .any(|e| matches!(e.kind, JournalKind::Backpressure { .. })),
        "degradations must be journaled"
    );
}

/// Regression (ISSUE 7 headline): PR 6's idle-worker exponential backoff
/// plus empty→non-empty-only wake coalescing collapsed `DegradeToInline`
/// for a lone producer — every steady-state save paid a full content
/// clone, an enqueue/wake round-trip, and worker hand-off latency for
/// analysis the stamp cache resolves in O(1), leaving the never-block
/// path ~11× slower per cycle than inline. Light records now process on
/// the producer thread, so a lone producer under Degrade must stay
/// within 2× of inline ns/cycle.
#[test]
fn lone_degrade_producer_stays_within_2x_of_inline() {
    use std::time::Instant;

    let stage = |session: &Session| {
        let mut fs = Vfs::new();
        let docs = VPath::new("/docs");
        for f in 0..12 {
            fs.admin()
                .write_file(&docs.join(format!("file{f}.txt")), &text_content(f, 4096))
                .unwrap();
        }
        fs.register_filter(Box::new(session.fork()));
        let pid = fs.spawn_process("editor.exe");
        (fs, pid)
    };
    // The steady-state editor-save cycle: read-modify-write-close with
    // unchanged content, the workload the stamp cache makes O(1).
    let cycle = |fs: &mut Vfs, pid: ProcessId| {
        for f in 0..12 {
            let path = VPath::new(format!("/docs/file{f}.txt"));
            let h = fs.open(pid, &path, OpenOptions::modify()).unwrap();
            let data = fs.read_to_end(pid, h).unwrap();
            fs.seek(pid, h, 0).unwrap();
            fs.write(pid, h, &data).unwrap();
            fs.close(pid, h).unwrap();
        }
    };
    let degrade_session = || {
        CryptoDrop::builder()
            .protecting("/docs")
            .pipeline_config(PipelineConfig {
                backpressure: Backpressure::DegradeToInline,
                ..PipelineConfig::default()
            })
            .build()
            .unwrap()
    };

    // Scheduler noise only ever slows a run down, so each mode's estimate
    // is its fastest sample; the two modes run interleaved so they face
    // the same machine epochs. Extra attempts only refine the minima, so
    // retrying on a noisy miss never masks a real regression — an actual
    // 11×-slow degrade path can never produce a sample under the bound.
    let mut best = [f64::INFINITY; 2]; // [inline, degrade]
    for _attempt in 0..3 {
        let sessions = [inline_session(), degrade_session()];
        let mut staged: Vec<_> = sessions.iter().map(stage).collect();
        for (i, (fs, pid)) in staged.iter_mut().enumerate() {
            cycle(fs, *pid); // warm-up: the first cycle captures snapshots
            sessions[i].drain();
        }
        for _round in 0..5 {
            for (i, (fs, pid)) in staged.iter_mut().enumerate() {
                let started = Instant::now();
                for _ in 0..3 {
                    cycle(fs, *pid);
                }
                sessions[i].drain();
                best[i] = best[i].min(started.elapsed().as_nanos() as f64);
            }
        }
        if best[1] <= 2.0 * best[0] {
            break;
        }
    }
    assert!(
        best[1] <= 2.0 * best[0],
        "lone DegradeToInline producer regressed: degrade {:.0} ns/cycle vs inline {:.0} ns/cycle",
        best[1],
        best[0]
    );
}

#[test]
fn degraded_detections_reconcile_into_the_vfs() {
    // Under DegradeToInline a threshold crossing can land after the
    // triggering op returned Allow. The family gate stops the *next* op,
    // but a process that goes quiet stays unsuspended in the Vfs until
    // Session::reconcile applies the detection.
    let session = CryptoDrop::builder()
        .protecting("/docs")
        .pipeline_config(PipelineConfig {
            backpressure: Backpressure::DegradeToInline,
            ..PipelineConfig::default()
        })
        .build()
        .unwrap();

    let mut fs = Vfs::new();
    let docs = VPath::new("/docs");
    for f in 0..40 {
        fs.admin().write_file(&docs.join(format!("file{f}.txt")), &text_content(f, 4096))
            .unwrap();
    }
    fs.register_filter(Box::new(session.fork()));
    let pid = fs.spawn_process("evil.exe");
    for f in 0..40u64 {
        let path = docs.join(format!("file{f}.txt"));
        let Ok(h) = fs.open(pid, &path, OpenOptions::modify()) else {
            break; // family gate caught a lagged detection
        };
        let Ok(data) = fs.read_to_end(pid, h) else { break };
        let ct = encrypt(&data, f + 7);
        if fs.seek(pid, h, 0).is_err() || fs.write(pid, h, &ct).is_err() {
            break;
        }
        if fs.close(pid, h).is_err() {
            break;
        }
    }

    let applied = session.reconcile(&mut fs);
    assert!(
        !session.detections().is_empty(),
        "the attack must cross the threshold"
    );
    assert!(fs.is_suspended(pid), "reconcile must suspend the attacker");
    // Either the family gate already suspended it mid-stream (applied ==
    // 0) or reconcile did (applied == 1); both end suspended, and a second
    // reconcile is idempotent.
    assert!(applied <= 1);
    assert_eq!(session.reconcile(&mut fs), 0);
}
