//! Incremental entropy over chunked data.
//!
//! The VFS delivers file contents to the analysis engine in whatever chunk
//! sizes the monitored process chose for its I/O. [`StreamEntropy`] lets the
//! engine fold chunks in as they arrive and query the entropy of everything
//! seen so far without buffering the data itself — only the 256-bucket
//! histogram is retained.

use serde::{Deserialize, Serialize};

use crate::shannon::ByteHistogram;

/// Incrementally measures the Shannon entropy of a byte stream.
///
/// # Examples
///
/// ```
/// use cryptodrop_entropy::{shannon_entropy, StreamEntropy};
///
/// let mut s = StreamEntropy::new();
/// s.push(b"hello ");
/// s.push(b"world");
/// assert_eq!(s.entropy(), shannon_entropy(b"hello world"));
/// assert_eq!(s.bytes_seen(), 11);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamEntropy {
    histogram: ByteHistogram,
    chunks: u64,
}

impl StreamEntropy {
    /// Creates an empty stream measurer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a chunk into the stream.
    pub fn push(&mut self, chunk: &[u8]) {
        self.histogram.add(chunk);
        self.chunks += 1;
    }

    /// The entropy of all bytes pushed so far, in bits/byte.
    pub fn entropy(&self) -> f64 {
        self.histogram.entropy()
    }

    /// Delta-updates the stream: the bytes of `old` (previously pushed, e.g.
    /// a dirty extent's pre-image) are replaced by `new` without re-reading
    /// anything else. Counts as one chunk, like [`StreamEntropy::push`].
    ///
    /// # Panics
    ///
    /// Panics if `old` removes a byte more times than it was pushed.
    pub fn replace(&mut self, old: &[u8], new: &[u8]) {
        self.histogram.replace(old, new);
        self.chunks += 1;
    }

    /// The entropy via the table-driven fold (see
    /// [`ByteHistogram::entropy_lut`]); agrees with
    /// [`StreamEntropy::entropy`] to within floating-point rounding.
    pub fn entropy_lut(&self) -> f64 {
        self.histogram.entropy_lut()
    }

    /// Total bytes pushed so far.
    pub fn bytes_seen(&self) -> u64 {
        self.histogram.total()
    }

    /// Total chunks pushed so far.
    pub fn chunks_seen(&self) -> u64 {
        self.chunks
    }

    /// Returns a view of the underlying histogram.
    pub fn histogram(&self) -> &ByteHistogram {
        &self.histogram
    }

    /// Resets the measurer to its initial state, retaining no history.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Consumes the measurer and returns the accumulated histogram.
    pub fn into_histogram(self) -> ByteHistogram {
        self.histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shannon_entropy;

    #[test]
    fn chunked_equals_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let mut s = StreamEntropy::new();
        for chunk in data.chunks(7) {
            s.push(chunk);
        }
        assert_eq!(s.entropy(), shannon_entropy(&data));
        assert_eq!(s.bytes_seen(), 1000);
        assert_eq!(s.chunks_seen(), 1000_u64.div_ceil(7));
    }

    #[test]
    fn empty_stream_is_zero() {
        let s = StreamEntropy::new();
        assert_eq!(s.entropy(), 0.0);
        assert_eq!(s.bytes_seen(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = StreamEntropy::new();
        s.push(b"abcdef");
        s.reset();
        assert_eq!(s, StreamEntropy::new());
    }

    #[test]
    fn into_histogram_round_trip() {
        let mut s = StreamEntropy::new();
        s.push(b"xyzzy");
        let h = s.into_histogram();
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(b'z'), 2);
    }

    #[test]
    fn replace_matches_rebuilt_stream() {
        let mut s = StreamEntropy::new();
        s.push(b"the quick brown fox");
        s.replace(b"quick", b"rapid");
        let mut rebuilt = StreamEntropy::new();
        rebuilt.push(b"the rapid brown fox");
        assert_eq!(s.entropy(), rebuilt.entropy());
        assert_eq!(s.histogram(), rebuilt.histogram());
        assert!((s.entropy_lut() - s.entropy()).abs() < 1e-9);
    }

    #[test]
    fn empty_chunks_count_but_do_not_change_entropy() {
        let mut s = StreamEntropy::new();
        s.push(b"data");
        let e = s.entropy();
        s.push(b"");
        assert_eq!(s.entropy(), e);
        assert_eq!(s.chunks_seen(), 2);
    }
}
