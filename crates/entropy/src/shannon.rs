//! Exact Shannon entropy of byte arrays.
//!
//! The paper (§III-C) defines the entropy of an array of bytes as
//!
//! ```text
//!         255
//!     e =  Σ  P(Bi) · log2(1 / P(Bi)),    P(Bi) = Fi / total_bytes
//!         i=0
//! ```
//!
//! where `Fi` is the number of occurrences of byte value `i`. The result
//! ranges from `0` (a single repeated byte value) to `8` (a perfectly even
//! distribution), and ciphertext is expected to approach the upper bound.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

/// `c · log2(c)` for every `u16` count, built once on first use.
///
/// The entropy fold `H = log2(N) − (Σ c·log2 c) / N` spends all its time in
/// the `n·log n` term; with the table the per-bucket work is one load and
/// one add — no `log2` call and no probability division — which is what
/// makes delta-updated histograms cheap enough for the per-close
/// incremental path.
static CLOG2_U16: OnceLock<Vec<f64>> = OnceLock::new();

fn clog2_table() -> &'static [f64] {
    CLOG2_U16.get_or_init(|| {
        let mut t = vec![0.0f64; 1 << 16];
        for (c, slot) in t.iter_mut().enumerate().skip(2) {
            *slot = c as f64 * (c as f64).log2();
        }
        t
    })
}

/// `n · log2(n)`, table-driven for `n < 65536` (0 for `n ≤ 1`).
///
/// Counts above the table fall back to the direct computation, so the
/// function is exact-to-f64 for every input.
#[inline]
pub fn clog2(n: u64) -> f64 {
    if n < (1 << 16) {
        clog2_table()[n as usize]
    } else {
        n as f64 * (n as f64).log2()
    }
}

/// A 256-bucket histogram of byte values supporting incremental updates.
///
/// The histogram is the reusable core behind both one-shot
/// [`shannon_entropy`] and the incremental [`StreamEntropy`] measurer: adding
/// or removing bytes is `O(n)` in the bytes touched, and entropy evaluation
/// is `O(256)`.
///
/// [`StreamEntropy`]: crate::stream::StreamEntropy
///
/// # Examples
///
/// ```
/// use cryptodrop_entropy::ByteHistogram;
///
/// let mut h = ByteHistogram::new();
/// h.add(b"aaaa");
/// assert_eq!(h.entropy(), 0.0);
/// h.add(b"bbbb");
/// assert_eq!(h.entropy(), 1.0); // two equiprobable symbols = 1 bit
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct ByteHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl ByteHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; 256],
            total: 0,
        }
    }

    /// Builds a histogram from a byte slice in one shot.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut h = Self::new();
        h.add(bytes);
        h
    }

    /// Builds a histogram and a 64-bit content fingerprint of `bytes` in
    /// one fused pass.
    ///
    /// The fingerprint is FNV-1a over the bytes with the length folded in
    /// and a final avalanche mix — bit-for-bit the same function as
    /// `cryptodrop_simhash::content_fingerprint` (the two crates keep the
    /// constants in lockstep; the workspace suite cross-checks them).
    /// Callers that need both the entropy of a buffer and its identity
    /// key (the analysis engine's snapshot refresh path) pay a single
    /// traversal instead of two.
    pub fn from_bytes_with_fingerprint(bytes: &[u8]) -> (Self, u64) {
        let mut counts = vec![0u64; 256];
        // FNV-1a 64 offset basis / prime.
        let mut fnv = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            counts[b as usize] += 1;
            fnv ^= u64::from(b);
            fnv = fnv.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let len = bytes.len() as u64;
        // Length fold + splitmix64 finalizer (matches `content_fingerprint`).
        let mut h = fnv ^ len.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (Self { counts, total: len }, h)
    }

    /// Adds every byte of `bytes` to the histogram.
    pub fn add(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.counts[b as usize] += 1;
        }
        self.total += bytes.len() as u64;
    }

    /// Adds a single byte to the histogram.
    pub fn add_byte(&mut self, byte: u8) {
        self.counts[byte as usize] += 1;
        self.total += 1;
    }

    /// Removes every byte of `bytes` from the histogram.
    ///
    /// # Panics
    ///
    /// Panics if a byte is removed more times than it was added; the
    /// histogram would otherwise silently hold a corrupt distribution.
    pub fn remove(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let c = &mut self.counts[b as usize];
            assert!(*c > 0, "removed byte {b:#04x} more times than added");
            *c -= 1;
        }
        self.total -= bytes.len() as u64;
    }

    /// The total number of bytes currently accounted for.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The number of occurrences of byte value `value`.
    pub fn count(&self, value: u8) -> u64 {
        self.counts[value as usize]
    }

    /// The number of distinct byte values present.
    pub fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Returns `true` if no bytes have been added.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The Shannon entropy of the histogram's distribution in bits/byte.
    ///
    /// Returns `0.0` for an empty histogram, matching the convention that an
    /// empty write carries no information (and the paper's weighting assigns
    /// it zero weight anyway).
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        let mut e = 0.0;
        for &c in &self.counts {
            if c == 0 {
                continue;
            }
            let p = c as f64 / total;
            e -= p * p.log2();
        }
        // Clamp tiny negative rounding residue (e.g. single-symbol input).
        e.max(0.0)
    }

    /// The Shannon entropy via the [`clog2`] lookup table, in bits/byte.
    ///
    /// Computes `H = log2(N) − (Σ c·log2 c) / N` — algebraically identical
    /// to [`ByteHistogram::entropy`] but with a branch-free table fold in
    /// place of 256 `log2` calls, so it is the form the incremental
    /// (delta-updated) analysis path uses. The two agree to well within
    /// `1e-9` (they differ only in floating-point rounding order).
    pub fn entropy_lut(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let table = clog2_table();
        let mut s = 0.0f64;
        for &c in &self.counts {
            s += if c < (1 << 16) {
                table[c as usize]
            } else {
                c as f64 * (c as f64).log2()
            };
        }
        let total = self.total as f64;
        (total.log2() - s / total).max(0.0)
    }

    /// Delta-updates the histogram: removes the pre-image bytes of a dirty
    /// extent and adds the bytes now occupying it.
    ///
    /// The two slices need not be the same length (a tail extension has an
    /// empty pre-image). Equivalent to `remove(old)` + `add(new)`.
    ///
    /// # Panics
    ///
    /// Panics if a byte of `old` is removed more times than it was added
    /// (see [`ByteHistogram::remove`]).
    pub fn replace(&mut self, old: &[u8], new: &[u8]) {
        self.add(new);
        self.remove(old);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ByteHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
    }
}

impl Default for ByteHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The LUT entropy of a byte slice, bit-identical to
/// `ByteHistogram::from_bytes(bytes).entropy_lut()` but computed on a
/// stack histogram — allocation-free, for per-operation hot paths and
/// the incremental-analysis assertion nets.
pub fn entropy_lut_of(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let table = clog2_table();
    let mut s = 0.0f64;
    for &c in &counts {
        s += if c < (1 << 16) {
            table[c as usize]
        } else {
            c as f64 * (c as f64).log2()
        };
    }
    let total = bytes.len() as f64;
    (total.log2() - s / total).max(0.0)
}

impl std::fmt::Debug for ByteHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteHistogram")
            .field("total", &self.total)
            .field("distinct", &self.distinct())
            .field("entropy", &self.entropy())
            .finish()
    }
}

impl PartialEq for ByteHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.counts == other.counts
    }
}

impl Eq for ByteHistogram {}

impl<'a> FromIterator<&'a u8> for ByteHistogram {
    fn from_iter<I: IntoIterator<Item = &'a u8>>(iter: I) -> Self {
        let mut h = ByteHistogram::new();
        for &b in iter {
            h.add_byte(b);
        }
        h
    }
}

impl Extend<u8> for ByteHistogram {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for b in iter {
            self.add_byte(b);
        }
    }
}

/// Computes the Shannon entropy of `bytes` in bits/byte (paper §III-C).
///
/// Returns a value in `[0, 8]`; `0.0` for empty input.
///
/// # Examples
///
/// ```
/// use cryptodrop_entropy::shannon_entropy;
///
/// assert_eq!(shannon_entropy(&[0u8; 128]), 0.0);
/// let all: Vec<u8> = (0..=255).collect();
/// assert!((shannon_entropy(&all) - 8.0).abs() < 1e-12);
/// ```
pub fn shannon_entropy(bytes: &[u8]) -> f64 {
    ByteHistogram::from_bytes(bytes).entropy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert!(ByteHistogram::new().is_empty());
    }

    #[test]
    fn single_symbol_is_zero() {
        assert_eq!(shannon_entropy(&[0x41; 1000]), 0.0);
    }

    #[test]
    fn two_equiprobable_symbols_is_one_bit() {
        let mut data = vec![0u8; 512];
        data.extend(vec![255u8; 512]);
        assert!((shannon_entropy(&data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_bytes_hit_upper_bound() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        assert!((shannon_entropy(&data) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn four_symbols_is_two_bits() {
        let data: Vec<u8> = [1u8, 2, 3, 4].iter().cycle().take(400).copied().collect();
        assert!((shannon_entropy(&data) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn english_text_is_mid_range() {
        let text = b"It was the best of times, it was the worst of times, it was \
                     the age of wisdom, it was the age of foolishness.";
        let e = shannon_entropy(text);
        assert!(e > 3.0 && e < 5.0, "got {e}");
    }

    #[test]
    fn histogram_incremental_matches_oneshot() {
        let a = b"hello ";
        let b = b"world";
        let mut h = ByteHistogram::new();
        h.add(a);
        h.add(b);
        let mut joined = a.to_vec();
        joined.extend_from_slice(b);
        assert_eq!(h.entropy(), shannon_entropy(&joined));
        assert_eq!(h.total(), joined.len() as u64);
    }

    #[test]
    fn histogram_remove_restores_state() {
        let base = b"the quick brown fox";
        let extra = b"0123456789abcdef";
        let mut h = ByteHistogram::from_bytes(base);
        let before = h.entropy();
        h.add(extra);
        h.remove(extra);
        assert_eq!(h.entropy(), before);
        assert_eq!(h, ByteHistogram::from_bytes(base));
    }

    #[test]
    #[should_panic(expected = "more times than added")]
    fn histogram_over_remove_panics() {
        let mut h = ByteHistogram::from_bytes(b"abc");
        h.remove(b"abcd");
    }

    #[test]
    fn histogram_merge_matches_concat() {
        let mut h1 = ByteHistogram::from_bytes(b"foo bar baz");
        let h2 = ByteHistogram::from_bytes(b"quux");
        h1.merge(&h2);
        assert_eq!(h1, ByteHistogram::from_bytes(b"foo bar bazquux"));
    }

    #[test]
    fn histogram_counts_and_distinct() {
        let h = ByteHistogram::from_bytes(b"aabbbc");
        assert_eq!(h.count(b'a'), 2);
        assert_eq!(h.count(b'b'), 3);
        assert_eq!(h.count(b'c'), 1);
        assert_eq!(h.count(b'z'), 0);
        assert_eq!(h.distinct(), 3);
    }

    #[test]
    fn histogram_from_iterator_and_extend() {
        let bytes = b"hello";
        let h: ByteHistogram = bytes.iter().collect();
        assert_eq!(h, ByteHistogram::from_bytes(bytes));
        let mut h2 = ByteHistogram::new();
        h2.extend(bytes.iter().copied());
        assert_eq!(h2, h);
    }

    #[test]
    fn fused_pass_matches_plain_histogram() {
        for data in [&b""[..], b"aabbbc", b"the quick brown fox", &[0u8; 512]] {
            let (h, fp) = ByteHistogram::from_bytes_with_fingerprint(data);
            assert_eq!(h, ByteHistogram::from_bytes(data));
            let (h2, fp2) = ByteHistogram::from_bytes_with_fingerprint(data);
            assert_eq!(h2, h);
            assert_eq!(fp2, fp, "fingerprint must be deterministic");
        }
    }

    #[test]
    fn fused_fingerprint_separates_contents() {
        let (_, a) = ByteHistogram::from_bytes_with_fingerprint(b"abc");
        let (_, b) = ByteHistogram::from_bytes_with_fingerprint(b"abd");
        let (_, c) = ByteHistogram::from_bytes_with_fingerprint(b"acb");
        assert_ne!(a, b);
        // Same histogram, different byte order: the fingerprint is
        // order-sensitive even though the histogram is not.
        assert_ne!(a, c);
    }

    #[test]
    fn debug_is_nonempty() {
        let h = ByteHistogram::new();
        assert!(!format!("{h:?}").is_empty());
    }

    #[test]
    fn clog2_table_matches_direct() {
        assert_eq!(clog2(0), 0.0);
        assert_eq!(clog2(1), 0.0);
        for n in [2u64, 3, 64, 255, 65535] {
            assert_eq!(clog2(n), n as f64 * (n as f64).log2());
        }
        // Above the table: direct fallback, still exact.
        let n = 1u64 << 20;
        assert_eq!(clog2(n), n as f64 * (n as f64).log2());
    }

    #[test]
    fn entropy_lut_matches_entropy() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x41; 1000],
            (0..=255u8).cycle().take(4096).collect(),
            b"It was the best of times, it was the worst of times.".to_vec(),
        ];
        for data in cases {
            let h = ByteHistogram::from_bytes(&data);
            assert!(
                (h.entropy_lut() - h.entropy()).abs() < 1e-9,
                "lut {} vs direct {}",
                h.entropy_lut(),
                h.entropy()
            );
        }
    }

    #[test]
    fn entropy_lut_of_is_bit_identical_to_histogram_lut() {
        let mut seed = 0xC0FF_EE00u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x41; 1000],
            (0..=255u8).cycle().take(4096).collect(),
        ];
        for _ in 0..20 {
            let len = next() as usize % 8192;
            cases.push((0..len).map(|_| next() as u8).collect());
        }
        for data in cases {
            // Exact equality: the stamp-reuse path substitutes one for
            // the other, so any rounding divergence is a verdict change.
            assert_eq!(
                entropy_lut_of(&data),
                ByteHistogram::from_bytes(&data).entropy_lut(),
                "stack fold diverged on {} bytes",
                data.len()
            );
        }
    }

    #[test]
    fn entropy_lut_handles_counts_beyond_table() {
        let mut h = ByteHistogram::new();
        // A count past the u16 table forces the direct fallback per bucket.
        for _ in 0..(1u64 << 16) + 7 {
            h.add_byte(0x00);
        }
        h.add(b"mixture");
        assert!((h.entropy_lut() - h.entropy()).abs() < 1e-9);
    }

    /// Property test: for random dirty-extent patterns, a delta-updated
    /// histogram's entropy equals `shannon_entropy` of the final bytes to
    /// within 1e-9 (the incremental-analysis equivalence the engine's
    /// close path relies on).
    #[test]
    fn delta_update_matches_full_recompute() {
        let mut seed = 0x9E37_79B9u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..50 {
            let len = 256 + (next() as usize % 4096);
            let mut data: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let mut h = ByteHistogram::from_bytes(&data);
            // Apply 1..=8 random extent mutations, including tail growth.
            for _ in 0..1 + next() % 8 {
                let grow = next() % 4 == 0;
                if grow {
                    let added: Vec<u8> = (0..1 + next() as usize % 512).map(|_| next() as u8).collect();
                    h.replace(&[], &added);
                    data.extend_from_slice(&added);
                } else {
                    let start = next() as usize % data.len();
                    let end = (start + 1 + next() as usize % 256).min(data.len());
                    let fresh: Vec<u8> = (start..end).map(|_| next() as u8).collect();
                    let old = data[start..end].to_vec();
                    h.replace(&old, &fresh);
                    data[start..end].copy_from_slice(&fresh);
                }
            }
            let delta = h.entropy_lut();
            let full = shannon_entropy(&data);
            assert!(
                (delta - full).abs() < 1e-9,
                "case {case}: delta {delta} vs full {full}"
            );
            assert_eq!(h, ByteHistogram::from_bytes(&data), "counts must match exactly");
        }
    }
}
