//! The paper's weighted arithmetic mean of per-operation entropies.
//!
//! Ransomware often writes small, low-entropy ransom notes into every
//! directory it visits. A plain average of per-operation entropies would let
//! those writes drag the write-side mean down and mask the encryption
//! activity. The paper (§IV-C1) therefore weights each measurement by
//!
//! ```text
//!     w = 0.125 · ⌊e⌉ · b
//! ```
//!
//! where `b` is the number of bytes in the operation and `⌊e⌉` is the
//! operation's entropy rounded to the nearest integer; the constant `0.125 =
//! 1/8` normalizes `0.125 · ⌊e⌉` into `[0, 1]`. Low-entropy and small
//! operations thus contribute little to the mean.

use serde::{Deserialize, Serialize};

use crate::SUSPICIOUS_DELTA;

/// A weighted running mean of per-operation entropy measurements
/// (paper §IV-C1).
///
/// One instance tracks one direction (reads or writes) for one process. Use
/// [`EntropyDelta`] to pair the two directions and evaluate the paper's
/// `Δe = P_write − P_read ≥ 0.1` condition.
///
/// # Examples
///
/// ```
/// use cryptodrop_entropy::WeightedEntropyMean;
///
/// let mut m = WeightedEntropyMean::new();
/// assert!(m.mean().is_none(), "no observations yet");
/// m.update(7.8, 64 * 1024); // bulk ciphertext write
/// m.update(0.9, 200);       // ransom note
/// assert!(m.mean().unwrap() > 7.5, "note barely moves the mean");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WeightedEntropyMean {
    weighted_sum: f64,
    weight_total: f64,
    observations: u64,
}

impl WeightedEntropyMean {
    /// Creates a mean with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's weight for one operation: `w = 0.125 · ⌊e⌉ · b`.
    ///
    /// `entropy` must lie in `[0, 8]`; values outside are clamped. An
    /// operation of zero bytes, or one whose entropy rounds to zero, carries
    /// zero weight and therefore does not move the mean.
    pub fn weight(entropy: f64, bytes: u64) -> f64 {
        let e = entropy.clamp(0.0, 8.0);
        0.125 * e.round() * bytes as f64
    }

    /// Folds one operation's entropy measurement into the mean.
    pub fn update(&mut self, entropy: f64, bytes: u64) {
        let w = Self::weight(entropy, bytes);
        self.weighted_sum += w * entropy.clamp(0.0, 8.0);
        self.weight_total += w;
        self.observations += 1;
    }

    /// The current weighted mean, or `None` until at least one observation
    /// with nonzero weight has arrived.
    pub fn mean(&self) -> Option<f64> {
        (self.weight_total > 0.0).then(|| self.weighted_sum / self.weight_total)
    }

    /// The number of operations folded in (including zero-weight ones).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Returns `true` if at least one operation has been observed, even if
    /// all observations carried zero weight.
    pub fn has_observations(&self) -> bool {
        self.observations > 0
    }
}

/// Pairs the read- and write-side weighted means for one process and
/// evaluates the paper's entropy-delta condition (§IV-C1).
///
/// The delta is only defined once the process "has performed at least one
/// read and one write"; until then [`EntropyDelta::delta`] returns `None`.
/// The comparison is *stateless with regard to the previous or future state
/// of a file*: it is evaluated after every update.
///
/// # Examples
///
/// ```
/// use cryptodrop_entropy::EntropyDelta;
///
/// let mut d = EntropyDelta::new();
/// d.record_read(4.1, 8192);   // reads a text document
/// d.record_write(7.9, 8192);  // writes ciphertext
/// assert!(d.is_suspicious());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EntropyDelta {
    reads: WeightedEntropyMean,
    writes: WeightedEntropyMean,
}

impl EntropyDelta {
    /// Creates a tracker with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read operation of `bytes` bytes with the given entropy.
    pub fn record_read(&mut self, entropy: f64, bytes: u64) {
        self.reads.update(entropy, bytes);
    }

    /// Records a write operation of `bytes` bytes with the given entropy.
    pub fn record_write(&mut self, entropy: f64, bytes: u64) {
        self.writes.update(entropy, bytes);
    }

    /// The read-side weighted mean.
    pub fn read_mean(&self) -> Option<f64> {
        self.reads.mean()
    }

    /// The write-side weighted mean.
    pub fn write_mean(&self) -> Option<f64> {
        self.writes.mean()
    }

    /// `Δe = max(P_write − P_read, 0)`, or `None` until both a read and a
    /// write with nonzero weight have been observed (paper: "if a process
    /// has performed at least one read and one write").
    pub fn delta(&self) -> Option<f64> {
        match (self.reads.mean(), self.writes.mean()) {
            (Some(r), Some(w)) => Some((w - r).max(0.0)),
            _ => None,
        }
    }

    /// Evaluates the paper's suspicion condition `Δe ≥ 0.1`.
    pub fn is_suspicious(&self) -> bool {
        self.delta_exceeds(SUSPICIOUS_DELTA)
    }

    /// Evaluates `Δe ≥ threshold` for a caller-chosen threshold.
    pub fn delta_exceeds(&self, threshold: f64) -> bool {
        self.delta().is_some_and(|d| d >= threshold)
    }

    /// Total read operations observed.
    pub fn read_observations(&self) -> u64 {
        self.reads.observations()
    }

    /// Total write operations observed.
    pub fn write_observations(&self) -> u64 {
        self.writes.observations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_formula_matches_paper() {
        // w = 0.125 * round(e) * b
        assert_eq!(WeightedEntropyMean::weight(8.0, 100), 100.0);
        assert_eq!(WeightedEntropyMean::weight(4.0, 100), 50.0);
        assert_eq!(WeightedEntropyMean::weight(0.3, 100), 0.0); // rounds to 0
        assert_eq!(WeightedEntropyMean::weight(7.6, 10), 10.0); // rounds to 8
        assert_eq!(WeightedEntropyMean::weight(5.0, 0), 0.0);
    }

    #[test]
    fn weight_clamps_out_of_range_entropy() {
        assert_eq!(WeightedEntropyMean::weight(9.5, 8), 8.0);
        assert_eq!(WeightedEntropyMean::weight(-1.0, 8), 0.0);
    }

    #[test]
    fn empty_mean_is_none() {
        assert_eq!(WeightedEntropyMean::new().mean(), None);
    }

    #[test]
    fn zero_weight_observations_do_not_define_mean() {
        let mut m = WeightedEntropyMean::new();
        m.update(0.2, 1_000_000); // rounds to 0 -> zero weight
        assert_eq!(m.mean(), None);
        assert_eq!(m.observations(), 1);
        assert!(m.has_observations());
    }

    #[test]
    fn single_observation_mean_is_its_entropy() {
        let mut m = WeightedEntropyMean::new();
        m.update(6.25, 512);
        let got = m.mean().unwrap();
        assert!((got - 6.25).abs() < 1e-12);
    }

    #[test]
    fn ransom_note_does_not_drag_mean_down() {
        // The motivating scenario from §IV-C1: small low-entropy note writes
        // must not over-influence the mean.
        let mut m = WeightedEntropyMean::new();
        for _ in 0..10 {
            m.update(7.9, 256 * 1024); // encrypted file bodies
        }
        for _ in 0..100 {
            m.update(1.4, 300); // ransom notes in every directory
        }
        assert!(m.mean().unwrap() > 7.8, "mean = {:?}", m.mean());

        // Contrast with an unweighted mean which would collapse:
        let unweighted = (10.0 * 7.9 + 100.0 * 1.4) / 110.0;
        assert!(unweighted < 2.0);
    }

    #[test]
    fn delta_requires_both_directions() {
        let mut d = EntropyDelta::new();
        assert_eq!(d.delta(), None);
        d.record_read(4.0, 1024);
        assert_eq!(d.delta(), None);
        d.record_write(7.9, 1024);
        assert!(d.delta().is_some());
    }

    #[test]
    fn delta_is_clamped_to_non_negative() {
        let mut d = EntropyDelta::new();
        d.record_read(7.9, 1024); // reads already-compressed data
        d.record_write(4.0, 1024);
        assert_eq!(d.delta(), Some(0.0));
        assert!(!d.is_suspicious());
    }

    #[test]
    fn encryption_of_text_is_suspicious() {
        let mut d = EntropyDelta::new();
        d.record_read(4.2, 8192);
        d.record_write(7.97, 8192);
        assert!(d.is_suspicious());
        assert!(d.delta().unwrap() > 3.0);
    }

    #[test]
    fn compressed_source_gives_small_but_detectable_delta() {
        // Paper §III/§V-D: .docx/.pdf sources are already high-entropy, so
        // the delta is small — the 0.1 threshold is chosen to still resolve it.
        let mut d = EntropyDelta::new();
        d.record_read(7.82, 65536);
        d.record_write(7.98, 65536);
        let delta = d.delta().unwrap();
        assert!(delta > 0.1 && delta < 0.5, "delta = {delta}");
        assert!(d.is_suspicious());
    }

    #[test]
    fn custom_threshold() {
        let mut d = EntropyDelta::new();
        d.record_read(7.0, 100);
        d.record_write(7.3, 100);
        assert!(d.delta_exceeds(0.2));
        assert!(!d.delta_exceeds(0.5));
    }

    #[test]
    fn observation_counters() {
        let mut d = EntropyDelta::new();
        d.record_read(4.0, 10);
        d.record_read(4.0, 10);
        d.record_write(5.0, 10);
        assert_eq!(d.read_observations(), 2);
        assert_eq!(d.write_observations(), 1);
    }
}
