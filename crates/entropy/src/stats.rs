//! Auxiliary randomness statistics.
//!
//! Shannon entropy alone cannot distinguish ciphertext from, say, a byte
//! sequence that cycles `0..=255` — both score 8.0 bits/byte. These extra
//! statistics (chi-square uniformity and lag-1 serial correlation, the same
//! measures popularized by the classic `ent` tool) are used by the test
//! suite and by the malware simulator's self-checks to validate that the
//! in-repo ciphers produce output that is *statistically* ciphertext-like,
//! which is what the paper's indicators implicitly assume.

use serde::{Deserialize, Serialize};

use crate::shannon::ByteHistogram;
use crate::shannon_entropy;

/// The chi-square statistic of `bytes` against the uniform distribution over
/// the 256 byte values.
///
/// For genuinely uniform random data the statistic concentrates around the
/// degrees of freedom (255); strongly structured data produces far larger
/// values. Returns `0.0` for empty input.
///
/// # Examples
///
/// ```
/// use cryptodrop_entropy::chi_square_uniformity;
///
/// let structured = vec![7u8; 4096];
/// assert!(chi_square_uniformity(&structured) > 100_000.0);
/// ```
pub fn chi_square_uniformity(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let h = ByteHistogram::from_bytes(bytes);
    let expected = bytes.len() as f64 / 256.0;
    (0u16..=255)
        .map(|v| {
            let observed = h.count(v as u8) as f64;
            let d = observed - expected;
            d * d / expected
        })
        .sum()
}

/// The lag-1 serial correlation coefficient of `bytes`, in `[-1, 1]`.
///
/// Random data yields values near `0`; monotone or repetitive data yields
/// values near `±1`. Returns `0.0` for inputs shorter than 2 bytes or with
/// zero variance.
///
/// # Examples
///
/// ```
/// use cryptodrop_entropy::serial_correlation;
///
/// let ramp: Vec<u8> = (0u8..=255).collect();
/// assert!(serial_correlation(&ramp) > 0.9, "a ramp is highly self-correlated");
/// ```
pub fn serial_correlation(bytes: &[u8]) -> f64 {
    let n = bytes.len();
    if n < 2 {
        return 0.0;
    }
    // Circular lag-1 correlation, as in `ent`.
    let nf = n as f64;
    let mut sum_x = 0.0;
    let mut sum_x2 = 0.0;
    let mut sum_xy = 0.0;
    for i in 0..n {
        let x = bytes[i] as f64;
        let y = bytes[(i + 1) % n] as f64;
        sum_x += x;
        sum_x2 += x * x;
        sum_xy += x * y;
    }
    let num = nf * sum_xy - sum_x * sum_x;
    let den = nf * sum_x2 - sum_x * sum_x;
    if den == 0.0 {
        0.0
    } else {
        (num / den).clamp(-1.0, 1.0)
    }
}

/// A bundle of randomness measurements over one buffer.
///
/// # Examples
///
/// ```
/// use cryptodrop_entropy::RandomnessReport;
///
/// let r = RandomnessReport::measure(b"aaaaaaaaaaaaaaaa");
/// assert_eq!(r.entropy, 0.0);
/// assert!(!r.looks_random());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomnessReport {
    /// Shannon entropy in bits/byte.
    pub entropy: f64,
    /// Chi-square statistic vs. the uniform byte distribution.
    pub chi_square: f64,
    /// Lag-1 serial correlation coefficient.
    pub serial_correlation: f64,
    /// Number of bytes measured.
    pub len: usize,
}

impl RandomnessReport {
    /// Measures all statistics over `bytes`.
    pub fn measure(bytes: &[u8]) -> Self {
        Self {
            entropy: shannon_entropy(bytes),
            chi_square: chi_square_uniformity(bytes),
            serial_correlation: serial_correlation(bytes),
            len: bytes.len(),
        }
    }

    /// A loose composite judgement: does this buffer plausibly look like
    /// ciphertext / random data?
    ///
    /// Requires near-maximal entropy, a chi-square statistic within a broad
    /// band around the 255 degrees of freedom, and near-zero serial
    /// correlation. Intended for test assertions, not detection — the
    /// detector proper uses the paper's indicators.
    pub fn looks_random(&self) -> bool {
        self.len >= 1024
            && self.entropy > 7.8
            && self.chi_square < 512.0
            && self.serial_correlation.abs() < 0.05
    }
}

impl std::fmt::Display for RandomnessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "entropy={:.4} b/B, chi2={:.1}, serial={:.4}, n={}",
            self.entropy, self.chi_square, self.serial_correlation, self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic xorshift so the tests need no external PRNG.
    fn pseudo_random(n: usize) -> Vec<u8> {
        let mut s: u64 = 0x9e3779b97f4a7c15;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            out.push((s >> 32) as u8);
        }
        out
    }

    #[test]
    fn chi_square_of_uniform_cycle_is_zero() {
        let data: Vec<u8> = (0u8..=255).cycle().take(25600).collect();
        assert_eq!(chi_square_uniformity(&data), 0.0);
    }

    #[test]
    fn chi_square_of_constant_is_huge() {
        assert!(chi_square_uniformity(&[0u8; 2560]) > 100_000.0);
    }

    #[test]
    fn chi_square_of_random_is_near_dof() {
        let data = pseudo_random(65536);
        let chi = chi_square_uniformity(&data);
        assert!(chi > 100.0 && chi < 512.0, "chi = {chi}");
    }

    #[test]
    fn serial_correlation_of_ramp_is_high() {
        let ramp: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
        assert!(serial_correlation(&ramp) > 0.95);
    }

    #[test]
    fn serial_correlation_of_random_is_low() {
        let data = pseudo_random(65536);
        assert!(serial_correlation(&data).abs() < 0.02);
    }

    #[test]
    fn serial_correlation_degenerate_inputs() {
        assert_eq!(serial_correlation(&[]), 0.0);
        assert_eq!(serial_correlation(&[1]), 0.0);
        assert_eq!(serial_correlation(&[5; 100]), 0.0, "zero variance");
    }

    #[test]
    fn report_random_vs_text() {
        let random = RandomnessReport::measure(&pseudo_random(16384));
        assert!(random.looks_random(), "{random}");

        let text: Vec<u8> = b"all work and no play makes jack a dull boy. "
            .iter()
            .cycle()
            .take(16384)
            .copied()
            .collect();
        let text_report = RandomnessReport::measure(&text);
        assert!(!text_report.looks_random(), "{text_report}");
    }

    #[test]
    fn report_short_buffers_never_look_random() {
        let r = RandomnessReport::measure(&pseudo_random(512));
        assert!(!r.looks_random());
    }

    #[test]
    fn display_is_nonempty() {
        let r = RandomnessReport::measure(b"x");
        assert!(!r.to_string().is_empty());
    }
}
