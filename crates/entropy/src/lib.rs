//! Shannon-entropy measurement primitives for the CryptoDrop reproduction.
//!
//! CryptoDrop's third primary indicator ("Shannon Entropy", paper §III-C)
//! measures the byte-level entropy of every atomic read and write a process
//! performs against protected user documents, and maintains a *weighted
//! arithmetic mean* of those measurements per direction (read vs. write).
//! When the write-side mean exceeds the read-side mean by at least `0.1`
//! bits/byte, the operation is flagged as suspicious (paper §IV-C1).
//!
//! This crate provides:
//!
//! * [`shannon`] — byte histograms and exact Shannon entropy in bits/byte,
//! * [`weighted`] — the paper's weighted running mean with
//!   `w = 0.125 · ⌊e⌉ · b`,
//! * [`stream`] — incremental entropy over chunked data,
//! * [`stats`] — auxiliary randomness statistics (chi-square uniformity,
//!   serial correlation) used by tests and by the similarity-digest crate to
//!   validate that simulated ciphertext is statistically ciphertext-like.
//!
//! # Examples
//!
//! ```
//! use cryptodrop_entropy::{shannon_entropy, WeightedEntropyMean};
//!
//! let text = b"the quick brown fox jumps over the lazy dog";
//! let e = shannon_entropy(text);
//! assert!(e > 3.0 && e < 5.0, "English text sits around 4 bits/byte");
//!
//! let mut writes = WeightedEntropyMean::new();
//! writes.update(7.9, 4096); // a large, high-entropy write
//! writes.update(1.2, 64);   // a tiny ransom-note-like write
//! // The small low-entropy write barely moves the mean:
//! assert!(writes.mean().unwrap() > 7.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shannon;
pub mod stats;
pub mod stream;
pub mod weighted;

pub use shannon::{clog2, entropy_lut_of, shannon_entropy, ByteHistogram};
pub use stats::{chi_square_uniformity, serial_correlation, RandomnessReport};
pub use stream::StreamEntropy;
pub use weighted::{EntropyDelta, WeightedEntropyMean};

/// The maximum possible Shannon entropy of byte-valued data, in bits/byte.
pub const MAX_ENTROPY: f64 = 8.0;

/// The paper's suspicious write-minus-read entropy-delta threshold
/// (`Δe ≥ 0.1`, paper §IV-C1).
pub const SUSPICIOUS_DELTA: f64 = 0.1;
