//! Property-based tests for the entropy crate's core invariants.

use cryptodrop_entropy::{
    chi_square_uniformity, serial_correlation, shannon_entropy, ByteHistogram, EntropyDelta,
    StreamEntropy, WeightedEntropyMean,
};
use proptest::prelude::*;

proptest! {
    /// Entropy is always within [0, 8].
    #[test]
    fn entropy_bounds(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let e = shannon_entropy(&data);
        prop_assert!((0.0..=8.0).contains(&e), "entropy {e} out of bounds");
    }

    /// Entropy is invariant under permutation of the input bytes.
    #[test]
    fn entropy_permutation_invariant(mut data in proptest::collection::vec(any::<u8>(), 1..2048)) {
        let before = shannon_entropy(&data);
        data.reverse();
        prop_assert_eq!(before, shannon_entropy(&data));
        data.sort_unstable();
        prop_assert_eq!(before, shannon_entropy(&data));
    }

    /// Entropy is invariant under a bijective byte substitution (XOR mask).
    #[test]
    fn entropy_substitution_invariant(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        mask in any::<u8>(),
    ) {
        let masked: Vec<u8> = data.iter().map(|b| b ^ mask).collect();
        let d = (shannon_entropy(&data) - shannon_entropy(&masked)).abs();
        prop_assert!(d < 1e-9);
    }

    /// Duplicating the data does not change its entropy.
    #[test]
    fn entropy_scale_invariant(data in proptest::collection::vec(any::<u8>(), 1..1024)) {
        let mut doubled = data.clone();
        doubled.extend_from_slice(&data);
        let d = (shannon_entropy(&data) - shannon_entropy(&doubled)).abs();
        prop_assert!(d < 1e-9);
    }

    /// A histogram built incrementally chunk-by-chunk matches one-shot.
    #[test]
    fn histogram_chunking(data in proptest::collection::vec(any::<u8>(), 0..2048), chunk in 1usize..64) {
        let mut s = StreamEntropy::new();
        for c in data.chunks(chunk) {
            s.push(c);
        }
        prop_assert_eq!(s.entropy(), shannon_entropy(&data));
        prop_assert_eq!(s.bytes_seen(), data.len() as u64);
    }

    /// add followed by remove is an identity on the histogram.
    #[test]
    fn histogram_add_remove_identity(
        base in proptest::collection::vec(any::<u8>(), 0..1024),
        extra in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let mut h = ByteHistogram::from_bytes(&base);
        h.add(&extra);
        h.remove(&extra);
        prop_assert_eq!(h, ByteHistogram::from_bytes(&base));
    }

    /// The weighted mean always lies within the span of its observations.
    #[test]
    fn weighted_mean_in_span(obs in proptest::collection::vec((0.0f64..8.0, 1u64..1_000_000), 1..64)) {
        let mut m = WeightedEntropyMean::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(e, b) in &obs {
            m.update(e, b);
            if WeightedEntropyMean::weight(e, b) > 0.0 {
                lo = lo.min(e);
                hi = hi.max(e);
            }
        }
        if let Some(mean) = m.mean() {
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "{mean} not in [{lo}, {hi}]");
        }
    }

    /// The delta is never negative and never defined before both directions
    /// have nonzero-weight observations.
    #[test]
    fn delta_nonnegative(ops in proptest::collection::vec((any::<bool>(), 0.0f64..8.0, 0u64..100_000), 0..64)) {
        let mut d = EntropyDelta::new();
        for &(is_read, e, b) in &ops {
            if is_read {
                d.record_read(e, b);
            } else {
                d.record_write(e, b);
            }
            if let Some(delta) = d.delta() {
                prop_assert!(delta >= 0.0);
                prop_assert!(delta <= 8.0 + 1e-9);
            }
        }
    }

    /// Chi-square is non-negative; serial correlation lies in [-1, 1].
    #[test]
    fn stats_bounds(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert!(chi_square_uniformity(&data) >= 0.0);
        let sc = serial_correlation(&data);
        prop_assert!((-1.0..=1.0).contains(&sc));
    }
}
