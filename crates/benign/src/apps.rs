//! The thirty benign Windows applications of the paper's false-positive
//! study (§V-F).
//!
//! Five applications are modeled in procedural detail, following the
//! paper's exact test scripts (Fig. 6): Adobe Lightroom (final score 107),
//! ImageMagick (0), iTunes (16), Microsoft Word (0), and Microsoft Excel
//! (150). 7-zip is modeled with a real compressor because it is the
//! paper's one expected false positive. The remaining applications are
//! lighter profiles whose filesystem behaviour matches how each product
//! touches user documents.

use cryptodrop_corpus::gen;
use cryptodrop_vfs::{ProcessId, Vfs, VfsResult, VPath};
use rand::rngs::StdRng;
use rand::Rng;

use crate::compress::compress;
use crate::helpers::{find_files, overwrite_in_place, read_whole, write_new};

/// A benign application workload.
///
/// `stage` installs any app-specific inputs (e.g. Lightroom's photo
/// library) via unfiltered admin writes; `run` performs the application's
/// activity through ordinary monitored operations.
pub trait BenignApp: Send {
    /// The application's display name, as in the paper's list.
    fn name(&self) -> &'static str;

    /// The simulated executable name.
    fn executable(&self) -> &'static str;

    /// Installs app-specific input files (unmonitored setup).
    ///
    /// # Errors
    ///
    /// Propagates staging failures.
    fn stage(&self, _fs: &mut Vfs, _docs: &VPath, _rng: &mut StdRng) -> VfsResult<()> {
        Ok(())
    }

    /// Performs the application's workload as process `pid`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors — notably
    /// [`ProcessSuspended`](cryptodrop_vfs::VfsError::ProcessSuspended)
    /// when CryptoDrop flags the app (the 7-zip case).
    fn run(&self, fs: &mut Vfs, pid: ProcessId, docs: &VPath, rng: &mut StdRng) -> VfsResult<()>;
}

/// Every benign application is a [`Workload`]: staging and the run share
/// one RNG stream seeded from the context (byte-identical to the historic
/// `stage`-then-`run` harness path — staging uses unfiltered admin writes,
/// so running it inside `drive` never scores).
impl cryptodrop_vfs::Workload for Box<dyn BenignApp> {
    fn name(&self) -> String {
        BenignApp::name(self.as_ref()).to_string()
    }

    fn pid_plan(&self) -> Vec<String> {
        vec![self.executable().to_string()]
    }

    fn drive(
        &self,
        fs: &mut Vfs,
        ctx: &cryptodrop_vfs::WorkloadCtx,
    ) -> cryptodrop_vfs::WorkloadOutcome {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        if BenignApp::stage(self.as_ref(), fs, &ctx.root, &mut rng).is_err() {
            return cryptodrop_vfs::WorkloadOutcome::default();
        }
        match BenignApp::run(self.as_ref(), fs, ctx.pid(), &ctx.root, &mut rng) {
            Ok(()) => cryptodrop_vfs::WorkloadOutcome::completed(),
            Err(e) => cryptodrop_vfs::WorkloadOutcome {
                suspended: matches!(e, cryptodrop_vfs::VfsError::ProcessSuspended(_)),
                ..cryptodrop_vfs::WorkloadOutcome::default()
            },
        }
    }
}

// ---------------------------------------------------------------------
// The five Fig. 6 applications + 7-zip
// ---------------------------------------------------------------------

/// 7-zip: archives the documents folder. Reads a large number of disparate
/// files and writes one genuinely compressed (high-entropy) archive — the
/// paper's expected false positive (§V-F/G).
#[derive(Debug, Clone)]
pub struct SevenZip {
    /// How many corpus files to archive.
    pub file_limit: usize,
}

impl Default for SevenZip {
    fn default() -> Self {
        Self { file_limit: 300 }
    }
}

impl BenignApp for SevenZip {
    fn name(&self) -> &'static str {
        "7-zip"
    }

    fn executable(&self) -> &'static str {
        "7z.exe"
    }

    fn run(&self, fs: &mut Vfs, pid: ProcessId, docs: &VPath, _rng: &mut StdRng) -> VfsResult<()> {
        let files = find_files(fs, pid, docs, None, self.file_limit)?;
        let mut payload = Vec::new();
        for f in &files {
            let data = read_whole(fs, pid, f, 64 * 1024)?;
            payload.extend_from_slice(f.as_str().as_bytes());
            payload.extend_from_slice(&data);
            if payload.len() > 6 * 1024 * 1024 {
                break;
            }
        }
        let mut archive = vec![b'7', b'z', 0xBC, 0xAF, 0x27, 0x1C, 0, 4];
        archive.extend(compress(&payload));
        write_new(fs, pid, &docs.join("documents-backup.7z"), &archive, 64 * 1024)
    }
}

/// Adobe Lightroom: imports a photo library (reading JPEGs and their XMP
/// text sidecars), builds previews and a catalog, applies automatic tone,
/// and exports five photos (§V-F; final paper score 107).
#[derive(Debug, Clone)]
pub struct Lightroom {
    /// Photos in the staged library (1,073 in the paper; scaled for
    /// simulation speed — the score comes from preview *writes*).
    pub photo_count: usize,
    /// Previews rendered during import.
    pub preview_count: usize,
}

impl Default for Lightroom {
    fn default() -> Self {
        Self {
            photo_count: 180,
            preview_count: 30,
        }
    }
}

impl BenignApp for Lightroom {
    fn name(&self) -> &'static str {
        "Adobe Lightroom"
    }

    fn executable(&self) -> &'static str {
        "lightroom.exe"
    }

    fn stage(&self, fs: &mut Vfs, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        for i in 0..self.photo_count {
            let photo = { let size = rng.gen_range(12_000..40_000); gen::image::jpeg(rng, size) };
            fs.admin().write_file(&docs.join(format!("Photos/IMG_{i:04}.jpg")), &photo)?;
            // Every photo carries an XMP metadata sidecar (develop
            // settings, keywords, edit history) that the import parses.
            let xmp = { let size = rng.gen_range(10_000..14_000); gen::text::xml(rng, size) };
            fs.admin().write_file(&docs.join(format!("Photos/IMG_{i:04}.xmp")), &xmp)?;
        }
        Ok(())
    }

    fn run(&self, fs: &mut Vfs, pid: ProcessId, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        let photos_dir = docs.join("Photos");
        // Import: read sidecars (low-entropy text) then every photo.
        let sidecars = find_files(fs, pid, &photos_dir, Some(&["xmp"]), usize::MAX)?;
        for s in &sidecars {
            read_whole(fs, pid, s, 16 * 1024)?;
        }
        let photos = find_files(fs, pid, &photos_dir, Some(&["jpg"]), usize::MAX)?;
        for p in &photos {
            read_whole(fs, pid, p, 64 * 1024)?;
            fs.advance_clock(1_500_000_000); // indexing/rendering per photo
        }
        // Previews: freshly rendered (high-entropy) JPEGs.
        for i in 0..self.preview_count {
            let preview = { let size = rng.gen_range(6_000..14_000); gen::image::jpeg(rng, size) };
            write_new(
                fs,
                pid,
                &docs.join(format!("Lightroom/previews/{i:03}.jpg")),
                &preview,
                32 * 1024,
            )?;
            fs.advance_clock(2_000_000_000); // preview render time
        }
        // Export 5 tone-adjusted photos to the documents folder.
        for i in 0..5 {
            let out = { let size = rng.gen_range(14_000..30_000); gen::image::jpeg(rng, size) };
            write_new(fs, pid, &docs.join(format!("export-{i}.jpg")), &out, 32 * 1024)?;
        }
        // Finally persist the catalog: a SQLite-ish mixed-entropy file.
        let mut catalog = b"SQLite format 3\x00".to_vec();
        catalog.extend(gen::text::xml(rng, 30_000));
        write_new(fs, pid, &docs.join("Lightroom/catalog.lrcat"), &catalog, 32 * 1024)?;
        Ok(())
    }
}

/// ImageMagick `mogrify`: rotates every JPEG 90° and saves it in place
/// (§V-F; paper score 0 — same type, already-compressed source).
#[derive(Debug, Clone)]
pub struct ImageMagick {
    /// Photos staged and rotated.
    pub photo_count: usize,
}

impl Default for ImageMagick {
    fn default() -> Self {
        Self { photo_count: 180 }
    }
}

impl BenignApp for ImageMagick {
    fn name(&self) -> &'static str {
        "ImageMagick"
    }

    fn executable(&self) -> &'static str {
        "mogrify.exe"
    }

    fn stage(&self, fs: &mut Vfs, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        for i in 0..self.photo_count {
            let photo = { let size = rng.gen_range(12_000..40_000); gen::image::jpeg(rng, size) };
            fs.admin().write_file(&docs.join(format!("Photos/IMG_{i:04}.jpg")), &photo)?;
        }
        Ok(())
    }

    fn run(&self, fs: &mut Vfs, pid: ProcessId, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        let photos = find_files(fs, pid, &docs.join("Photos"), Some(&["jpg"]), usize::MAX)?;
        for p in &photos {
            let original = read_whole(fs, pid, p, 64 * 1024)?;
            // The rotated image: a fresh JPEG stream of comparable size.
            let rotated = gen::image::jpeg(rng, original.len().max(1024));
            overwrite_in_place(fs, pid, p, &rotated, 64 * 1024)?;
            fs.advance_clock(400_000_000); // decode/rotate/encode per image
        }
        Ok(())
    }
}

/// iTunes: regenerates its library, imports the 70 Coldwell audio files,
/// plays three, and converts everything to AAC (§V-F; paper score 16).
///
/// As on a real Windows profile, the music library lives in the user's
/// `Music` folder *outside* the protected Documents tree; only a handful
/// of loose audio samples sit in Documents, so the conversion's scored
/// activity is small — which is how the paper's iTunes run ends at 16.
#[derive(Debug, Clone)]
pub struct ITunes {
    /// Library WAV tracks staged outside Documents (70 in the paper).
    pub track_count: usize,
    /// Loose WAV samples inside Documents that also get converted.
    pub docs_track_count: usize,
}

impl Default for ITunes {
    fn default() -> Self {
        Self {
            track_count: 65,
            docs_track_count: 5,
        }
    }
}

impl ITunes {
    fn music_dir(docs: &VPath) -> VPath {
        // Sibling of the Documents folder: /Users/victim/Music.
        docs.parent().unwrap_or_else(VPath::root).join("Music")
    }
}

impl BenignApp for ITunes {
    fn name(&self) -> &'static str {
        "iTunes"
    }

    fn executable(&self) -> &'static str {
        "itunes.exe"
    }

    fn stage(&self, fs: &mut Vfs, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        let music = Self::music_dir(docs);
        for i in 0..self.track_count {
            let wav = { let size = rng.gen_range(30_000..80_000); gen::audio::wav(rng, size) };
            fs.admin().write_file(&music.join(format!("track-{i:02}.wav")), &wav)?;
        }
        for i in 0..self.docs_track_count {
            let wav = { let size = rng.gen_range(30_000..80_000); gen::audio::wav(rng, size) };
            fs.admin().write_file(&docs.join(format!("audio-samples/sample-{i}.wav")), &wav)?;
        }
        // The old library the test deletes first.
        fs.admin().write_file(
            &music.join("iTunes/iTunes Library.itl"),
            &gen::archive::gzip(rng, 4_000),
        )
    }

    fn run(&self, fs: &mut Vfs, pid: ProcessId, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        let music = Self::music_dir(docs);
        // Delete the library to force regeneration.
        fs.delete(pid, &music.join("iTunes/iTunes Library.itl"))?;
        // Import scan: read every track, library and loose samples alike.
        let mut tracks = find_files(fs, pid, &music, Some(&["wav"]), usize::MAX)?;
        tracks.extend(find_files(
            fs,
            pid,
            &docs.join("audio-samples"),
            Some(&["wav"]),
            usize::MAX,
        )?);
        for t in &tracks {
            read_whole(fs, pid, t, 64 * 1024)?;
        }
        // Play three songs.
        for t in tracks.iter().take(3) {
            read_whole(fs, pid, t, 64 * 1024)?;
        }
        // Convert each to AAC next to its source.
        for (i, t) in tracks.iter().enumerate() {
            read_whole(fs, pid, t, 64 * 1024)?;
            let aac = { let size = rng.gen_range(8_000..20_000); gen::audio::mp3(rng, size) };
            let out = t
                .parent()
                .unwrap_or_else(|| music.clone())
                .join(format!("converted-{i:02}.m4a"));
            write_new(fs, pid, &out, &aac, 64 * 1024)?;
            fs.advance_clock(3_000_000_000); // transcode time per track
        }
        // Write the regenerated library.
        write_new(
            fs,
            pid,
            &music.join("iTunes/iTunes Library.itl"),
            &gen::archive::gzip(rng, 6_000),
            32 * 1024,
        )
    }
}

/// Microsoft Word: authors a new document through repeated saves — text,
/// a table, an imported photo, SmartArt (§V-F; paper score 0).
#[derive(Debug, Clone, Default)]
pub struct Word;

impl BenignApp for Word {
    fn name(&self) -> &'static str {
        "Microsoft Word"
    }

    fn executable(&self) -> &'static str {
        "winword.exe"
    }

    fn stage(&self, fs: &mut Vfs, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        fs.admin().write_file(&docs.join("Pictures/holiday.jpg"), &gen::image::jpeg(rng, 26_000))
    }

    fn run(&self, fs: &mut Vfs, pid: ProcessId, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        let doc = docs.join("report.docx");
        // Save 1: five paragraphs.
        write_new(fs, pid, &doc, &gen::office::docx(rng, 9_000), 32 * 1024)?;
        fs.advance_clock(180_000_000_000); // typing time
        // Save 2: a table with text in each cell.
        write_new(fs, pid, &doc, &gen::office::docx(rng, 14_000), 32 * 1024)?;
        fs.advance_clock(120_000_000_000);
        // Import a photo, save 3.
        read_whole(fs, pid, &docs.join("Pictures/holiday.jpg"), 64 * 1024)?;
        write_new(fs, pid, &doc, &gen::office::docx(rng, 38_000), 32 * 1024)?;
        fs.advance_clock(90_000_000_000);
        // SmartArt, save 4.
        write_new(fs, pid, &doc, &gen::office::docx(rng, 41_000), 32 * 1024)
    }
}

/// Microsoft Excel: builds a workbook over many save cycles, importing CSV
/// data, with Office-style autosave temp files that are created and
/// deleted (§V-F; paper score 150).
#[derive(Debug, Clone)]
pub struct Excel {
    /// Save cycles across the two sessions.
    pub save_cycles: usize,
}

impl Default for Excel {
    fn default() -> Self {
        Self { save_cycles: 25 }
    }
}

impl BenignApp for Excel {
    fn name(&self) -> &'static str {
        "Microsoft Excel"
    }

    fn executable(&self) -> &'static str {
        "excel.exe"
    }

    fn stage(&self, fs: &mut Vfs, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        fs.admin().write_file(&docs.join("data/import.csv"), &gen::text::csv(rng, 22_000))
    }

    fn run(&self, fs: &mut Vfs, pid: ProcessId, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        // Import the CSV data (a low-entropy read).
        read_whole(fs, pid, &docs.join("data/import.csv"), 32 * 1024)?;
        let book = docs.join("budget.xlsx");
        for i in 0..self.save_cycles {
            // Office saves via a temp file alongside the document...
            let tmp = docs.join(format!("~$budget-{i}.tmp"));
            write_new(fs, pid, &tmp, &gen::office::xlsx(rng, 12_000 + 400 * i), 32 * 1024)?;
            // ...rewrites the workbook...
            write_new(fs, pid, &book, &gen::office::xlsx(rng, 12_000 + 400 * i), 32 * 1024)?;
            // ...and removes the temp file.
            fs.delete(pid, &tmp)?;
            fs.advance_clock(45_000_000_000); // editing between saves
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Profile-based applications (the remaining 24)
// ---------------------------------------------------------------------

/// The behaviour shapes shared by the lighter application profiles.
#[derive(Debug, Clone)]
pub enum Profile {
    /// Scans documents read-only (AV scanners, sync clients, media
    /// players, PDF readers): reads the first chunk or all of up to
    /// `limit` files matching `exts`.
    Scanner {
        /// Extension filter (None = all files).
        exts: Option<&'static [&'static str]>,
        /// Max files touched.
        limit: usize,
        /// Whether to read files fully (true) or just their heads.
        full: bool,
    },
    /// Keeps appending to its own note/log files (chat clients, note
    /// apps): `writes` small text writes to `file`.
    NoteTaker {
        /// The note file name under the documents root.
        file: &'static str,
        /// Number of append-style rewrites.
        writes: usize,
    },
    /// Downloads new files into the documents tree, then verifies them by
    /// reading back (browsers, torrent clients).
    Downloader {
        /// Number of files downloaded.
        count: usize,
        /// Approximate size of each download.
        size: usize,
    },
    /// Opens a few photos and exports or overwrites a couple (image
    /// editors).
    PhotoEditor {
        /// Photos staged and opened.
        opens: usize,
        /// Photos exported as new files.
        exports: usize,
        /// Photos overwritten in place.
        overwrites: usize,
    },
    /// Authors an office document with a few saves (office suites and
    /// viewers).
    OfficeEditor {
        /// Number of saves.
        saves: usize,
    },
    /// Touches nothing inside the documents tree (system utilities whose
    /// activity lives elsewhere).
    OutsideDocuments,
}

/// A lighter application modeled by a [`Profile`].
#[derive(Debug, Clone)]
pub struct ProfileApp {
    /// Display name.
    pub app_name: &'static str,
    /// Executable name.
    pub exe: &'static str,
    /// The behaviour profile.
    pub profile: Profile,
}

impl BenignApp for ProfileApp {
    fn name(&self) -> &'static str {
        self.app_name
    }

    fn executable(&self) -> &'static str {
        self.exe
    }

    fn stage(&self, fs: &mut Vfs, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        if let Profile::PhotoEditor { opens, .. } = self.profile {
            for i in 0..opens {
                let photo = { let size = rng.gen_range(10_000..30_000); gen::image::jpeg(rng, size) };
                fs.admin().write_file(&docs.join(format!("Pictures/pic-{i:03}.jpg")), &photo)?;
            }
        }
        Ok(())
    }

    fn run(&self, fs: &mut Vfs, pid: ProcessId, docs: &VPath, rng: &mut StdRng) -> VfsResult<()> {
        match &self.profile {
            Profile::Scanner { exts, limit, full } => {
                let files = find_files(fs, pid, docs, *exts, *limit)?;
                for f in &files {
                    fs.advance_clock(150_000_000); // per-file scan pacing
                    if *full {
                        read_whole(fs, pid, f, 64 * 1024)?;
                    } else {
                        let h = fs.open(pid, f, cryptodrop_vfs::OpenOptions::read())?;
                        let r = fs.read(pid, h, 4096).map(|_| ());
                        let c = fs.close(pid, h);
                        r?;
                        c?;
                    }
                }
                Ok(())
            }
            Profile::NoteTaker { file, writes } => {
                let path = docs.join(file);
                let mut body = String::new();
                for i in 0..*writes {
                    body.push_str(&format!("note entry {i}: remember to water the plants\n"));
                    write_new(fs, pid, &path, body.as_bytes(), 8 * 1024)?;
                    fs.advance_clock(20_000_000_000); // typing between notes
                }
                Ok(())
            }
            Profile::Downloader { count, size } => {
                for i in 0..*count {
                    let data = gen::archive::zip(rng, *size);
                    let path = docs.join(format!("Downloads/download-{i}.zip"));
                    write_new(fs, pid, &path, &data, 64 * 1024)?;
                    read_whole(fs, pid, &path, 64 * 1024)?; // integrity check
                    fs.advance_clock(8_000_000_000); // network transfer time
                }
                Ok(())
            }
            Profile::PhotoEditor {
                opens,
                exports,
                overwrites,
            } => {
                let photos = find_files(fs, pid, &docs.join("Pictures"), Some(&["jpg"]), *opens)?;
                for p in &photos {
                    read_whole(fs, pid, p, 64 * 1024)?;
                }
                for i in 0..*exports {
                    let out = gen::image::png(rng, 20_000);
                    write_new(fs, pid, &docs.join(format!("Pictures/edit-{i}.png")), &out, 32 * 1024)?;
                }
                for p in photos.iter().take(*overwrites) {
                    let out = gen::image::jpeg(rng, 22_000);
                    overwrite_in_place(fs, pid, p, &out, 32 * 1024)?;
                }
                Ok(())
            }
            Profile::OfficeEditor { saves } => {
                let doc = docs.join(format!("{}-notes.odt", self.exe.trim_end_matches(".exe")));
                for i in 0..*saves {
                    write_new(fs, pid, &doc, &gen::office::odt(rng, 8_000 + 2_000 * i), 32 * 1024)?;
                }
                Ok(())
            }
            Profile::OutsideDocuments => {
                // Activity entirely outside the protected tree.
                let appdata = VPath::new("/Users/victim/AppData/app");
                fs.create_dir_all(pid, &appdata)?;
                for i in 0..10 {
                    write_new(
                        fs,
                        pid,
                        &appdata.join(format!("state-{i}.dat")),
                        &gen::text::json(rng, 2_000),
                        8 * 1024,
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// The five applications analyzed in the paper's Fig. 6, in figure order.
pub fn fig6_apps() -> Vec<Box<dyn BenignApp>> {
    vec![
        Box::new(Lightroom::default()),
        Box::new(ImageMagick::default()),
        Box::new(ITunes::default()),
        Box::new(Word),
        Box::new(Excel::default()),
    ]
}

/// All thirty applications of the paper's §V-F study.
pub fn paper_apps() -> Vec<Box<dyn BenignApp>> {
    let mut apps = fig6_apps();
    apps.insert(0, Box::new(SevenZip::default()));
    let profiles: Vec<ProfileApp> = vec![
        ProfileApp {
            app_name: "Avast Anti-Virus",
            exe: "avast.exe",
            profile: Profile::Scanner {
                exts: None,
                limit: 400,
                full: false,
            },
        },
        ProfileApp {
            app_name: "Chocolate Doom",
            exe: "chocolate-doom.exe",
            profile: Profile::NoteTaker {
                file: "doom-saves/savegame0.dsg",
                writes: 3,
            },
        },
        ProfileApp {
            app_name: "Chrome",
            exe: "chrome.exe",
            profile: Profile::Downloader { count: 2, size: 60_000 },
        },
        ProfileApp {
            app_name: "Dropbox",
            exe: "dropbox.exe",
            profile: Profile::Scanner {
                exts: None,
                limit: 250,
                full: true,
            },
        },
        ProfileApp {
            app_name: "F.lux",
            exe: "flux.exe",
            profile: Profile::OutsideDocuments,
        },
        ProfileApp {
            app_name: "GIMP",
            exe: "gimp.exe",
            profile: Profile::PhotoEditor {
                opens: 4,
                exports: 1,
                overwrites: 1,
            },
        },
        ProfileApp {
            app_name: "Launchy",
            exe: "launchy.exe",
            profile: Profile::OutsideDocuments,
        },
        ProfileApp {
            app_name: "LibreOffice Calc",
            exe: "scalc.exe",
            profile: Profile::OfficeEditor { saves: 4 },
        },
        ProfileApp {
            app_name: "LibreOffice Writer",
            exe: "swriter.exe",
            profile: Profile::OfficeEditor { saves: 4 },
        },
        ProfileApp {
            app_name: "Microsoft Office Viewers",
            exe: "officeview.exe",
            profile: Profile::Scanner {
                exts: Some(&["doc", "docx", "xlsx", "pptx"]),
                limit: 30,
                full: true,
            },
        },
        ProfileApp {
            app_name: "MusicBee",
            exe: "musicbee.exe",
            profile: Profile::Scanner {
                exts: Some(&["mp3", "wav"]),
                limit: 120,
                full: true,
            },
        },
        ProfileApp {
            app_name: "Paint.NET",
            exe: "paintdotnet.exe",
            profile: Profile::PhotoEditor {
                opens: 3,
                exports: 2,
                overwrites: 0,
            },
        },
        ProfileApp {
            app_name: "PhraseExpress",
            exe: "phraseexpress.exe",
            profile: Profile::NoteTaker {
                file: "phrases.txt",
                writes: 6,
            },
        },
        ProfileApp {
            app_name: "Picasa",
            exe: "picasa.exe",
            profile: Profile::PhotoEditor {
                opens: 40,
                exports: 6,
                overwrites: 0,
            },
        },
        ProfileApp {
            app_name: "Pidgin",
            exe: "pidgin.exe",
            profile: Profile::NoteTaker {
                file: "chat-logs/buddy.log",
                writes: 10,
            },
        },
        ProfileApp {
            app_name: "Piriform CCleaner",
            exe: "ccleaner.exe",
            profile: Profile::OutsideDocuments,
        },
        ProfileApp {
            app_name: "Private Internet Access VPN",
            exe: "pia.exe",
            profile: Profile::OutsideDocuments,
        },
        ProfileApp {
            app_name: "ResophNotes",
            exe: "resophnotes.exe",
            profile: Profile::NoteTaker {
                file: "notes/resoph.txt",
                writes: 12,
            },
        },
        ProfileApp {
            app_name: "Skype",
            exe: "skype.exe",
            profile: Profile::NoteTaker {
                file: "skype/chat-history.log",
                writes: 8,
            },
        },
        ProfileApp {
            app_name: "Spotify",
            exe: "spotify.exe",
            profile: Profile::OutsideDocuments,
        },
        ProfileApp {
            app_name: "Sticky Notes",
            exe: "stikynot.exe",
            profile: Profile::NoteTaker {
                file: "StickyNotes.snt",
                writes: 5,
            },
        },
        ProfileApp {
            app_name: "SumatraPDF",
            exe: "sumatrapdf.exe",
            profile: Profile::Scanner {
                exts: Some(&["pdf"]),
                limit: 15,
                full: true,
            },
        },
        ProfileApp {
            app_name: "uTorrent",
            exe: "utorrent.exe",
            profile: Profile::Downloader {
                count: 3,
                size: 200_000,
            },
        },
        ProfileApp {
            app_name: "VLC Media Player",
            exe: "vlc.exe",
            profile: Profile::Scanner {
                exts: Some(&["mp3", "wav"]),
                limit: 40,
                full: true,
            },
        },
    ];
    for p in profiles {
        apps.push(Box::new(p));
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn docs_fixture() -> (Vfs, VPath) {
        let mut fs = Vfs::new();
        let docs = VPath::new("/Users/victim/Documents");
        let mut rng = StdRng::seed_from_u64(404);
        for i in 0..30 {
            let (name, data): (String, Vec<u8>) = match i % 5 {
                0 => (format!("d{i}.txt"), gen::text::txt(&mut rng, 3_000)),
                1 => (format!("d{i}.pdf"), gen::office::pdf(&mut rng, 15_000)),
                2 => (format!("d{i}.jpg"), gen::image::jpeg(&mut rng, 14_000)),
                3 => (format!("d{i}.docx"), gen::office::docx(&mut rng, 12_000)),
                _ => (format!("d{i}.csv"), gen::text::csv(&mut rng, 4_000)),
            };
            fs.admin().write_file(&docs.join(format!("folder{}/{name}", i % 4)), &data)
                .unwrap();
        }
        (fs, docs)
    }

    #[test]
    fn thirty_apps_with_unique_names() {
        let apps = paper_apps();
        assert_eq!(apps.len(), 30, "the paper tested thirty applications");
        let names: std::collections::HashSet<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 30);
        assert_eq!(fig6_apps().len(), 5);
    }

    #[test]
    fn all_apps_run_clean_without_filters() {
        let mut rng = StdRng::seed_from_u64(7);
        for app in paper_apps() {
            let (mut fs, docs) = docs_fixture();
            app.stage(&mut fs, &docs, &mut rng).unwrap();
            let pid = fs.spawn_process(app.executable());
            app.run(&mut fs, pid, &docs, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", app.name()));
        }
    }

    #[test]
    fn seven_zip_output_is_archive_typed_and_high_entropy() {
        let (mut fs, docs) = docs_fixture();
        let mut rng = StdRng::seed_from_u64(8);
        let app = SevenZip { file_limit: 30 };
        let pid = fs.spawn_process(app.executable());
        app.run(&mut fs, pid, &docs, &mut rng).unwrap();
        let archive = fs.admin().read_file(&docs.join("documents-backup.7z")).unwrap();
        assert_eq!(cryptodrop_sniff::sniff(&archive), cryptodrop_sniff::FileType::SevenZip);
        let e = cryptodrop_entropy::shannon_entropy(&archive[300..]);
        assert!(e > 7.0, "archive body entropy {e}");
    }

    #[test]
    fn imagemagick_preserves_types_and_count() {
        let (mut fs, docs) = docs_fixture();
        let mut rng = StdRng::seed_from_u64(9);
        let app = ImageMagick { photo_count: 12 };
        app.stage(&mut fs, &docs, &mut rng).unwrap();
        let pid = fs.spawn_process(app.executable());
        let before = fs.file_count();
        app.run(&mut fs, pid, &docs, &mut rng).unwrap();
        assert_eq!(fs.file_count(), before, "in-place edits create nothing");
        let sample = fs
            .admin().read_file(&docs.join("Photos/IMG_0000.jpg"))
            .unwrap();
        assert_eq!(cryptodrop_sniff::sniff(&sample), cryptodrop_sniff::FileType::Jpeg);
    }

    #[test]
    fn excel_cleans_up_its_temp_files() {
        let (mut fs, docs) = docs_fixture();
        let mut rng = StdRng::seed_from_u64(10);
        let app = Excel { save_cycles: 5 };
        app.stage(&mut fs, &docs, &mut rng).unwrap();
        let pid = fs.spawn_process(app.executable());
        app.run(&mut fs, pid, &docs, &mut rng).unwrap();
        let temps = fs
            .admin().files()
            .filter(|(p, _)| p.as_str().contains("~$budget"))
            .count();
        assert_eq!(temps, 0);
        assert!(fs.admin().read_file(&docs.join("budget.xlsx")).is_ok());
    }

    #[test]
    fn outside_documents_profile_never_touches_docs() {
        let (mut fs, docs) = docs_fixture();
        let mut rng = StdRng::seed_from_u64(11);
        let app = ProfileApp {
            app_name: "Piriform CCleaner",
            exe: "ccleaner.exe",
            profile: Profile::OutsideDocuments,
        };
        let pid = fs.spawn_process(app.executable());
        let before = fs.event_log().len();
        app.run(&mut fs, pid, &docs, &mut rng).unwrap();
        let touched_docs = fs.event_log().events()[before..]
            .iter()
            .filter_map(|e| e.path())
            .any(|p| p.starts_with(&docs));
        assert!(!touched_docs);
    }
}
