//! Benign application workloads for the CryptoDrop false-positive study.
//!
//! The paper (§V-F) evaluates thirty common Windows applications on the
//! same corpus-loaded machine used for the malware runs and finds exactly
//! one false positive — 7-zip, which "reads a large number of disparate
//! files and generates high entropy output (similar to ransomware)" — and,
//! crucially, that *no benign application exhibits all three primary
//! indicators* (the union property that makes fast ransomware detection
//! safe).
//!
//! Five applications are modeled in procedural detail following the
//! paper's §V-F scripts (their final scores appear in Fig. 6): Adobe
//! Lightroom (107), ImageMagick (0), iTunes (16), Microsoft Word (0), and
//! Microsoft Excel (150). 7-zip archives the documents folder through a
//! real LZSS+Huffman compressor ([`compress::compress`]) so its output's entropy is earned, not
//! synthesized. The remaining applications use behaviour profiles
//! (scanners, note takers, downloaders, photo editors, office editors,
//! outside-documents utilities).
//!
//! # Examples
//!
//! ```
//! use cryptodrop_benign::paper_apps;
//!
//! let apps = paper_apps();
//! assert_eq!(apps.len(), 30);
//! assert!(apps.iter().any(|a| a.name() == "7-zip"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod compress;
pub mod helpers;

pub use apps::{
    fig6_apps, paper_apps, BenignApp, Excel, ITunes, ImageMagick, Lightroom, Profile, ProfileApp,
    SevenZip, Word,
};
pub use compress::{compress, decompress};
