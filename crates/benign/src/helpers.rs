//! Shared filesystem helpers for benign application workloads.
//!
//! All helpers drive ordinary process-attributed operations, so a
//! registered CryptoDrop filter observes the workload exactly as it would
//! a real application.

use cryptodrop_vfs::{EntryKind, Handle, OpenOptions, ProcessId, Vfs, VfsResult, VPath};

/// Finds up to `limit` files under `root` (breadth-first), optionally
/// filtered to the given lowercase extensions.
///
/// # Errors
///
/// Propagates filesystem errors, including suspension.
pub fn find_files(
    fs: &mut Vfs,
    pid: ProcessId,
    root: &VPath,
    exts: Option<&[&str]>,
    limit: usize,
) -> VfsResult<Vec<VPath>> {
    let mut out = Vec::new();
    let mut queue = std::collections::VecDeque::from([root.clone()]);
    while let Some(dir) = queue.pop_front() {
        if out.len() >= limit {
            break;
        }
        let entries = fs.list_dir(pid, &dir)?;
        for e in entries {
            let p = dir.join(&e.name);
            match e.kind {
                EntryKind::File => {
                    let keep = match exts {
                        None => true,
                        Some(xs) => p.extension().map(|x| xs.contains(&x.as_str())).unwrap_or(false),
                    };
                    if keep && out.len() < limit {
                        out.push(p);
                    }
                }
                EntryKind::Directory => queue.push_back(p),
                // Benign apps don't chase symlinks during discovery.
                EntryKind::Symlink => {}
            }
        }
    }
    Ok(out)
}

/// Reads a whole file through open/read/close in `chunk`-byte pieces and
/// returns its content.
///
/// # Errors
///
/// Propagates filesystem errors, including suspension.
pub fn read_whole(fs: &mut Vfs, pid: ProcessId, path: &VPath, chunk: usize) -> VfsResult<Vec<u8>> {
    let h = fs.open(pid, path, OpenOptions::read())?;
    let result = read_handle(fs, pid, h, chunk);
    let close = fs.close(pid, h);
    let data = result?;
    close?;
    Ok(data)
}

/// Reads everything remaining on a handle in `chunk`-byte pieces.
///
/// # Errors
///
/// Propagates filesystem errors, including suspension.
pub fn read_handle(fs: &mut Vfs, pid: ProcessId, h: Handle, chunk: usize) -> VfsResult<Vec<u8>> {
    let mut data = Vec::new();
    loop {
        let part = fs.read(pid, h, chunk.max(1))?;
        if part.is_empty() {
            return Ok(data);
        }
        data.extend_from_slice(&part);
    }
}

/// Creates (or truncates) a file and writes `data` in `chunk`-byte pieces.
///
/// # Errors
///
/// Propagates filesystem errors, including suspension.
pub fn write_new(
    fs: &mut Vfs,
    pid: ProcessId,
    path: &VPath,
    data: &[u8],
    chunk: usize,
) -> VfsResult<()> {
    if let Some(parent) = path.parent() {
        fs.create_dir_all(pid, &parent)?;
    }
    let h = fs.open(pid, path, OpenOptions::create())?;
    let mut result = Ok(());
    for part in data.chunks(chunk.max(1)) {
        result = fs.write(pid, h, part).map(|_| ());
        if result.is_err() {
            break;
        }
    }
    let close = fs.close(pid, h);
    result?;
    close
}

/// Rewrites an existing file in place (open for modify, overwrite from
/// offset zero, truncate to the new length) — the `mogrify`-style edit.
///
/// # Errors
///
/// Propagates filesystem errors, including suspension.
pub fn overwrite_in_place(
    fs: &mut Vfs,
    pid: ProcessId,
    path: &VPath,
    data: &[u8],
    chunk: usize,
) -> VfsResult<()> {
    let h = fs.open(pid, path, OpenOptions::modify())?;
    let mut result = fs.seek(pid, h, 0);
    if result.is_ok() {
        for part in data.chunks(chunk.max(1)) {
            result = fs.write(pid, h, part).map(|_| ());
            if result.is_err() {
                break;
            }
        }
    }
    if result.is_ok() {
        result = fs.truncate(pid, h, data.len() as u64);
    }
    let close = fs.close(pid, h);
    result?;
    close
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vfs, ProcessId, VPath) {
        let mut fs = Vfs::new();
        let pid = fs.spawn_process("helper-test.exe");
        let root = VPath::new("/docs");
        fs.admin().write_file(&root.join("a.txt"), b"alpha").unwrap();
        fs.admin().write_file(&root.join("b.jpg"), b"\xFF\xD8\xFFjpeg").unwrap();
        fs.admin().write_file(&root.join("sub/c.txt"), b"gamma").unwrap();
        (fs, pid, root)
    }

    #[test]
    fn find_files_with_filters_and_limits() {
        let (mut fs, pid, root) = setup();
        let all = find_files(&mut fs, pid, &root, None, 100).unwrap();
        assert_eq!(all.len(), 3);
        let txt = find_files(&mut fs, pid, &root, Some(&["txt"]), 100).unwrap();
        assert_eq!(txt.len(), 2);
        let one = find_files(&mut fs, pid, &root, None, 1).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn read_whole_chunked() {
        let (mut fs, pid, root) = setup();
        let data = read_whole(&mut fs, pid, &root.join("a.txt"), 2).unwrap();
        assert_eq!(data, b"alpha");
    }

    #[test]
    fn write_new_creates_parents() {
        let (mut fs, pid, root) = setup();
        let p = root.join("deep/nested/file.bin");
        write_new(&mut fs, pid, &p, &[1, 2, 3, 4, 5], 2).unwrap();
        assert_eq!(fs.admin().read_file(&p).unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn overwrite_replaces_and_truncates() {
        let (mut fs, pid, root) = setup();
        let p = root.join("a.txt");
        overwrite_in_place(&mut fs, pid, &p, b"xy", 1).unwrap();
        assert_eq!(fs.admin().read_file(&p).unwrap(), b"xy");
    }
}
