//! A real (if compact) general-purpose compressor: LZSS matching over a
//! 4 KiB window followed by canonical Huffman coding of the token stream.
//!
//! The 7-zip workload needs *genuinely* compressed output — high-entropy
//! bytes produced by reading the user's documents — because that workload
//! is the paper's one true positive-adjacent false positive (§V-F/§V-G):
//! "it reads a large number of disparate files and generates high entropy
//! output (similar to ransomware)". A PRNG placeholder would get the
//! entropy right but not the content-dependence, so this is the real
//! algorithm, round-trip tested.

/// LZSS parameters: 4 KiB window, 3..=66 byte matches.
const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 66;

/// Token alphabet: 0..=255 literals, 256..=319 match lengths (3..=66).
const LITERALS: usize = 256;
const LENGTH_SYMBOLS: usize = MAX_MATCH - MIN_MATCH + 1;
const ALPHABET: usize = LITERALS + LENGTH_SYMBOLS;

/// Distance slots: deflate-style log2 buckets over 1..=4095.
const DIST_SLOTS: usize = 12;

/// The slot (log2 bucket) and extra-bit payload of a distance.
fn dist_slot(dist: usize) -> (usize, u32, u8) {
    debug_assert!((1..WINDOW).contains(&dist));
    let slot = usize::BITS as usize - 1 - (dist.leading_zeros() as usize);
    let extra_bits = slot as u8;
    let extra = (dist - (1 << slot)) as u32;
    (slot, extra, extra_bits)
}

/// Compresses `data`: LZSS tokenization, then Huffman coding of the token
/// stream with a second Huffman table over distance slots (deflate-style),
/// so the output carries no fixed-width structure.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = lzss_tokenize(data);
    // Symbol frequencies.
    let mut freq = [0u64; ALPHABET];
    let mut dist_freq = [0u64; DIST_SLOTS];
    for t in &tokens {
        match *t {
            Token::Literal(b) => freq[b as usize] += 1,
            Token::Match { len, dist } => {
                freq[LITERALS + (len - MIN_MATCH)] += 1;
                dist_freq[dist_slot(dist).0] += 1;
            }
        }
    }
    let lengths = huffman_code_lengths(&freq, 15);
    let codes = canonical_codes(&lengths);
    let dist_lengths = huffman_code_lengths(&dist_freq, 15);
    let dist_codes = canonical_codes(&dist_lengths);

    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(&lengths);
    out.extend_from_slice(&dist_lengths);
    let mut bits = BitWriter::new(out);
    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                let (code, len) = codes[b as usize];
                bits.write(code, len);
            }
            Token::Match { len, dist } => {
                let sym = LITERALS + (len - MIN_MATCH);
                let (code, clen) = codes[sym];
                bits.write(code, clen);
                let (slot, extra, extra_bits) = dist_slot(dist);
                let (dcode, dlen) = dist_codes[slot];
                bits.write(dcode, dlen);
                if extra_bits > 0 {
                    bits.write(extra, extra_bits);
                }
            }
        }
    }
    bits.finish()
}

/// Decompresses a buffer produced by [`compress`]. Returns `None` on
/// malformed input.
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 4 + ALPHABET + DIST_SLOTS {
        return None;
    }
    let orig_len = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    let lengths: Vec<u8> = data[4..4 + ALPHABET].to_vec();
    let dist_lengths: Vec<u8> = data[4 + ALPHABET..4 + ALPHABET + DIST_SLOTS].to_vec();
    let decode = decode_table(&canonical_codes(&lengths));
    let dist_decode = decode_table(&canonical_codes(&dist_lengths));
    let mut bits = BitReader::new(&data[4 + ALPHABET + DIST_SLOTS..]);
    let mut out: Vec<u8> = Vec::with_capacity(orig_len);
    while out.len() < orig_len {
        let sym = read_symbol(&mut bits, &decode)?;
        if sym < LITERALS {
            out.push(sym as u8);
        } else {
            let mlen = sym - LITERALS + MIN_MATCH;
            let slot = read_symbol(&mut bits, &dist_decode)?;
            let extra = if slot > 0 { bits.read(slot as u8)? } else { 0 };
            let dist = (1usize << slot) + extra as usize;
            if dist == 0 || dist > out.len() {
                return None;
            }
            for _ in 0..mlen {
                let b = out[out.len() - dist];
                out.push(b);
            }
        }
    }
    Some(out)
}

/// Builds a `(len, code) -> symbol` lookup from a code table.
fn decode_table(codes: &[(u32, u8)]) -> std::collections::HashMap<(u8, u32), usize> {
    let mut decode = std::collections::HashMap::new();
    for (sym, &(code, len)) in codes.iter().enumerate() {
        if len > 0 {
            decode.insert((len, code), sym);
        }
    }
    decode
}

/// Reads one Huffman-coded symbol.
fn read_symbol(
    bits: &mut BitReader<'_>,
    decode: &std::collections::HashMap<(u8, u32), usize>,
) -> Option<usize> {
    let mut code = 0u32;
    let mut len = 0u8;
    loop {
        code = (code << 1) | bits.read_bit()? as u32;
        len += 1;
        if len > 15 {
            return None;
        }
        if let Some(&s) = decode.get(&(len, code)) {
            return Some(s);
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

/// Greedy LZSS with a hash-head accelerator.
fn lzss_tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 2);
    // head[h] = most recent position with hash h.
    let mut head = vec![usize::MAX; 1 << 13];
    let hash = |d: &[u8]| -> usize {
        ((d[0] as usize) << 5 ^ (d[1] as usize) << 2 ^ (d[2] as usize)) & ((1 << 13) - 1)
    };
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= data.len() {
            let h = hash(&data[i..]);
            let cand = head[h];
            if cand != usize::MAX && i - cand < WINDOW && cand < i {
                let dist = i - cand;
                let mut l = 0;
                let max = MAX_MATCH.min(data.len() - i);
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    best_len = l;
                    best_dist = dist;
                }
            }
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len,
                dist: best_dist,
            });
            // Insert hash heads for skipped positions (cheap, improves ratio).
            for j in i + 1..(i + best_len).min(data.len().saturating_sub(MIN_MATCH)) {
                let h = hash(&data[j..]);
                head[h] = j;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Package-merge-free Huffman code length computation (classic heap
/// algorithm with a depth clamp + Kraft repair).
fn huffman_code_lengths(freq: &[u64], max_len: u8) -> Vec<u8> {
    let n = freq.len();
    let mut lengths = vec![0u8; n];
    let present: Vec<usize> = (0..n).filter(|&i| freq[i] > 0).collect();
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Heap of (weight, node). Internal nodes get indices >= n.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut parent = vec![usize::MAX; n + present.len()];
    for &i in &present {
        heap.push(Reverse((freq[i], i)));
    }
    let mut next = n;
    while heap.len() > 1 {
        let Reverse((w1, a)) = heap.pop().expect("len > 1");
        let Reverse((w2, b)) = heap.pop().expect("len > 1");
        parent[a] = next;
        parent[b] = next;
        heap.push(Reverse((w1 + w2, next)));
        next += 1;
    }
    for &i in &present {
        let mut depth = 0u8;
        let mut node = i;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lengths[i] = depth.min(max_len);
    }
    // Repair Kraft inequality if the clamp oversubscribed it.
    loop {
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_len - l))
            .sum();
        if kraft <= 1u64 << max_len {
            break;
        }
        // Demote the shallowest demotable symbol.
        let i = (0..n)
            .filter(|&i| lengths[i] > 0 && lengths[i] < max_len)
            .min_by_key(|&i| lengths[i])
            .expect("repairable");
        lengths[i] += 1;
    }
    lengths
}

/// Canonical Huffman codes from code lengths: `(code, len)` per symbol.
fn canonical_codes(lengths: &[u8]) -> Vec<(u32, u8)> {
    let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
    symbols.sort_by_key(|&i| (lengths[i], i));
    let mut codes = vec![(0u32, 0u8); lengths.len()];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &s in &symbols {
        code <<= lengths[s] - prev_len;
        codes[s] = (code, lengths[s]);
        prev_len = lengths[s];
        code += 1;
    }
    codes
}

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u8,
}

impl BitWriter {
    fn new(out: Vec<u8>) -> Self {
        Self {
            out,
            acc: 0,
            nbits: 0,
        }
    }

    fn write(&mut self, value: u32, bits: u8) {
        self.acc = (self.acc << bits) | value as u64;
        self.nbits += bits;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, bit: 0 }
    }

    fn read_bit(&mut self) -> Option<u8> {
        let byte = *self.data.get(self.pos)?;
        let b = (byte >> (7 - self.bit)) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Some(b)
    }

    fn read(&mut self, bits: u8) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..bits {
            v = (v << 1) | self.read_bit()? as u32;
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_entropy::shannon_entropy;

    fn text(n: usize) -> Vec<u8> {
        (0..)
            .flat_map(|i| format!("the archive test sentence number {i} repeats itself\n").into_bytes())
            .take(n)
            .collect()
    }

    #[test]
    fn round_trip_various_inputs() {
        for data in [
            Vec::new(),
            b"a".to_vec(),
            b"abcabcabcabc".to_vec(),
            text(10_000),
            vec![0u8; 5000],
            (0..=255u8).cycle().take(3000).collect(),
        ] {
            let c = compress(&data);
            assert_eq!(decompress(&c).as_deref(), Some(data.as_slice()));
        }
    }

    #[test]
    fn compresses_redundant_text() {
        let data = text(32_768);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 2,
            "only {} -> {} bytes",
            data.len(),
            c.len()
        );
    }

    #[test]
    fn output_is_high_entropy_on_corpus_like_input() {
        // The property the 7-zip false positive depends on: archiving a
        // realistic documents folder (text mixed with already-compressed
        // media) produces high-entropy output.
        let mut data = text(40_000);
        let mut s: u64 = 3;
        data.extend((0..40_000).map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 32) as u8
        }));
        let c = compress(&data);
        let body = &c[4 + ALPHABET + DIST_SLOTS..];
        let e = shannon_entropy(body);
        assert!(e > 7.3, "compressed stream entropy {e}");
    }

    #[test]
    fn output_entropy_rises_even_on_pure_text() {
        let data = text(65_536);
        let c = compress(&data);
        let body = &c[4 + ALPHABET + DIST_SLOTS..];
        let e = shannon_entropy(body);
        let input_e = shannon_entropy(&data);
        assert!(e > input_e + 1.5, "entropy must rise sharply: {input_e} -> {e}");
    }

    #[test]
    fn incompressible_input_grows_slightly_but_round_trips() {
        let mut s: u64 = 7;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() + data.len() / 8 + ALPHABET + DIST_SLOTS + 16);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(b"").is_none());
        assert!(decompress(&[0u8; 10]).is_none());
    }

    #[test]
    fn huffman_degenerate_cases() {
        // Single-symbol alphabet.
        let mut freq = vec![0u64; ALPHABET];
        freq[65] = 100;
        let lengths = huffman_code_lengths(&freq, 15);
        assert_eq!(lengths[65], 1);
        assert!(lengths.iter().enumerate().all(|(i, &l)| i == 65 || l == 0));
        // Empty alphabet.
        let lengths = huffman_code_lengths(&vec![0u64; ALPHABET], 15);
        assert!(lengths.iter().all(|&l| l == 0));
    }

    #[test]
    fn kraft_inequality_holds() {
        // Highly skewed frequencies force the depth clamp + repair path.
        let mut freq = vec![0u64; ALPHABET];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = 1u64 << (i % 40).min(39);
        }
        let max_len = 15u8;
        let lengths = huffman_code_lengths(&freq, max_len);
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_len - l))
            .sum();
        assert!(kraft <= 1 << max_len);
        assert!(lengths.iter().all(|&l| l <= max_len));
    }
}
