//! A minimal line-oriented JSON codec for the [`FleetAdmin`] plane.
//!
//! The workspace's vendored `serde_json` stand-in only *serializes* (the
//! build container has no registry access), so the admin plane carries its
//! own recursive-descent parser and writer. Only what line-delimited
//! JSON-RPC needs is implemented: the full value grammar, string escapes
//! (including `\uXXXX` with surrogate pairs), and integer-friendly number
//! rendering. Deliberately absent: streaming, comments, trailing commas.
//!
//! [`FleetAdmin`]: crate::FleetAdmin

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, as [`get`](Value::get) scans from the back).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (`None` for other variants or a missing
    /// key). Later duplicates win, matching most JSON implementations.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Renders a number the way the admin plane's clients expect: exact
/// integers print without a fractional part.
fn write_num(n: f64, out: &mut String) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no Inf/NaN; null is the conventional downgrade.
        out.push_str("null");
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub(crate) fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why [`parse`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow to form one code point.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves pos one past the last digit;
                            // skip the shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Builds an object value from key/value pairs — the admin plane's
/// response constructor.
pub fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_value_grammar() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"hi\n\"there\"","f":false}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Arr(vec![
            Value::Num(1.0),
            Value::Num(2.5),
            Value::Num(-3.0),
        ])));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("hi\n\"there\""));
        let reparsed = parse(&v.render()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("Aé😀".to_string()));
        // Raw multi-byte scalars pass through unescaped too.
        assert_eq!(parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
        // A lone high surrogate cannot form a scalar.
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"abc", "1 2", ""] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(7.0).render(), "7");
        assert_eq!(Value::Num(2.5).render(), "2.5");
        assert_eq!(Value::from(0u64).render(), "0");
    }
}
