//! # cryptodrop-fleet — thousands of monitored tenants in one process
//!
//! The paper evaluates CryptoDrop protecting *one* user's documents. A
//! hosting deployment inverts the cardinality: one monitor process watches
//! thousands of tenant namespaces, each with its own detector state,
//! shadow-copy budget, and audit trail — but sharing one protected corpus
//! image. This crate provides that multiplexing layer on top of the
//! single-tenant [`Session`] API:
//!
//! * [`SharedCorpus`] — the corpus staged **once** into a
//!   fingerprint-deduplicated [`BlobStore`] and mounted copy-on-write into
//!   every tenant filesystem via
//!   [`stage_shared`](cryptodrop_vfs::AdminView::stage_shared). A thousand
//!   tenants resident over a 10 MB corpus hold ~10 MB, not ~10 GB; a
//!   tenant's first write to a file materializes a private copy of just
//!   that file.
//! * [`Fleet`] — owns one [`Tenant`] (detector [`Session`] + namespaced
//!   [`Vfs`]) per spawn, with per-tenant config/shadow/pipeline/fault
//!   overrides ([`TenantSpec`]) over fleet-wide defaults
//!   ([`FleetConfig`]).
//! * **Telemetry rollup** — every tenant records into its own uncontended
//!   registry; [`Fleet::rollup`] merges them into one
//!   [`MetricsSnapshot`] off the hot path, and
//!   [`Fleet::tagged_journal`] exports every tenant's event timeline as
//!   JSONL with `"tenant"`/`"name"` tags spliced into each line.
//! * [`FleetAdmin`] — a line-delimited JSON-RPC-style admin plane
//!   (spawn / suspend / resume / despawn / restore / audit / stats /
//!   list) for driving a fleet from outside the process.
//!
//! ```
//! use cryptodrop_fleet::{Fleet, FleetConfig, TenantSpec};
//! use cryptodrop_vfs::VPath;
//!
//! let mut fleet = Fleet::new(FleetConfig::protecting("/docs"));
//! fleet.stage_file(VPath::new("/docs/report.txt"), b"quarterly".to_vec());
//!
//! let a = fleet.spawn(TenantSpec::named("alice")).unwrap();
//! let b = fleet.spawn(TenantSpec::named("bob")).unwrap();
//! // Both tenants see the file; the bytes are resident once.
//! for id in [a, b] {
//!     let t = fleet.get_mut(id).unwrap();
//!     assert_eq!(t.fs_mut().admin().read_file(&VPath::new("/docs/report.txt")).unwrap(),
//!                b"quarterly");
//!     assert_eq!(t.fs().private_bytes(), 0);
//! }
//! assert_eq!(fleet.stats().corpus_bytes, 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admin;
pub mod rpc;

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use cryptodrop::{
    Config, ConfigError, CryptoDrop, PipelineConfig, PipelineStats, RecoveryReport, Session,
    ShadowConfig,
};
use cryptodrop_simhash::content_fingerprint;
use cryptodrop_telemetry::{MetricsSnapshot, Telemetry};
use cryptodrop_vfs::{BlobStore, FaultPlan, SharedContent, VPath, Vfs};

pub use admin::FleetAdmin;

/// The protected corpus, staged once and mounted copy-on-write into every
/// tenant namespace.
///
/// Files are deduplicated by content fingerprint through a [`BlobStore`],
/// so a corpus where many tenant-visible paths carry identical bytes (a
/// template tree, say) is resident once per distinct content, and each
/// staged file carries a precomputed content stamp so mounting into a new
/// tenant is O(files), not O(bytes).
#[derive(Debug, Default)]
pub struct SharedCorpus {
    files: Vec<(VPath, SharedContent)>,
    store: BlobStore,
}

impl SharedCorpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages `data` at `path`, deduplicating against already-staged
    /// content. Returns `true` when the bytes were already resident (a
    /// dedup hit — no new memory). Staging the same path twice replaces
    /// the earlier entry for future mounts.
    pub fn stage(&mut self, path: VPath, data: Vec<u8>) -> bool {
        let fp = content_fingerprint(&data);
        let len = data.len() as u64;
        let (bytes, dedup_hit) = self.store.acquire_with(fp, len, || data);
        let content = SharedContent::from_arc(bytes);
        if let Some(slot) = self.files.iter_mut().find(|(p, _)| *p == path) {
            // Replacing drops one reference on the old content.
            let old = std::mem::replace(&mut slot.1, content);
            self.store.release(content_fingerprint(old.as_slice()), old.len() as u64);
        } else {
            self.files.push((path, content));
        }
        dedup_hit
    }

    /// Mounts every staged file into `fs` (creating parent directories),
    /// returning how many files were mounted. Each mount is a refcount
    /// bump — no bytes are copied until the tenant writes.
    pub fn mount_into(&self, fs: &mut Vfs) -> usize {
        let mut mounted = 0;
        for (path, content) in &self.files {
            if fs.admin().stage_shared(path, content).is_ok() {
                mounted += 1;
            }
        }
        mounted
    }

    /// Unique bytes resident across all staged content.
    pub fn bytes_held(&self) -> u64 {
        self.store.bytes_held()
    }

    /// Total logical bytes a tenant sees (sum of staged file lengths;
    /// ≥ [`bytes_held`](Self::bytes_held) when contents repeat).
    pub fn logical_bytes(&self) -> u64 {
        self.files.iter().map(|(_, c)| c.len() as u64).sum()
    }

    /// Number of staged files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// Per-tenant overrides over the fleet's [`FleetConfig`] defaults.
///
/// Every field is optional: an empty spec inherits everything and gets an
/// auto-generated `tenant-<id>` name.
#[derive(Debug, Clone, Default)]
pub struct TenantSpec {
    /// Tenant name (unique within the fleet). Empty = auto-generated.
    pub name: String,
    /// Full engine config override (replaces [`FleetConfig::base`]).
    pub config: Option<Config>,
    /// Shadow-store override — the per-tenant recovery budget.
    pub shadow: Option<ShadowConfig>,
    /// Pipeline override (`Some` = run this tenant's analysis async).
    pub pipeline: Option<PipelineConfig>,
    /// Deterministic fault plan for chaos runs.
    pub faults: Option<FaultPlan>,
    /// Disables this tenant's telemetry sink (probes become no-ops and
    /// the tenant contributes nothing to rollups).
    pub quiet: bool,
    /// Pins the tenant's simulated clock to the deterministic policy:
    /// measured filter overhead is ledgered but never folded into
    /// `at_nanos`, so timestamps become a pure function of the op
    /// sequence (reproducible across machines and runs).
    pub deterministic_clock: bool,
}

impl TenantSpec {
    /// A spec with only a name set.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Sets a per-tenant shadow byte budget.
    pub fn shadow_budget(mut self, byte_budget: u64) -> Self {
        self.shadow = Some(ShadowConfig::with_budget(byte_budget));
        self
    }

    /// Runs this tenant's analysis on an async pipeline.
    pub fn pipelined(mut self, config: PipelineConfig) -> Self {
        self.pipeline = Some(config);
        self
    }

    /// Arms a deterministic fault plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Pins this tenant's simulated clock to the deterministic policy.
    pub fn deterministic_clock(mut self) -> Self {
        self.deterministic_clock = true;
        self
    }
}

/// Fleet-wide defaults applied to every tenant a [`TenantSpec`] does not
/// override.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The engine configuration every tenant starts from.
    pub base: Config,
    /// Default per-tenant shadow-store sizing.
    pub shadow: ShadowConfig,
    /// Default pipeline (`None` = inline analysis, the right default for
    /// thousands of mostly-idle tenants: no idle worker threads).
    pub pipeline: Option<PipelineConfig>,
    /// Journal capacity (events retained) per tenant telemetry sink.
    pub journal_capacity: usize,
}

impl FleetConfig {
    /// Defaults protecting `dir` in every tenant: a modest 4 MiB shadow
    /// budget per tenant (the per-tenant working set is bounded by
    /// detection latency, not corpus size), inline analysis, and a small
    /// per-tenant journal.
    pub fn protecting(dir: impl Into<VPath>) -> Self {
        Self {
            base: Config::protecting(dir),
            shadow: ShadowConfig::with_budget(4 * 1024 * 1024),
            pipeline: None,
            journal_capacity: 4096,
        }
    }
}

/// One monitored namespace: a detector [`Session`] attached to a
/// namespaced [`Vfs`] sharing the fleet corpus.
pub struct Tenant {
    id: u32,
    name: String,
    fs: Vfs,
    session: Session,
    telemetry: Telemetry,
    suspended: bool,
}

impl Tenant {
    /// The fleet-assigned tenant id (also the VFS namespace).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The tenant's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's filesystem. Drive workloads through
    /// [`fs_mut`](Self::fs_mut); the attached filter scores every
    /// operation.
    pub fn fs(&self) -> &Vfs {
        &self.fs
    }

    /// Mutable access to the tenant's filesystem.
    pub fn fs_mut(&mut self) -> &mut Vfs {
        &mut self.fs
    }

    /// The tenant's detector session (derefs to
    /// [`Monitor`](cryptodrop::Monitor) for score/detection reads).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The session and the filesystem together — for calls like
    /// [`Session::reconcile_and_restore`] that need both at once.
    pub fn session_and_fs(&mut self) -> (&Session, &mut Vfs) {
        (&self.session, &mut self.fs)
    }

    /// The tenant's telemetry sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Whether the fleet has administratively suspended this tenant.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Drives a [`Workload`](cryptodrop_vfs::Workload) — an attack
    /// sample, an evasive strategy, or a benign application — inside this
    /// tenant's namespace, spawning its pid plan and returning what the
    /// workload reported.
    pub fn drive_workload(
        &mut self,
        workload: &dyn cryptodrop_vfs::Workload,
        root: &VPath,
        seed: u64,
    ) -> cryptodrop_vfs::WorkloadOutcome {
        cryptodrop_vfs::drive_workload(&mut self.fs, workload, root, seed)
    }
}

impl fmt::Debug for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("suspended", &self.suspended)
            .field("files", &self.fs.file_count())
            .finish()
    }
}

/// Why a [`Fleet`] operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// No tenant with this id.
    UnknownTenant(u32),
    /// No tenant with this name.
    UnknownName(String),
    /// A tenant with this name already exists.
    DuplicateName(String),
    /// The tenant is administratively suspended.
    Suspended(u32),
    /// The tenant's engine configuration failed validation.
    Config(ConfigError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTenant(id) => write!(f, "no tenant with id {id}"),
            Self::UnknownName(name) => write!(f, "no tenant named {name:?}"),
            Self::DuplicateName(name) => write!(f, "tenant name {name:?} already in use"),
            Self::Suspended(id) => write!(f, "tenant {id} is suspended"),
            Self::Config(e) => write!(f, "tenant config rejected: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for FleetError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

/// A point-in-time summary of the fleet, for dashboards and the admin
/// plane's `stats` method.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Active tenants.
    pub tenants: usize,
    /// Of those, administratively suspended.
    pub suspended: usize,
    /// Tenants ever spawned.
    pub spawned: u64,
    /// Tenants despawned.
    pub despawned: u64,
    /// Unique corpus bytes resident (shared across all tenants).
    pub corpus_bytes: u64,
    /// Staged corpus files.
    pub corpus_files: usize,
    /// Bytes tenants have privately materialized by writing (summed).
    pub private_bytes: u64,
    /// Logical bytes tenants still share with the corpus (summed over
    /// tenants — the memory this sharing avoids materializing).
    pub shared_logical_bytes: u64,
    /// Detections across all tenants.
    pub detections: u64,
}

/// The multiplexer: every tenant's detector and filesystem, the shared
/// corpus, and the rollup/export surface. See the [crate docs](crate).
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    corpus: SharedCorpus,
    tenants: BTreeMap<u32, Tenant>,
    by_name: HashMap<String, u32>,
    // Namespace 0 is the Vfs default; tenant ids start at 1 so every
    // tenant gets a nonzero namespace.
    next_id: u32,
    spawned: u64,
    despawned: u64,
}

impl Fleet {
    /// An empty fleet with the given defaults.
    pub fn new(cfg: FleetConfig) -> Self {
        Self {
            cfg,
            corpus: SharedCorpus::new(),
            tenants: BTreeMap::new(),
            by_name: HashMap::new(),
            next_id: 1,
            spawned: 0,
            despawned: 0,
        }
    }

    /// The fleet defaults.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The shared corpus.
    pub fn corpus(&self) -> &SharedCorpus {
        &self.corpus
    }

    /// Stages a corpus file and mounts it into every *existing* tenant
    /// (new tenants mount the whole corpus at spawn). Returns whether the
    /// bytes were already resident.
    pub fn stage_file(&mut self, path: VPath, data: Vec<u8>) -> bool {
        let dedup_hit = self.corpus.stage(path.clone(), data);
        if let Some((_, content)) = self.corpus.files.iter().find(|(p, _)| *p == path) {
            for tenant in self.tenants.values_mut() {
                let _ = tenant.fs.admin().stage_shared(&path, content);
            }
        }
        dedup_hit
    }

    /// Spawns a tenant: a fresh namespaced [`Vfs`] with the corpus
    /// mounted copy-on-write, and a detector [`Session`] built from the
    /// fleet defaults plus `spec`'s overrides, attached and scoring.
    pub fn spawn(&mut self, spec: TenantSpec) -> Result<u32, FleetError> {
        let id = self.next_id;
        let name = if spec.name.is_empty() {
            format!("tenant-{id}")
        } else {
            spec.name
        };
        if self.by_name.contains_key(&name) {
            return Err(FleetError::DuplicateName(name));
        }

        let telemetry = if spec.quiet {
            Telemetry::disabled()
        } else {
            Telemetry::new(self.cfg.journal_capacity)
        };
        let config = spec.config.unwrap_or_else(|| self.cfg.base.clone());
        let shadow = spec.shadow.unwrap_or_else(|| self.cfg.shadow.clone());
        let mut builder = CryptoDrop::builder()
            .config(config)
            .telemetry(telemetry.clone())
            .recovery(shadow);
        if let Some(pcfg) = spec.pipeline.or(self.cfg.pipeline) {
            builder = builder.pipeline_config(pcfg);
        }
        if let Some(plan) = spec.faults {
            builder = builder.faults(plan);
        }
        if spec.deterministic_clock {
            builder = builder.deterministic_clock();
        }
        let session = builder.build()?;

        let mut fs = Vfs::with_namespace(id);
        fs.set_telemetry(telemetry.clone());
        // Mount before attaching: corpus staging is administrative
        // provisioning, not tenant activity, and must not score.
        self.corpus.mount_into(&mut fs);
        session.attach(&mut fs);

        self.next_id += 1;
        self.spawned += 1;
        self.by_name.insert(name.clone(), id);
        self.tenants.insert(
            id,
            Tenant {
                id,
                name,
                fs,
                session,
                telemetry,
                suspended: false,
            },
        );
        Ok(id)
    }

    /// The tenant with this id.
    pub fn get(&self, id: u32) -> Option<&Tenant> {
        self.tenants.get(&id)
    }

    /// Mutable access to the tenant with this id.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut Tenant> {
        self.tenants.get_mut(&id)
    }

    /// Resolves a tenant name to its id.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Active tenant ids, ascending.
    pub fn tenant_ids(&self) -> Vec<u32> {
        self.tenants.keys().copied().collect()
    }

    /// Iterates over active tenants in id order.
    pub fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.values()
    }

    /// Number of active tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Administratively suspends a tenant: drains its pipeline so every
    /// in-flight verdict lands, then marks it suspended. Fleet-level
    /// mutating operations ([`restore`](Self::restore)) refuse suspended
    /// tenants; direct [`fs_mut`](Tenant::fs_mut) access is the caller's
    /// own responsibility.
    pub fn suspend(&mut self, id: u32) -> Result<(), FleetError> {
        let t = self.tenants.get_mut(&id).ok_or(FleetError::UnknownTenant(id))?;
        t.session.drain();
        t.suspended = true;
        Ok(())
    }

    /// Lifts an administrative suspension.
    pub fn resume(&mut self, id: u32) -> Result<(), FleetError> {
        let t = self.tenants.get_mut(&id).ok_or(FleetError::UnknownTenant(id))?;
        t.suspended = false;
        Ok(())
    }

    /// Removes a tenant, shutting its session down drain-first (every
    /// queued record is analyzed before the workers exit), and returns
    /// the tenant's final pipeline counters for the fleet's books.
    pub fn despawn(&mut self, id: u32) -> Result<PipelineStats, FleetError> {
        let tenant = self.tenants.remove(&id).ok_or(FleetError::UnknownTenant(id))?;
        self.by_name.remove(&tenant.name);
        self.despawned += 1;
        Ok(tenant.session.shutdown())
    }

    /// Reconciles pending detections into suspensions and rolls every
    /// detected family back from the tenant's shadow store (see
    /// [`Session::reconcile_and_restore`]). One report per detected
    /// family.
    pub fn restore(&mut self, id: u32) -> Result<Vec<RecoveryReport>, FleetError> {
        let t = self.tenants.get_mut(&id).ok_or(FleetError::UnknownTenant(id))?;
        if t.suspended {
            return Err(FleetError::Suspended(id));
        }
        Ok(t.session.reconcile_and_restore(&mut t.fs))
    }

    /// Merges every tenant's metric registry into one fleet-wide
    /// snapshot (counters and gauges sum by name, histograms pool —
    /// see [`MetricsSnapshot::merge`]).
    pub fn rollup(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for t in self.tenants.values() {
            out.merge(&t.telemetry.metrics().snapshot());
        }
        out
    }

    /// Exports every tenant's journal as JSONL with `"tenant"` (id) and
    /// `"name"` tags spliced into each event line — one fleet-wide
    /// timeline grouped by tenant, in per-tenant sequence order.
    pub fn tagged_journal(&self) -> String {
        let mut out = String::new();
        for (id, t) in &self.tenants {
            let jsonl = t.telemetry.journal().to_jsonl();
            for line in jsonl.lines() {
                let Some(rest) = line.strip_prefix('{') else {
                    continue;
                };
                out.push_str(&format!("{{\"tenant\":{id},\"name\":"));
                rpc::write_str(&t.name, &mut out);
                if rest == "}" {
                    out.push('}');
                } else {
                    out.push(',');
                    out.push_str(rest);
                }
                out.push('\n');
            }
        }
        out
    }

    /// A point-in-time fleet summary.
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats {
            tenants: self.tenants.len(),
            spawned: self.spawned,
            despawned: self.despawned,
            corpus_bytes: self.corpus.bytes_held(),
            corpus_files: self.corpus.file_count(),
            ..FleetStats::default()
        };
        for t in self.tenants.values() {
            if t.suspended {
                s.suspended += 1;
            }
            s.private_bytes += t.fs.private_bytes();
            s.shared_logical_bytes += t.fs.shared_bytes();
            s.detections += t.session.detections().len() as u64;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_vfs::OpenOptions;

    fn docs() -> VPath {
        VPath::new("/docs")
    }

    fn fleet_with_corpus(files: usize) -> Fleet {
        let mut fleet = Fleet::new(FleetConfig::protecting(docs().as_str()));
        for i in 0..files {
            let body: Vec<u8> = (0..40u32)
                .flat_map(|l| format!("file {i} line {l}: steady prose content\n").into_bytes())
                .collect();
            fleet.stage_file(docs().join(format!("doc-{i}.txt")), body);
        }
        fleet
    }

    /// In-place xor encryption of every corpus file — the canonical
    /// ransomware-shaped workload from the core tests.
    fn encrypt_all(fs: &mut Vfs, pid: cryptodrop_vfs::ProcessId, files: usize) {
        for i in 0..files {
            let path = docs().join(format!("doc-{i}.txt"));
            let Ok(h) = fs.open(pid, &path, OpenOptions::modify()) else {
                break;
            };
            let Ok(data) = fs.read_to_end(pid, h) else {
                break;
            };
            let ct: Vec<u8> = data
                .iter()
                .enumerate()
                .map(|(j, b)| b ^ (j as u8).wrapping_mul(197).wrapping_add(91))
                .collect();
            if fs.seek(pid, h, 0).is_err() || fs.write(pid, h, &ct).is_err() {
                let _ = fs.close(pid, h);
                break;
            }
            if fs.close(pid, h).is_err() {
                break;
            }
        }
    }

    #[test]
    fn corpus_is_resident_once_across_tenants() {
        let mut fleet = fleet_with_corpus(20);
        let corpus_bytes = fleet.corpus().bytes_held();
        assert!(corpus_bytes > 0);
        for _ in 0..10 {
            fleet.spawn(TenantSpec::default()).unwrap();
        }
        let stats = fleet.stats();
        assert_eq!(stats.tenants, 10);
        assert_eq!(stats.corpus_bytes, corpus_bytes, "no per-tenant copies");
        assert_eq!(stats.private_bytes, 0, "nothing materialized yet");
        assert_eq!(stats.shared_logical_bytes, 10 * corpus_bytes);
        // Tenant names auto-generate and resolve.
        assert_eq!(fleet.id_of("tenant-1"), Some(1));
    }

    #[test]
    fn a_writing_tenant_materializes_only_its_own_copy() {
        let mut fleet = fleet_with_corpus(5);
        let a = fleet.spawn(TenantSpec::named("writer")).unwrap();
        let b = fleet.spawn(TenantSpec::named("reader")).unwrap();

        let path = docs().join("doc-0.txt");
        let original = fleet.get_mut(b).unwrap().fs_mut().admin().read_file(&path).unwrap();

        let t = fleet.get_mut(a).unwrap();
        let pid = t.fs_mut().spawn_process("editor.exe");
        let h = t.fs_mut().open(pid, &path, OpenOptions::modify()).unwrap();
        t.fs_mut().write(pid, h, b"edited").unwrap();
        t.fs_mut().close(pid, h).unwrap();

        assert!(fleet.get(a).unwrap().fs().private_bytes() > 0);
        assert_eq!(fleet.get(b).unwrap().fs().private_bytes(), 0);
        assert_eq!(
            fleet.get_mut(b).unwrap().fs_mut().admin().read_file(&path).unwrap(),
            original,
            "the other tenant's view is untouched"
        );
    }

    #[test]
    fn detection_and_restore_are_per_tenant() {
        let files = 30;
        let mut fleet = fleet_with_corpus(files);
        let victim = fleet.spawn(TenantSpec::named("victim")).unwrap();
        let bystander = fleet.spawn(TenantSpec::named("bystander")).unwrap();

        let originals: Vec<Vec<u8>> = (0..files)
            .map(|i| {
                fleet
                    .get_mut(victim)
                    .unwrap()
                    .fs_mut()
                    .admin()
                    .read_file(&docs().join(format!("doc-{i}.txt")))
                    .unwrap()
            })
            .collect();

        let t = fleet.get_mut(victim).unwrap();
        let pid = t.fs_mut().spawn_process("cryptolocker.exe");
        encrypt_all(t.fs_mut(), pid, files);
        assert!(t.fs().is_suspended(pid), "the attacker is dropped");
        assert_eq!(t.session().detections().len(), 1);

        let reports = fleet.restore(victim).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].files_restored > 0);
        for (i, original) in originals.iter().enumerate() {
            let path = docs().join(format!("doc-{i}.txt"));
            assert_eq!(
                &fleet.get_mut(victim).unwrap().fs_mut().admin().read_file(&path).unwrap(),
                original,
                "doc-{i} restored"
            );
        }
        let b = fleet.get(bystander).unwrap();
        assert!(b.session().detections().is_empty(), "no cross-tenant bleed");
        assert_eq!(b.fs().private_bytes(), 0);
    }

    #[test]
    fn rollup_sums_across_tenants_and_journal_is_tagged() {
        let mut fleet = fleet_with_corpus(10);
        let a = fleet.spawn(TenantSpec::named("a")).unwrap();
        let b = fleet.spawn(TenantSpec::named("b")).unwrap();
        for id in [a, b] {
            let t = fleet.get_mut(id).unwrap();
            let pid = t.fs_mut().spawn_process("app.exe");
            encrypt_all(t.fs_mut(), pid, 10);
        }
        let rollup = fleet.rollup();
        let per_tenant: u64 = fleet
            .tenants()
            .map(|t| {
                t.telemetry()
                    .metrics()
                    .snapshot()
                    .counters
                    .get("recovery.shadow.captures")
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        assert!(per_tenant > 0, "attacks must capture shadows");
        assert_eq!(rollup.counters["recovery.shadow.captures"], per_tenant);

        let journal = fleet.tagged_journal();
        assert!(!journal.is_empty());
        for line in journal.lines() {
            let v = rpc::parse(line).expect("tagged lines stay valid JSON");
            let tenant = v.get("tenant").and_then(|t| t.as_u64()).unwrap();
            assert!(tenant == u64::from(a) || tenant == u64::from(b));
            assert!(v.get("name").is_some());
            assert!(v.get("kind").is_some(), "original event fields survive");
        }
    }

    #[test]
    fn lifecycle_suspend_despawn_and_errors() {
        let mut fleet = fleet_with_corpus(3);
        let id = fleet.spawn(TenantSpec::named("solo")).unwrap();
        assert_eq!(
            fleet.spawn(TenantSpec::named("solo")),
            Err(FleetError::DuplicateName("solo".to_string()))
        );

        fleet.suspend(id).unwrap();
        assert!(fleet.get(id).unwrap().is_suspended());
        assert_eq!(fleet.restore(id), Err(FleetError::Suspended(id)));
        fleet.resume(id).unwrap();
        assert!(fleet.restore(id).unwrap().is_empty(), "nothing detected");

        let stats = fleet.despawn(id).unwrap();
        assert_eq!(stats, PipelineStats::default(), "inline tenant: zero stats");
        assert!(fleet.is_empty());
        assert_eq!(fleet.id_of("solo"), None);
        assert_eq!(fleet.despawn(id), Err(FleetError::UnknownTenant(id)));
        assert_eq!(fleet.restore(99), Err(FleetError::UnknownTenant(99)));

        // The name is free again and ids never recycle.
        let id2 = fleet.spawn(TenantSpec::named("solo")).unwrap();
        assert!(id2 > id);
        let s = fleet.stats();
        assert_eq!((s.spawned, s.despawned, s.tenants), (2, 1, 1));
    }

    #[test]
    fn pipelined_tenant_reports_final_stats_on_despawn() {
        let mut fleet = fleet_with_corpus(10);
        let id = fleet
            .spawn(TenantSpec::named("piped").pipelined(PipelineConfig::default()))
            .unwrap();
        let t = fleet.get_mut(id).unwrap();
        let pid = t.fs_mut().spawn_process("app.exe");
        encrypt_all(t.fs_mut(), pid, 10);
        let stats = fleet.despawn(id).unwrap();
        assert!(stats.enqueued > 0, "pipelined analysis went through queues");
        assert_eq!(stats.processed + stats.degraded, stats.enqueued);
    }

    #[test]
    fn corpus_dedup_and_restage() {
        let mut corpus = SharedCorpus::new();
        assert!(corpus.is_empty());
        assert!(!corpus.stage(VPath::new("/docs/a"), b"same bytes".to_vec()));
        assert!(corpus.stage(VPath::new("/docs/b"), b"same bytes".to_vec()));
        assert_eq!(corpus.bytes_held(), 10, "identical content resident once");
        assert_eq!(corpus.logical_bytes(), 20);
        assert_eq!(corpus.file_count(), 2);
        // Restaging a path replaces its content and releases the old ref.
        corpus.stage(VPath::new("/docs/a"), b"fresh".to_vec());
        assert_eq!(corpus.file_count(), 2);
        assert_eq!(corpus.logical_bytes(), 15);
        assert_eq!(corpus.bytes_held(), 15, "old blob still referenced by /docs/b");
        corpus.stage(VPath::new("/docs/b"), b"fresh".to_vec());
        assert_eq!(corpus.bytes_held(), 5, "last reference released the old blob");
    }

    #[test]
    fn late_staged_files_reach_existing_tenants() {
        let mut fleet = fleet_with_corpus(2);
        let id = fleet.spawn(TenantSpec::default()).unwrap();
        fleet.stage_file(docs().join("late.txt"), b"added after spawn".to_vec());
        assert_eq!(
            fleet
                .get_mut(id)
                .unwrap()
                .fs_mut()
                .admin()
                .read_file(&docs().join("late.txt"))
                .unwrap(),
            b"added after spawn"
        );
    }
}
