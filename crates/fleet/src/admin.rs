//! The fleet's line-delimited JSON-RPC-style admin plane.
//!
//! One request per line, one response per line, in order:
//!
//! ```text
//! → {"id":1,"method":"spawn","params":{"name":"alice"}}
//! ← {"id":1,"result":{"tenant":1,"name":"alice"}}
//! → {"id":2,"method":"stats"}
//! ← {"id":2,"result":{"tenants":1,...}}
//! ```
//!
//! Errors use JSON-RPC's shape and code conventions (`-32700` parse,
//! `-32600` invalid request, `-32601` unknown method, `-32602` invalid
//! params, `-32000` fleet errors):
//!
//! ```text
//! ← {"id":3,"error":{"code":-32000,"message":"no tenant with id 9"}}
//! ```

use crate::rpc::{self, obj, Value};
use crate::{Fleet, FleetError, TenantSpec};

/// Drives a [`Fleet`] from newline-delimited JSON requests — the
/// transport-agnostic core of an admin socket. See the [module
/// docs](self) for the wire format and
/// [`handle_line`](FleetAdmin::handle_line) for the method set.
#[derive(Debug)]
pub struct FleetAdmin {
    fleet: Fleet,
}

const PARSE_ERROR: i64 = -32700;
const INVALID_REQUEST: i64 = -32600;
const METHOD_NOT_FOUND: i64 = -32601;
const INVALID_PARAMS: i64 = -32602;
const FLEET_ERROR: i64 = -32000;

/// An in-flight failure: code + message, rendered into the response.
struct Failure(i64, String);

impl From<FleetError> for Failure {
    fn from(e: FleetError) -> Self {
        Failure(FLEET_ERROR, e.to_string())
    }
}

fn invalid_params(message: &str) -> Failure {
    Failure(INVALID_PARAMS, message.to_string())
}

impl FleetAdmin {
    /// Wraps a fleet.
    pub fn new(fleet: Fleet) -> Self {
        Self { fleet }
    }

    /// The fleet, for reads alongside the admin plane.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Direct mutable fleet access (e.g. to drive tenant workloads
    /// between admin calls).
    pub fn fleet_mut(&mut self) -> &mut Fleet {
        &mut self.fleet
    }

    /// Unwraps the fleet.
    pub fn into_inner(self) -> Fleet {
        self.fleet
    }

    /// Handles every line of `input` in order, returning one response
    /// line per non-blank request line.
    pub fn serve(&mut self, input: &str) -> String {
        let mut out = String::new();
        for line in input.lines().filter(|l| !l.trim().is_empty()) {
            out.push_str(&self.handle_line(line));
            out.push('\n');
        }
        out
    }

    /// Handles one request line and returns its response line.
    ///
    /// Methods:
    ///
    /// | method    | params                                   | result |
    /// |-----------|------------------------------------------|--------|
    /// | `spawn`   | `name?`, `shadow_budget?`, `pipelined?`, `quiet?` | `{tenant, name}` |
    /// | `suspend` | `tenant` (id or name)                    | `{suspended}` |
    /// | `resume`  | `tenant`                                 | `{resumed}` |
    /// | `despawn` | `tenant`                                 | `{despawned, enqueued, processed, degraded}` |
    /// | `restore` | `tenant`                                 | `{tenant, reports: [...]}` |
    /// | `audit`   | `tenant`                                 | `{tenant, detections: [...]}` |
    /// | `stats`   | —                                        | fleet-wide [`FleetStats`](crate::FleetStats) fields |
    /// | `list`    | —                                        | `{tenants: [{id, name, ...}]}` |
    pub fn handle_line(&mut self, line: &str) -> String {
        let (id, outcome) = match rpc::parse(line) {
            Err(e) => (
                Value::Null,
                Err(Failure(PARSE_ERROR, format!("parse error: {e}"))),
            ),
            Ok(req) => {
                let id = req.get("id").cloned().unwrap_or(Value::Null);
                let outcome = match req.get("method").and_then(Value::as_str) {
                    None => Err(Failure(
                        INVALID_REQUEST,
                        "request needs a string \"method\"".to_string(),
                    )),
                    Some(method) => {
                        let params = req.get("params").cloned().unwrap_or(Value::Obj(Vec::new()));
                        self.dispatch(method, &params)
                    }
                };
                (id, outcome)
            }
        };
        let body = match outcome {
            Ok(result) => obj(vec![("id", id), ("result", result)]),
            Err(Failure(code, message)) => obj(vec![
                ("id", id),
                (
                    "error",
                    obj(vec![
                        ("code", Value::Num(code as f64)),
                        ("message", Value::Str(message)),
                    ]),
                ),
            ]),
        };
        body.render()
    }

    fn dispatch(&mut self, method: &str, params: &Value) -> Result<Value, Failure> {
        match method {
            "spawn" => self.spawn(params),
            "suspend" => {
                let id = self.tenant_param(params)?;
                self.fleet.suspend(id)?;
                Ok(obj(vec![("suspended", id.into())]))
            }
            "resume" => {
                let id = self.tenant_param(params)?;
                self.fleet.resume(id)?;
                Ok(obj(vec![("resumed", id.into())]))
            }
            "despawn" => {
                let id = self.tenant_param(params)?;
                let stats = self.fleet.despawn(id)?;
                Ok(obj(vec![
                    ("despawned", id.into()),
                    ("enqueued", stats.enqueued.into()),
                    ("processed", stats.processed.into()),
                    ("degraded", stats.degraded.into()),
                ]))
            }
            "restore" => {
                let id = self.tenant_param(params)?;
                let reports = self.fleet.restore(id)?;
                let rendered = reports
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("family", r.family.0.into()),
                            ("files_restored", r.files_restored.into()),
                            ("files_removed", r.files_removed.into()),
                            ("renames_undone", r.renames_undone.into()),
                            ("conflicts", r.conflicts.len().into()),
                        ])
                    })
                    .collect();
                Ok(obj(vec![
                    ("tenant", id.into()),
                    ("reports", Value::Arr(rendered)),
                ]))
            }
            "audit" => {
                let id = self.tenant_param(params)?;
                let t = self
                    .fleet
                    .get(id)
                    .ok_or(FleetError::UnknownTenant(id))?;
                let detections = t
                    .session()
                    .detections()
                    .iter()
                    .map(|d| {
                        obj(vec![
                            ("pid", d.pid.0.into()),
                            ("process", d.process_name.as_str().into()),
                            ("score", u64::from(d.score).into()),
                            ("threshold", u64::from(d.threshold).into()),
                            ("union", d.union_triggered.into()),
                            ("files_lost", u64::from(d.files_lost).into()),
                        ])
                    })
                    .collect();
                Ok(obj(vec![
                    ("tenant", id.into()),
                    ("detections", Value::Arr(detections)),
                ]))
            }
            "stats" => {
                let s = self.fleet.stats();
                Ok(obj(vec![
                    ("tenants", s.tenants.into()),
                    ("suspended", s.suspended.into()),
                    ("spawned", s.spawned.into()),
                    ("despawned", s.despawned.into()),
                    ("corpus_bytes", s.corpus_bytes.into()),
                    ("corpus_files", s.corpus_files.into()),
                    ("private_bytes", s.private_bytes.into()),
                    ("shared_logical_bytes", s.shared_logical_bytes.into()),
                    ("detections", s.detections.into()),
                ]))
            }
            "list" => {
                let tenants = self
                    .fleet
                    .tenants()
                    .map(|t| {
                        obj(vec![
                            ("id", t.id().into()),
                            ("name", t.name().into()),
                            ("suspended", t.is_suspended().into()),
                            ("files", t.fs().file_count().into()),
                            ("private_bytes", t.fs().private_bytes().into()),
                        ])
                    })
                    .collect();
                Ok(obj(vec![("tenants", Value::Arr(tenants))]))
            }
            other => Err(Failure(
                METHOD_NOT_FOUND,
                format!("unknown method {other:?}"),
            )),
        }
    }

    fn spawn(&mut self, params: &Value) -> Result<Value, Failure> {
        let mut spec = TenantSpec::default();
        if let Some(name) = params.get("name") {
            spec.name = name
                .as_str()
                .ok_or_else(|| invalid_params("\"name\" must be a string"))?
                .to_string();
        }
        if let Some(budget) = params.get("shadow_budget") {
            let budget = budget
                .as_u64()
                .filter(|b| *b > 0)
                .ok_or_else(|| invalid_params("\"shadow_budget\" must be a positive integer"))?;
            spec = spec.shadow_budget(budget);
        }
        if let Some(piped) = params.get("pipelined") {
            if piped
                .as_bool()
                .ok_or_else(|| invalid_params("\"pipelined\" must be a boolean"))?
            {
                spec = spec.pipelined(Default::default());
            }
        }
        if let Some(quiet) = params.get("quiet") {
            spec.quiet = quiet
                .as_bool()
                .ok_or_else(|| invalid_params("\"quiet\" must be a boolean"))?;
        }
        let id = self.fleet.spawn(spec)?;
        let name = self
            .fleet
            .get(id)
            .map(|t| t.name().to_string())
            .unwrap_or_default();
        Ok(obj(vec![("tenant", id.into()), ("name", name.into())]))
    }

    /// Resolves `params.tenant` — a numeric id or a name string.
    fn tenant_param(&self, params: &Value) -> Result<u32, Failure> {
        let v = params
            .get("tenant")
            .ok_or_else(|| invalid_params("missing \"tenant\" param"))?;
        if let Some(n) = v.as_u64() {
            return u32::try_from(n)
                .map_err(|_| invalid_params("\"tenant\" id out of range"));
        }
        if let Some(name) = v.as_str() {
            return self
                .fleet
                .id_of(name)
                .ok_or_else(|| FleetError::UnknownName(name.to_string()).into());
        }
        Err(invalid_params("\"tenant\" must be an id or a name"))
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Num(f64::from(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FleetConfig;
    use cryptodrop_vfs::{OpenOptions, VPath};

    fn admin_with_corpus() -> FleetAdmin {
        let mut fleet = Fleet::new(FleetConfig::protecting("/docs"));
        for i in 0..25 {
            let body: Vec<u8> = (0..40u32)
                .flat_map(|l| format!("file {i} line {l}: steady prose content\n").into_bytes())
                .collect();
            fleet.stage_file(VPath::new(&format!("/docs/doc-{i}.txt")), body);
        }
        FleetAdmin::new(fleet)
    }

    fn result(response: &str) -> Value {
        let v = rpc::parse(response).expect("response is valid JSON");
        v.get("result").cloned().unwrap_or_else(|| {
            panic!("expected a result, got {response}");
        })
    }

    #[test]
    fn spawn_stats_list_round_trip() {
        let mut admin = admin_with_corpus();
        let r = result(&admin.handle_line(
            r#"{"id":1,"method":"spawn","params":{"name":"alice","shadow_budget":1048576}}"#,
        ));
        assert_eq!(r.get("tenant").and_then(Value::as_u64), Some(1));
        assert_eq!(r.get("name").and_then(Value::as_str), Some("alice"));

        let r = result(&admin.handle_line(r#"{"id":2,"method":"spawn"}"#));
        assert_eq!(r.get("name").and_then(Value::as_str), Some("tenant-2"));

        let r = result(&admin.handle_line(r#"{"id":3,"method":"stats"}"#));
        assert_eq!(r.get("tenants").and_then(Value::as_u64), Some(2));
        assert!(r.get("corpus_bytes").and_then(Value::as_u64).unwrap() > 0);
        assert_eq!(r.get("private_bytes").and_then(Value::as_u64), Some(0));

        let r = result(&admin.handle_line(r#"{"id":4,"method":"list"}"#));
        let Value::Arr(tenants) = r.get("tenants").unwrap() else {
            panic!("tenants must be an array");
        };
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].get("name").and_then(Value::as_str), Some("alice"));
    }

    #[test]
    fn attack_audit_restore_through_the_plane() {
        let mut admin = admin_with_corpus();
        admin.handle_line(r#"{"id":1,"method":"spawn","params":{"name":"victim"}}"#);

        // Drive a ransomware-shaped workload directly on the tenant fs.
        let t = admin.fleet_mut().get_mut(1).unwrap();
        let pid = t.fs_mut().spawn_process("evil.exe");
        for i in 0..25 {
            let path = VPath::new(&format!("/docs/doc-{i}.txt"));
            let Ok(h) = t.fs_mut().open(pid, &path, OpenOptions::modify()) else {
                break;
            };
            let Ok(data) = t.fs_mut().read_to_end(pid, h) else {
                break;
            };
            let ct: Vec<u8> = data.iter().map(|b| b ^ 0xA5).collect();
            if t.fs_mut().seek(pid, h, 0).is_err() || t.fs_mut().write(pid, h, &ct).is_err() {
                let _ = t.fs_mut().close(pid, h);
                break;
            }
            if t.fs_mut().close(pid, h).is_err() {
                break;
            }
        }

        let r = result(&admin.handle_line(r#"{"id":2,"method":"audit","params":{"tenant":"victim"}}"#));
        let Value::Arr(detections) = r.get("detections").unwrap() else {
            panic!("detections must be an array");
        };
        assert_eq!(detections.len(), 1, "the attack was detected");
        assert_eq!(
            detections[0].get("process").and_then(Value::as_str),
            Some("evil.exe")
        );

        let r = result(&admin.handle_line(r#"{"id":3,"method":"restore","params":{"tenant":1}}"#));
        let Value::Arr(reports) = r.get("reports").unwrap() else {
            panic!("reports must be an array");
        };
        assert_eq!(reports.len(), 1);
        assert!(reports[0].get("files_restored").and_then(Value::as_u64).unwrap() > 0);
    }

    #[test]
    fn lifecycle_and_error_codes() {
        let mut admin = admin_with_corpus();
        let responses = admin.serve(concat!(
            r#"{"id":1,"method":"spawn","params":{"name":"a"}}"#,
            "\n",
            r#"{"id":2,"method":"suspend","params":{"tenant":1}}"#,
            "\n",
            r#"{"id":3,"method":"resume","params":{"tenant":"a"}}"#,
            "\n",
            r#"{"id":4,"method":"despawn","params":{"tenant":1}}"#,
            "\n",
            r#"{"id":5,"method":"despawn","params":{"tenant":1}}"#,
            "\n",
            r#"{"id":6,"method":"frobnicate"}"#,
            "\n",
            r#"{"id":7,"method":"suspend"}"#,
            "\n",
            "not json",
        ));
        let lines: Vec<Value> = responses.lines().map(|l| rpc::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 8, "one response per request line");
        for (i, expected_id) in (1..=7u64).enumerate() {
            assert_eq!(lines[i].get("id").and_then(Value::as_u64), Some(expected_id));
        }
        assert!(lines[1].get("result").is_some());
        assert!(lines[2].get("result").is_some());
        assert!(lines[3].get("result").is_some());
        let code = |v: &Value| v.get("error").and_then(|e| e.get("code")).cloned();
        assert_eq!(code(&lines[4]), Some(Value::Num(-32000.0)), "unknown tenant");
        assert_eq!(code(&lines[5]), Some(Value::Num(-32601.0)), "unknown method");
        assert_eq!(code(&lines[6]), Some(Value::Num(-32602.0)), "missing param");
        assert_eq!(code(&lines[7]), Some(Value::Num(-32700.0)), "parse error");
        assert_eq!(lines[7].get("id"), Some(&Value::Null));
    }
}
