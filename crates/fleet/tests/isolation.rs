//! Tenant isolation property: a fleet multiplexing N tenants over one
//! shared copy-on-write corpus must be *observationally identical* to N
//! standalone [`Session`]s, each with its own materialized corpus copy.
//!
//! Each tenant replays a deterministic trace (attacker / editor / reader,
//! chosen by tenant id, parameterized by an LCG seeded with the id).
//! Because fleet tenant `i` and standalone run `i` use the same VFS
//! namespace, the same staging order, and the same trace, every derived
//! artifact must match byte-for-byte: detections, audit trails, restore
//! reports, and the final content of every file. The property is checked
//! fault-free and under the deterministic chaos fault matrix.

use cryptodrop::{
    AuditTrail, CryptoDrop, DetectionReport, RecoveryReport, Session, ShadowConfig,
};
use cryptodrop_fleet::{Fleet, FleetConfig, TenantSpec};
use cryptodrop_vfs::{
    FaultPlan, MemProvider, MountOptions, OpenOptions, ProcessId, VPath, Vfs,
};

const FILES: usize = 24;
const TENANTS: u32 = 12;

fn docs() -> VPath {
    VPath::new("/docs")
}

/// The corpus every run shares: deterministic prose bodies.
fn corpus() -> Vec<(VPath, Vec<u8>)> {
    (0..FILES)
        .map(|i| {
            let body: Vec<u8> = (0..30u32)
                .flat_map(|l| format!("doc {i} line {l}: recurring report prose\n").into_bytes())
                .collect();
            (docs().join(format!("doc-{i}.txt")), body)
        })
        .collect()
}

/// A tiny deterministic generator (no external randomness in tests).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

/// The per-tenant trace: what the tenant's processes do to its namespace.
/// Faults may abort individual operations; every failure path is taken
/// identically in fleet and standalone runs because the injector draws
/// from the same seeded schedule.
fn replay_trace(fs: &mut Vfs, tenant: u32) {
    let mut rng = Lcg(u64::from(tenant) * 7919 + 13);
    match tenant % 3 {
        // Attacker: read-encrypt-write over the whole corpus.
        1 => {
            let pid = fs.spawn_process("cryptolocker.exe");
            let key = (rng.next() % 251) as u8;
            for i in 0..FILES {
                let path = docs().join(format!("doc-{i}.txt"));
                let Ok(h) = fs.open(pid, &path, OpenOptions::modify()) else {
                    continue;
                };
                let Ok(data) = fs.read_to_end(pid, h) else {
                    let _ = fs.close(pid, h);
                    continue;
                };
                let ct: Vec<u8> = data
                    .iter()
                    .enumerate()
                    .map(|(j, b)| b ^ (j as u8).wrapping_mul(197).wrapping_add(key))
                    .collect();
                if fs.seek(pid, h, 0).is_ok() {
                    let _ = fs.write(pid, h, &ct);
                }
                let _ = fs.close(pid, h);
            }
        }
        // Editor: benign in-place touch-ups plus a few new notes.
        2 => {
            let pid = fs.spawn_process("wordproc.exe");
            for round in 0..8 {
                let i = (rng.next() as usize) % FILES;
                let path = docs().join(format!("doc-{i}.txt"));
                let Ok(h) = fs.open(pid, &path, OpenOptions::modify()) else {
                    continue;
                };
                let Ok(data) = fs.read_to_end(pid, h) else {
                    let _ = fs.close(pid, h);
                    continue;
                };
                let mut edited = data;
                edited.extend_from_slice(format!("\nedit pass {round} appended\n").as_bytes());
                if fs.seek(pid, h, 0).is_ok() {
                    let _ = fs.write(pid, h, &edited);
                }
                let _ = fs.close(pid, h);
            }
            let _ = fs.write_file(
                pid,
                &docs().join("notes.txt"),
                b"meeting notes: discuss quarterly prose",
            );
        }
        // Reader: scans without writing anything.
        _ => {
            let pid = fs.spawn_process("indexer.exe");
            for _ in 0..12 {
                let i = (rng.next() as usize) % FILES;
                let path = docs().join(format!("doc-{i}.txt"));
                let Ok(h) = fs.open(pid, &path, OpenOptions::read()) else {
                    continue;
                };
                let _ = fs.read_to_end(pid, h);
                let _ = fs.close(pid, h);
            }
        }
    }
}

/// Everything observable about one tenant after trace + restore, in a
/// directly comparable shape.
///
/// Both sides run under the deterministic clock policy
/// ([`TenantSpec::deterministic_clock`] /
/// [`SessionBuilder::deterministic_clock`](cryptodrop::SessionBuilder)),
/// which ledgers measured filter overhead without folding it into the
/// simulated clock — so every `at_nanos`-family timestamp is a pure
/// function of the op sequence and is compared *exactly*, timestamps
/// included. Only `restore_nanos` is zeroed: it measures genuine
/// wall-clock restore latency, not simulated time.
#[derive(Debug, PartialEq)]
struct Outcome {
    detections: Vec<DetectionReport>,
    audits: Vec<Option<AuditTrail>>,
    restores: Vec<RecoveryReport>,
    files: Vec<(VPath, Vec<u8>)>,
}

fn capture_outcome(session: &Session, fs: &mut Vfs) -> Outcome {
    let mut restores = session.reconcile_and_restore(fs);
    for r in &mut restores {
        // Genuine wall-clock restore latency — the one legitimately
        // nondeterministic field.
        r.restore_nanos = 0;
    }
    let detections = session.detections();
    let audits: Vec<Option<AuditTrail>> = detections
        .iter()
        .map(|d| session.audit_trail(d.pid))
        .collect();
    let mut files: Vec<(VPath, Vec<u8>)> = fs
        .admin()
        .files()
        .map(|(p, data)| (p.clone(), data.to_vec()))
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Outcome {
        detections,
        audits,
        restores,
        files,
    }
}

/// One shadow sizing for both sides — small enough that eviction paths
/// are exercised identically.
fn shadow_config() -> ShadowConfig {
    ShadowConfig::with_budget(2 * 1024 * 1024)
}

fn fault_plan(tenant: u32) -> FaultPlan {
    FaultPlan::seeded(u64::from(tenant) * 104729 + 31)
        .io_error_probability(0.02)
        .capture_failure_probability(0.05)
        .latency_spike_probability(0.01)
}

/// Runs the whole population through one fleet and returns each tenant's
/// outcome, keyed by tenant id.
fn run_fleet(with_faults: bool) -> Vec<(u32, Outcome)> {
    let mut cfg = FleetConfig::protecting(docs().as_str());
    cfg.shadow = shadow_config();
    let mut fleet = Fleet::new(cfg);
    for (path, body) in corpus() {
        fleet.stage_file(path, body);
    }
    let mut ids = Vec::new();
    for n in 0..TENANTS {
        let mut spec = TenantSpec::named(format!("tenant-{n}")).deterministic_clock();
        if with_faults {
            // The id is assigned before the spec is consumed: ids are
            // sequential from 1.
            spec = spec.faults(fault_plan(ids.len() as u32 + 1));
        }
        ids.push(fleet.spawn(spec).unwrap());
    }
    for &id in &ids {
        let t = fleet.get_mut(id).unwrap();
        replay_trace(t.fs_mut(), id);
    }
    ids.into_iter()
        .map(|id| {
            let t = fleet.get_mut(id).unwrap();
            let (session, fs) = t.session_and_fs();
            (id, capture_outcome(session, fs))
        })
        .collect()
}

/// Runs one tenant standalone: same namespace, same corpus staged in the
/// same order (but fully materialized — no sharing), same trace.
fn run_standalone(tenant: u32, with_faults: bool) -> Outcome {
    let mut fs = Vfs::with_namespace(tenant);
    for (path, body) in corpus() {
        fs.admin().write_file(&path, &body).unwrap();
    }
    let mut builder = CryptoDrop::builder()
        .protecting(docs().as_str())
        .recovery(shadow_config())
        .deterministic_clock();
    if with_faults {
        builder = builder.faults(fault_plan(tenant));
    }
    let session = builder.build().unwrap();
    session.attach(&mut fs);
    replay_trace(&mut fs, tenant);
    capture_outcome(&session, &mut fs)
}

fn assert_fleet_matches_standalone(with_faults: bool) {
    for (id, fleet_outcome) in run_fleet(with_faults) {
        let standalone = run_standalone(id, with_faults);
        // Sharp checks first for readable failures; the struct equality
        // at the end is the actual property.
        assert_eq!(
            fleet_outcome.detections.len(),
            standalone.detections.len(),
            "tenant {id}: detection count (faults={with_faults})"
        );
        assert_eq!(
            fleet_outcome.files.len(),
            standalone.files.len(),
            "tenant {id}: file count (faults={with_faults})"
        );
        assert_eq!(
            fleet_outcome, standalone,
            "tenant {id} must be byte-identical standalone (faults={with_faults})"
        );
        // Sanity: the roles actually exercised the detector.
        match id % 3 {
            1 => assert_eq!(
                fleet_outcome.detections.len(),
                1,
                "tenant {id}: attacker must be detected"
            ),
            _ => assert!(
                fleet_outcome.detections.is_empty(),
                "tenant {id}: benign tenant must not be detected"
            ),
        }
    }
}

#[test]
fn fleet_tenants_are_observationally_standalone() {
    assert_fleet_matches_standalone(false);
}

/// `Vfs::with_namespace` is sugar over the public provider/mount API, not
/// a special mode: building the same tenant from `MemProvider` +
/// `with_root_provider` must yield byte-identical outcomes for the same
/// trace. Process ids are the one legitimate difference (namespaces
/// offset the pid table so tenant pids never collide across a fleet), so
/// they are normalized before comparison.
#[test]
fn namespace_is_expressible_as_a_mount() {
    fn normalize_pids(outcome: &mut Outcome) {
        for d in &mut outcome.detections {
            d.pid = ProcessId(0);
        }
        for trail in outcome.audits.iter_mut().flatten() {
            trail.pid = ProcessId(0);
        }
        for r in &mut outcome.restores {
            r.family = ProcessId(0);
        }
    }

    // One attacker and one editor tenant: detection and no-detection paths.
    for tenant in [1u32, 2u32] {
        let run = |mut fs: Vfs| -> Outcome {
            for (path, body) in corpus() {
                fs.admin().write_file(&path, &body).unwrap();
            }
            let session = CryptoDrop::builder()
                .protecting(docs().as_str())
                .recovery(shadow_config())
                .deterministic_clock()
                .build()
                .unwrap();
            session.attach(&mut fs);
            replay_trace(&mut fs, tenant);
            capture_outcome(&session, &mut fs)
        };

        let mut via_namespace = run(Vfs::with_namespace(tenant));
        let provider = MemProvider::with_ino_base((u64::from(tenant) << 32) | 1);
        let mut via_mount =
            run(Vfs::with_root_provider(Box::new(provider), MountOptions::default()));

        normalize_pids(&mut via_namespace);
        normalize_pids(&mut via_mount);
        assert_eq!(
            via_namespace, via_mount,
            "tenant {tenant}: namespace and explicit mount must be byte-identical"
        );
    }
}

#[test]
fn fleet_tenants_stay_standalone_under_chaos_faults() {
    assert_fleet_matches_standalone(true);
}

/// The sharing itself: N tenants over one corpus must hold roughly one
/// corpus worth of bytes, not N — the economic reason the fleet exists.
#[test]
fn fleet_residency_is_sublinear_in_tenants() {
    let mut cfg = FleetConfig::protecting(docs().as_str());
    cfg.shadow = shadow_config();
    let mut fleet = Fleet::new(cfg);
    for (path, body) in corpus() {
        fleet.stage_file(path, body);
    }
    let corpus_bytes = fleet.corpus().bytes_held();
    let standalone_bytes: u64 = corpus().iter().map(|(_, b)| b.len() as u64).sum();

    for n in 0..TENANTS {
        fleet.spawn(TenantSpec::named(format!("t{n}"))).unwrap();
    }
    // Only readers and editors touch some files; attackers materialize
    // their whole working set — still far below a full per-tenant copy
    // after restore returns shared pages... but before any writes, the
    // bound is exact: zero private bytes.
    let s = fleet.stats();
    assert_eq!(s.private_bytes, 0);
    assert_eq!(s.corpus_bytes, corpus_bytes);
    assert!(
        corpus_bytes <= standalone_bytes,
        "dedup never exceeds materialized size"
    );
    // Resident bytes per tenant = corpus/N + private: with no writes that
    // is corpus/N, a factor N below the standalone baseline.
    let per_tenant_resident = corpus_bytes / u64::from(TENANTS);
    assert!(per_tenant_resident * 10 <= standalone_bytes);
}
