//! §V-H: the per-operation latency the CryptoDrop filter adds.
//!
//! The paper's unoptimized prototype adds <1 ms to opens and reads,
//! 1.58 ms to closes, 9 ms to writes, and 16 ms to renames — the ordering
//! (rename > write ≫ close > open/read) follows from where the analysis
//! work happens: snapshots at open/rename/delete pre-ops, full content
//! evaluation at close and rename-replace. We reproduce the *shape* by
//! measuring real wall-clock time inside the filter callbacks, per
//! operation kind; absolute values differ (in-memory filesystem, modern
//! hardware, optimized build).

use cryptodrop::{Config, CryptoDrop};
use cryptodrop_corpus::Corpus;
use cryptodrop_malware::{paper_sample_set, Family};
use cryptodrop_vfs::{OpKind, OpenOptions, Vfs};
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// One operation kind's measured filter overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfRow {
    /// Operation kind name.
    pub op: String,
    /// Operations measured.
    pub count: u64,
    /// Mean added latency, microseconds.
    pub mean_us: f64,
    /// Maximum added latency, microseconds.
    pub max_us: f64,
    /// The paper's reported added latency for this kind, microseconds
    /// (where reported).
    pub paper_us: Option<f64>,
}

/// The reproduced §V-H table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfTable {
    /// Measured rows, in a stable kind order.
    pub rows: Vec<PerfRow>,
}

/// The paper's added-latency values in microseconds, by op kind.
fn paper_value(kind: OpKind) -> Option<f64> {
    match kind {
        OpKind::Open | OpKind::Read => Some(1_000.0), // "< 1 ms"
        OpKind::Close => Some(1_580.0),
        OpKind::Write => Some(9_000.0),
        OpKind::Rename => Some(16_000.0),
        _ => None,
    }
}

/// Drives a mixed workload (benign edits + a ransomware sample up to
/// detection) through an armed filesystem and reports the filter overhead
/// per operation kind.
pub fn run(corpus: &Corpus, config: &Config) -> PerfTable {
    let mut fs = Vfs::new();
    corpus.stage_into(&mut fs).expect("fresh filesystem");
    let session = CryptoDrop::builder()
        .config(config.clone())
        .build()
        .expect("experiment configs are valid");
    fs.register_filter(Box::new(session.fork()));

    // A benign process reads, modifies, and renames documents to exercise
    // every op kind under realistic conditions.
    let pid = fs.spawn_process("workload.exe");
    let root = corpus.root().clone();
    let files: Vec<_> = corpus.files().iter().take(120).collect();
    for (i, f) in files.iter().enumerate() {
        let _ = fs.read_file(pid, &f.path);
        if i % 3 == 0 && !f.read_only {
            if let Ok(h) = fs.open(pid, &f.path, OpenOptions::modify()) {
                let data = fs.read_to_end(pid, h).unwrap_or_default();
                let _ = fs.seek(pid, h, 0);
                let _ = fs.write(pid, h, &data);
                let _ = fs.close(pid, h);
            }
        }
        if i % 7 == 0 && !f.read_only {
            // The safe-save pattern: write a sibling, rename it over the
            // original — the rename-replace path carries the engine's
            // snapshot + content evaluation, the paper's most expensive
            // operation class.
            let staged = f.path.with_appended_suffix(".new");
            let _ = fs.write_file(pid, &staged, &f.data);
            let _ = fs.rename(pid, &staged, &f.path, true);
        }
        if i % 11 == 0 && !f.read_only {
            let _ = fs.delete(pid, &f.path);
        }
    }
    let _ = fs.list_dir(pid, &root);

    // A ransomware sample up to detection adds the adversarial op mix.
    let sample = paper_sample_set()
        .into_iter()
        .find(|s| s.family == Family::TeslaCrypt)
        .expect("TeslaCrypt exists");
    cryptodrop_vfs::drive_workload(&mut fs, &sample, &root, sample.seed());

    let rows = OpKind::ALL
        .iter()
        .filter_map(|&kind| {
            let stat = fs.latency_ledger().stat(kind)?;
            Some(PerfRow {
                op: kind.to_string(),
                count: stat.count,
                mean_us: stat.mean_nanos() as f64 / 1_000.0,
                max_us: stat.max_nanos as f64 / 1_000.0,
                paper_us: paper_value(kind),
            })
        })
        .collect();
    PerfTable { rows }
}

impl PerfTable {
    /// The mean overhead for one op kind, if measured.
    pub fn mean_us(&self, op: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.op == op).map(|r| r.mean_us)
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Operation", "Count", "Mean added (µs)", "Max (µs)", "Paper (µs)"]);
        for r in &self.rows {
            t.row([
                r.op.clone(),
                r.count.to_string(),
                format!("{:.1}", r.mean_us),
                format!("{:.1}", r.max_us),
                r.paper_us
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        let mut out = String::from("§V-H — filter-added latency per operation kind\n\n");
        out.push_str(&t.render());
        out.push_str(
            "\nThe comparison is of *shape*: rename and write carry the expensive \
             content analysis, close carries re-measurement, open/read are cheap. \
             Absolute values differ (simulated in-memory volume vs the paper's \
             unoptimized debug build on 2016 hardware).\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_corpus::CorpusSpec;

    #[test]
    fn overhead_shape_matches_paper() {
        let corpus = Corpus::generate(&CorpusSpec::sized(200, 25));
        let config = Config::protecting(corpus.root().as_str());
        let table = run(&corpus, &config);
        let get = |op: &str| table.mean_us(op).unwrap_or(0.0);
        // Every kind the workload exercises was measured.
        for op in ["open", "read", "write", "close", "rename", "delete"] {
            assert!(
                table.rows.iter().any(|r| r.op == op && r.count > 0),
                "{op} not measured"
            );
        }
        // The paper's shape: the operation classes that carry content
        // analysis (rename-replace and the close-time evaluation; the
        // paper's write/rename at 9/16 ms vs sub-millisecond reads)
        // dominate plain reads, which only pay an entropy pass.
        for heavy in ["rename", "close"] {
            assert!(
                get(heavy) > 2.0 * get("read"),
                "{heavy} {:.1}µs must dominate read {:.1}µs",
                get(heavy),
                get("read")
            );
        }
        assert!(table.render().contains("rename"));
    }
}
