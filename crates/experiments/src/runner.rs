//! Experiment execution: one fresh machine per sample, exactly as the
//! paper reverted its VM to a snapshot between samples (§V-A).

use std::collections::BTreeSet;

use cryptodrop::{Config, CryptoDrop, PipelineConfig, Telemetry};
use cryptodrop_corpus::Corpus;
use cryptodrop_malware::{BehaviorClass, RansomwareSample};
use cryptodrop_vfs::{EventDetail, FileId, Vfs, VPath, Workload, WorkloadCtx, WorkloadOutcome};
use serde::{Deserialize, Serialize};

/// The result of running one ransomware sample against a fresh corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleResult {
    /// Sample id.
    pub id: u32,
    /// Family display name.
    pub family: String,
    /// Behaviour class.
    pub class: BehaviorClass,
    /// Whether CryptoDrop suspended the sample.
    pub detected: bool,
    /// Pre-existing corpus files lost before detection (the paper's
    /// headline metric).
    pub files_lost: u32,
    /// The sample's final reputation score.
    pub score: u32,
    /// Whether union indication occurred (≥1 occurrence, §V-B2).
    pub union_triggered: bool,
    /// Files the sample failed to destroy due to read-only attributes.
    pub read_only_skipped: u32,
    /// Whether the sample ran its whole plan (i.e. was *not* stopped).
    pub completed: bool,
    /// Files whose destruction sequence actually completed — ground truth
    /// independent of what the engine observed (ablation metric).
    pub files_attacked: u32,
    /// Distinct extensions of pre-existing files the sample accessed
    /// before detection (Fig. 5 input).
    pub extensions_accessed: BTreeSet<String>,
    /// Directories in which the sample read or wrote a file before
    /// detection (Fig. 4 input).
    pub dirs_touched: BTreeSet<String>,
}

/// Runs one sample against a freshly staged corpus with CryptoDrop armed.
pub fn run_sample(corpus: &Corpus, config: &Config, sample: &RansomwareSample) -> SampleResult {
    run_sample_with_telemetry(corpus, config, sample, Telemetry::disabled()).0
}

/// [`run_sample`] with analysis routed through the async batched pipeline
/// instead of running inline in the filter callbacks.
///
/// Under [`cryptodrop::Backpressure::Sync`] the result is byte-identical to
/// [`run_sample`] (`pipelined_replay_matches_inline` and the
/// `table1_pipeline` experiment guard this); `DegradeToInline` trades that
/// equivalence for a non-blocking producer, so detections can land late.
pub fn run_sample_pipelined(
    corpus: &Corpus,
    config: &Config,
    sample: &RansomwareSample,
    pipeline: PipelineConfig,
) -> SampleResult {
    run_sample_inner(corpus, config, sample, Telemetry::disabled(), Some(pipeline)).0
}

/// [`run_sample`] with a caller-supplied telemetry sink shared between the
/// VFS and the engine, returning the run's harvested
/// [`RunTelemetry`](crate::telemetry::RunTelemetry) alongside the result.
///
/// Instrumentation is inert: the [`SampleResult`] is identical whether the
/// sink is enabled, disabled, or absent (`telemetry::instrumentation_is_inert`
/// guards this).
pub fn run_sample_with_telemetry(
    corpus: &Corpus,
    config: &Config,
    sample: &RansomwareSample,
    telemetry: Telemetry,
) -> (SampleResult, crate::telemetry::RunTelemetry) {
    run_sample_inner(corpus, config, sample, telemetry, None)
}

fn run_sample_inner(
    corpus: &Corpus,
    config: &Config,
    sample: &RansomwareSample,
    telemetry: Telemetry,
    pipeline: Option<PipelineConfig>,
) -> (SampleResult, crate::telemetry::RunTelemetry) {
    let mut fs = Vfs::new();
    corpus
        .stage_into(&mut fs)
        .expect("staging a generated corpus into an empty filesystem cannot fail");
    fs.set_telemetry(telemetry.clone());
    let mut builder = CryptoDrop::builder()
        .config(config.clone())
        .telemetry(telemetry.clone());
    if let Some(pcfg) = pipeline {
        builder = builder.pipeline_config(pcfg);
    }
    let session = builder.build().expect("experiment configs are valid");
    let monitor = session.monitor();
    fs.register_filter(Box::new(session.fork()));
    let ctx = WorkloadCtx::spawn(&mut fs, sample, corpus.root(), sample.seed());
    let pid = ctx.pid();

    let outcome = sample.drive(&mut fs, &ctx);
    // Settle any still-queued analysis before reading results. `detected`
    // deliberately stays "did the VFS suspend the sample mid-run" in every
    // mode — reconciliation of lagged detections is the embedder's call
    // (`Session::reconcile`), not part of the paper's metric.
    session.drain();

    let detected = fs.is_suspended(pid);
    let summary = monitor.summary(pid);
    let report = monitor.detection_for(pid);
    let (extensions_accessed, dirs_touched) = trace_stats(&fs, corpus.root());

    let result = SampleResult {
        id: sample.id,
        family: sample.family.name().to_string(),
        class: sample.class,
        detected,
        files_lost: report
            .as_ref()
            .map(|r| r.files_lost)
            .or_else(|| summary.as_ref().map(|s| s.files_lost))
            .unwrap_or(0),
        score: summary.as_ref().map(|s| s.score).unwrap_or(0),
        union_triggered: summary.as_ref().map(|s| s.union_triggered).unwrap_or(false),
        read_only_skipped: outcome.read_only_skipped,
        completed: outcome.completed,
        files_attacked: outcome.files_touched,
        extensions_accessed,
        dirs_touched,
    };
    let harvest = crate::telemetry::RunTelemetry::collect(&telemetry, &monitor, pid);
    (result, harvest)
}

/// Extracts the Fig. 4 / Fig. 5 statistics from the event trace: the
/// extensions of pre-existing files accessed, and the directories where a
/// file was read or written.
fn trace_stats(fs: &Vfs, root: &VPath) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut created: std::collections::HashSet<FileId> = std::collections::HashSet::new();
    let mut exts = BTreeSet::new();
    let mut dirs = BTreeSet::new();
    for e in fs.event_log().events() {
        match &e.detail {
            EventDetail::Open { file, created: c, .. } => {
                if *c {
                    created.insert(*file);
                }
                // Extension tracking keys on opens of pre-existing files.
                if let Some(path) = e.path() {
                    if path.starts_with(root) && !c {
                        if let Some(ext) = path.extension() {
                            exts.insert(ext);
                        }
                    }
                }
            }
            EventDetail::Read { path, .. } | EventDetail::Write { path, .. }
                if path.starts_with(root) => {
                    if let Some(dir) = path.parent() {
                        dirs.insert(dir.as_str().to_string());
                    }
                }
            _ => {}
        }
    }
    (exts, dirs)
}

/// The result of one benign application run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppResult {
    /// Application display name.
    pub name: String,
    /// Final reputation score at workload completion (or at suspension).
    pub score: u32,
    /// Whether the app was suspended at the configured threshold — a
    /// false positive.
    pub detected: bool,
    /// Whether union indication occurred (the paper: never, for benign
    /// apps).
    pub union_triggered: bool,
    /// Whether the workload ran to completion.
    pub completed: bool,
}

/// Runs one benign application on a freshly staged corpus with CryptoDrop
/// armed, returning its final score.
///
/// `seed` drives the app's content generation deterministically.
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "drive the app through the `Workload` trait instead: \
            `run_workload(corpus, config, &boxed_app, seed)`"
)]
pub fn run_app(
    corpus: &Corpus,
    config: &Config,
    app: &dyn cryptodrop_benign::BenignApp,
    seed: u64,
) -> AppResult {
    use rand::SeedableRng;
    let mut fs = Vfs::new();
    corpus
        .stage_into(&mut fs)
        .expect("staging a generated corpus into an empty filesystem cannot fail");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    app.stage(&mut fs, corpus.root(), &mut rng)
        .expect("benign staging cannot collide with the corpus");
    let session = CryptoDrop::builder()
        .config(config.clone())
        .build()
        .expect("experiment configs are valid");
    fs.register_filter(Box::new(session.fork()));
    let pid = fs.spawn_process(app.executable());

    let run = app.run(&mut fs, pid, corpus.root(), &mut rng);

    let detected = fs.is_suspended(pid);
    let summary = session.summary(pid);
    AppResult {
        name: app.name().to_string(),
        score: summary.as_ref().map(|s| s.score).unwrap_or(0),
        detected,
        union_triggered: summary.as_ref().map(|s| s.union_triggered).unwrap_or(false),
        completed: run.is_ok(),
    }
}

/// The result of driving one [`Workload`] — attacker or benign — on a fresh
/// corpus with CryptoDrop armed. This is the actor-agnostic counterpart of
/// [`SampleResult`]/[`AppResult`]: every metric aggregates over the
/// workload's whole pid plan, so multi-process actors (collusion attacks)
/// report honestly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadRunResult {
    /// The workload's display name.
    pub name: String,
    /// Whether *any* of the workload's processes was suspended.
    pub detected: bool,
    /// How many of the workload's processes were suspended.
    pub suspended_pids: u32,
    /// The highest reputation score across the workload's processes.
    pub score: u32,
    /// Whether union indication occurred for any of its processes.
    pub union_triggered: bool,
    /// Files lost before detection, per the engine's own accounting
    /// (maximum over the workload's processes; the adversarial study
    /// re-audits ground truth by fingerprint instead).
    pub files_lost: u32,
    /// What the workload reported about its own run.
    pub outcome: WorkloadOutcome,
}

/// Drives one [`Workload`] against a freshly staged corpus with CryptoDrop
/// armed — the uniform entry point for samples, evasive strategies, and
/// benign applications alike.
pub fn run_workload(
    corpus: &Corpus,
    config: &Config,
    workload: &dyn Workload,
    seed: u64,
) -> WorkloadRunResult {
    let mut fs = Vfs::new();
    corpus
        .stage_into(&mut fs)
        .expect("staging a generated corpus into an empty filesystem cannot fail");
    let session = CryptoDrop::builder()
        .config(config.clone())
        .build()
        .expect("experiment configs are valid");
    session.attach(&mut fs);
    let ctx = WorkloadCtx::spawn(&mut fs, workload, corpus.root(), seed);
    workload.stage(&mut fs, &ctx).expect("workload staging must succeed");
    let outcome = workload.drive(&mut fs, &ctx);
    session.drain();
    summarize_workload(&fs, &session, workload.name(), &ctx.pids, outcome)
}

/// Aggregates per-pid engine verdicts into a [`WorkloadRunResult`] so
/// multi-process workloads report over their whole pid plan.
pub(crate) fn summarize_workload(
    fs: &Vfs,
    session: &cryptodrop::Session,
    name: String,
    pids: &[cryptodrop_vfs::ProcessId],
    outcome: WorkloadOutcome,
) -> WorkloadRunResult {
    let mut result = WorkloadRunResult {
        name,
        detected: false,
        suspended_pids: 0,
        score: 0,
        union_triggered: false,
        files_lost: 0,
        outcome,
    };
    for &pid in pids {
        if fs.is_suspended(pid) {
            result.detected = true;
            result.suspended_pids += 1;
        }
        if let Some(s) = session.summary(pid) {
            result.score = result.score.max(s.score);
            result.union_triggered |= s.union_triggered;
            result.files_lost = result.files_lost.max(s.files_lost);
        }
        if let Some(r) = session.detection_for(pid) {
            result.files_lost = result.files_lost.max(r.files_lost);
        }
    }
    result
}

impl From<WorkloadRunResult> for AppResult {
    fn from(r: WorkloadRunResult) -> Self {
        AppResult {
            name: r.name,
            score: r.score,
            detected: r.detected,
            union_triggered: r.union_triggered,
            completed: r.outcome.completed,
        }
    }
}

/// Runs many samples in parallel across worker threads, preserving input
/// order in the output.
pub fn run_samples_parallel(
    corpus: &Corpus,
    config: &Config,
    samples: &[RansomwareSample],
    threads: usize,
) -> Vec<SampleResult> {
    let threads = threads.max(1);
    if threads == 1 || samples.len() <= 1 {
        return samples.iter().map(|s| run_sample(corpus, config, s)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<SampleResult>> = vec![None; samples.len()];
    let slots: Vec<std::sync::Mutex<Option<SampleResult>>> =
        results.iter_mut().map(|_| std::sync::Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= samples.len() {
                    break;
                }
                let r = run_sample(corpus, config, &samples[i]);
                *slots[i].lock().expect("no poisoning: workers do not panic") = Some(r);
            });
        }
    })
    .expect("worker threads do not panic");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("not poisoned").expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_corpus::CorpusSpec;
    use cryptodrop_malware::paper_sample_set;

    fn quick_corpus() -> Corpus {
        Corpus::generate(&CorpusSpec::sized(160, 20))
    }

    #[test]
    fn sample_run_detects_and_reports() {
        let corpus = quick_corpus();
        let config = Config::protecting(corpus.root().as_str());
        let sample = paper_sample_set()
            .into_iter()
            .find(|s| s.family == cryptodrop_malware::Family::TeslaCrypt)
            .unwrap();
        let r = run_sample(&corpus, &config, &sample);
        assert!(r.detected, "TeslaCrypt must be detected: {r:?}");
        assert!(!r.completed);
        assert!(r.files_lost > 0 && r.files_lost < 60, "lost {}", r.files_lost);
        assert!(!r.extensions_accessed.is_empty());
        assert!(!r.dirs_touched.is_empty());
    }

    #[test]
    fn benign_run_reports_score() {
        let corpus = quick_corpus();
        let config = Config::protecting(corpus.root().as_str());
        let app: Box<dyn cryptodrop_benign::BenignApp> = Box::new(cryptodrop_benign::Word);
        let r = run_workload(&corpus, &config, &app, 5);
        assert!(!r.detected, "{r:?}");
        assert!(r.outcome.completed);
        assert!(r.score < 50, "Word scored {}", r.score);
        assert!(!r.union_triggered);
    }

    #[test]
    fn workload_run_matches_sample_run() {
        let corpus = quick_corpus();
        let config = Config::protecting(corpus.root().as_str());
        let sample = paper_sample_set()
            .into_iter()
            .find(|s| s.family == cryptodrop_malware::Family::TeslaCrypt)
            .unwrap();
        let s = run_sample(&corpus, &config, &sample);
        let w = run_workload(&corpus, &config, &sample, sample.seed());
        assert_eq!(w.detected, s.detected);
        assert_eq!(w.score, s.score);
        assert_eq!(w.union_triggered, s.union_triggered);
        assert_eq!(w.files_lost, s.files_lost);
        assert_eq!(w.outcome.completed, s.completed);
        assert_eq!(w.outcome.files_touched, s.files_attacked);
    }

    /// The acceptance gate for the async pipeline: Table I replayed
    /// through a `Backpressure::Sync` pipeline is byte-identical to the
    /// inline engine — per-sample results, aggregated table, and rendered
    /// text alike.
    #[test]
    fn pipelined_replay_matches_inline() {
        let corpus = quick_corpus();
        let config = Config::protecting(corpus.root().as_str());
        // A cross-class slice of the paper sample set (every ~61st of
        // 492); the full-table replay runs in the bin targets.
        let samples: Vec<_> = paper_sample_set().into_iter().step_by(61).take(6).collect();
        assert!(samples.len() > 3);

        let inline: Vec<_> = samples.iter().map(|s| run_sample(&corpus, &config, s)).collect();
        let piped: Vec<_> = samples
            .iter()
            .map(|s| run_sample_pipelined(&corpus, &config, s, PipelineConfig::default()))
            .collect();
        assert_eq!(inline, piped, "Sync pipeline diverged from inline");
        assert!(inline.iter().any(|r| r.detected), "slice must detect something");

        let t_inline = crate::table1::Table1::from_results(&inline);
        let t_piped = crate::table1::Table1::from_results(&piped);
        assert_eq!(t_inline, t_piped);
        assert_eq!(
            serde_json::to_string(&t_inline).unwrap(),
            serde_json::to_string(&t_piped).unwrap(),
            "serialized Table I must be byte-identical"
        );
        assert_eq!(t_inline.render(), t_piped.render());
    }

    #[test]
    fn parallel_matches_serial() {
        let corpus = quick_corpus();
        let config = Config::protecting(corpus.root().as_str());
        let samples: Vec<_> = paper_sample_set().into_iter().step_by(97).take(4).collect();
        let serial = run_samples_parallel(&corpus, &config, &samples, 1);
        let parallel = run_samples_parallel(&corpus, &config, &samples, 4);
        assert_eq!(serial, parallel, "runs are deterministic per sample");
    }
}
