//! Reproduces Figure 4 (per-family traversal footprints).
//!
//! Usage: `fig4 [--quick]`

use cryptodrop_experiments::fig4::{run, FIG4_FAMILIES};
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let config = scale.config();
    let fig = run(&corpus, &config, &FIG4_FAMILIES);
    println!("{}", fig.render());
    write_json("fig4", &fig);
}
