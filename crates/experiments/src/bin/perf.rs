//! Reproduces the §V-H per-operation latency table.
//!
//! Usage: `perf [--quick]`

use cryptodrop_experiments::perf::run;
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let config = scale.config();
    let table = run(&corpus, &config);
    println!("{}", table.render());
    write_json("perf", &table);
}
