//! Reproduces Figure 3 (cumulative files-lost distribution).
//!
//! Usage: `fig3 [--quick]`

use cryptodrop_experiments::fig3::Fig3;
use cryptodrop_experiments::runner::run_samples_parallel;
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let config = scale.config();
    let samples = scale.samples();
    let results = run_samples_parallel(&corpus, &config, &samples, scale.threads);
    let fig = Fig3::from_results(&results);
    println!("{}", fig.render());
    write_json("fig3", &fig);
}
