//! Runs the adversarial study: the evasive strategy suite against the
//! indicator-ablation matrix, the benign heavy-writer sweep, the
//! slow-roll pause × decay-policy sweep, and the per-family detection
//! gate.
//!
//! Exits nonzero if any paper family goes undetected at the full
//! configuration, any heavy-writer is suspended (under any indicator
//! mode or swept decay policy), the slow-roll strategy evades any pause
//! length under the default decay policy, or the colluding reader/writer
//! pair evades the full configuration — CI uses this as the
//! detection-floor gate.
//!
//! Usage: `adversarial [--quick]`

use cryptodrop_experiments::adversarial::run;
use cryptodrop_experiments::deception::bait_corpus;
use cryptodrop_experiments::Scale;

fn main() {
    let scale = Scale::from_args();
    let quick = scale.sample_cap.is_some();
    let baited = bait_corpus(&scale.corpus(), &scale.corpus_spec);
    let config = scale.config();
    let seeds: &[u64] = if quick { &[1, 2, 3] } else { &[1, 2, 3, 4, 5] };
    let study = run(&baited, &config, seeds, scale.threads);
    println!("{}", study.render());
    study.report().param("seeds", seeds.len()).write();

    let mut failed = false;
    if !study.all_families_detected() {
        eprintln!("GATE FAILED: a paper family went undetected at the full config");
        failed = true;
    }
    if study.benign_false_positives() != 0 {
        eprintln!(
            "GATE FAILED: {} benign heavy-writer suspension(s) at default thresholds",
            study.benign_false_positives()
        );
        failed = true;
    }
    if !study.slowroll_detected_under_default_decay() {
        eprintln!(
            "GATE FAILED: slow-roll evaded a swept pause length under the default decay policy"
        );
        failed = true;
    }
    if study.decay_benign_false_positives() != 0 {
        eprintln!(
            "GATE FAILED: {} benign heavy-writer suspension(s) under a swept decay policy",
            study.decay_benign_false_positives()
        );
        failed = true;
    }
    if !study.collusion_detected_at_full() {
        eprintln!(
            "GATE FAILED: the colluding reader/writer pair evaded the full configuration"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
