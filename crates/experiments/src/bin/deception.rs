//! Runs the active-defense study: every sample replayed with no defense,
//! decoys only, and decoys plus throttling, over the same baited corpus,
//! plus a benign false-positive sweep.
//!
//! Usage: `deception [--quick]`

use cryptodrop_benign::fig6_apps;
use cryptodrop_experiments::deception::{bait_corpus, run};
use cryptodrop_experiments::Scale;

fn main() {
    let scale = Scale::from_args();
    let baited = bait_corpus(&scale.corpus(), &scale.corpus_spec);
    let config = scale.config();
    let samples: Vec<_> = scale.samples().into_iter().filter(|s| s.index == 0).collect();
    let study = run(&baited, &config, &samples, &fig6_apps(), scale.threads);
    println!("{}", study.render());
    study.report().param("samples", samples.len()).write();
}
