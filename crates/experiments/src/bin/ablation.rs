//! Runs the §V-C small-file ablation plus the union-indication and
//! move-tracking ablations.
//!
//! Usage: `ablation [--quick]`

use cryptodrop_experiments::ablation::{
    dynamic_scoring_ablation, render, render_dynamic, small_file_ablation, tracking_ablation,
    union_ablation,
};
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let config = scale.config();
    let small = small_file_ablation(&corpus, &config);
    let samples: Vec<_> = scale
        .samples()
        .into_iter()
        .filter(|s| s.index < 4)
        .collect();
    let union = union_ablation(&corpus, &config, &samples, scale.threads);
    let tracking = tracking_ablation(&corpus, &config);
    let dynamic = dynamic_scoring_ablation(&corpus, &config);
    println!("{}", render(&small, &union, &tracking));
    println!("{}", render_dynamic(&dynamic));
    write_json("ablation_small_file", &small);
    write_json("ablation_union", &union);
    write_json("ablation_tracking", &tracking);
    write_json("ablation_dynamic_scoring", &dynamic);
}
