//! Runs every experiment in sequence (Table I, Figs. 3-6, ablations,
//! §V-H performance) and prints the full report.
//!
//! Usage: `run-all [--quick]`

use cryptodrop_benign::{fig6_apps, paper_apps};
use cryptodrop_experiments::{ablation, fig3, fig4, fig5, fig6, perf, table1};
use cryptodrop_experiments::runner::run_samples_parallel;
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let all_apps = std::env::args().any(|a| a == "--all-apps");
    let corpus = scale.corpus();
    let config = scale.config();
    let samples = scale.samples();

    eprintln!(
        "corpus: {} files / {} dirs ({} MiB); samples: {}; threads: {}",
        corpus.file_count(),
        corpus.dir_count(),
        corpus.total_bytes() / (1024 * 1024),
        samples.len(),
        scale.threads
    );

    let t0 = std::time::Instant::now();
    let results = run_samples_parallel(&corpus, &config, &samples, scale.threads);
    eprintln!("sample runs finished in {:.1}s", t0.elapsed().as_secs_f64());

    let table = table1::Table1::from_results(&results);
    println!("{}\n", table.render());
    write_json("table1", &table);
    write_json("sample_results", &results);

    let f3 = fig3::Fig3::from_results(&results);
    println!("{}\n", f3.render());
    write_json("fig3", &f3);

    let f4 = fig4::run(&corpus, &config, &fig4::FIG4_FAMILIES);
    println!("{}\n", f4.render());
    write_json("fig4", &f4);

    let f5 = fig5::Fig5::from_results(&results);
    println!("{}\n", f5.render());
    write_json("fig5", &f5);

    let apps = if all_apps { paper_apps() } else { fig6_apps() };
    let f6 = fig6::run(&corpus, &config, &apps);
    println!("{}\n", f6.render());
    write_json("fig6", &f6);

    let small = ablation::small_file_ablation(&corpus, &config);
    let ab_samples: Vec<_> = samples.iter().filter(|s| s.index < 4).cloned().collect();
    let union = ablation::union_ablation(&corpus, &config, &ab_samples, scale.threads);
    let tracking = ablation::tracking_ablation(&corpus, &config);
    let dynamic = ablation::dynamic_scoring_ablation(&corpus, &config);
    println!("{}\n", ablation::render(&small, &union, &tracking));
    println!("{}\n", ablation::render_dynamic(&dynamic));
    write_json("ablation_small_file", &small);
    write_json("ablation_union", &union);
    write_json("ablation_tracking", &tracking);
    write_json("ablation_dynamic_scoring", &dynamic);

    let p = perf::run(&corpus, &config);
    println!("{}", p.render());
    write_json("perf", &p);

    let reps: Vec<_> = samples.iter().filter(|s| s.index == 0).cloned().collect();
    let cmp = cryptodrop_experiments::baselines::run(&corpus, &config, &reps, &fig6_apps());
    println!("\n{}", cmp.render());
    write_json("baselines", &cmp);

    let iso = cryptodrop_experiments::isolation::run(&corpus, &config, &reps, &fig6_apps(), scale.threads);
    println!("\n{}", iso.render());
    write_json("isolation", &iso);

    let tel = cryptodrop_experiments::telemetry::run(&corpus, &config, &reps);
    println!("\n{}", tel.render());
    write_json("telemetry", &tel);

    let roc = cryptodrop_experiments::roc::run(
        &corpus,
        &config,
        &reps,
        &fig6_apps(),
        &[50, 100, 150, 200, 250, 300, 400],
        scale.threads,
    );
    println!("\n{}", roc.render());
    roc.report().write();

    let rec = cryptodrop_experiments::recovery::run(
        &corpus,
        &config,
        &cryptodrop::ShadowConfig::default(),
        &reps,
        &[50, 100, 200, 400],
        scale.threads,
    );
    println!("\n{}", rec.render());
    rec.report().write();

    let baited = cryptodrop_experiments::deception::bait_corpus(&corpus, &scale.corpus_spec);
    let adv = cryptodrop_experiments::adversarial::run(&baited, &config, &[1, 2, 3], scale.threads);
    println!("\n{}", adv.render());
    adv.report().param("seeds", 3u32).write();

    eprintln!("total wall time {:.1}s", t0.elapsed().as_secs_f64());
}
