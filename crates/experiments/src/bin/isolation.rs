//! Runs the §III indicators-in-isolation study.
//!
//! Usage: `isolation [--quick]`

use cryptodrop_benign::fig6_apps;
use cryptodrop_experiments::isolation::run;
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let config = scale.config();
    let samples: Vec<_> = scale.samples().into_iter().filter(|s| s.index == 0).collect();
    let study = run(&corpus, &config, &samples, &fig6_apps(), scale.threads);
    println!("{}", study.render());
    write_json("isolation", &study);
}
