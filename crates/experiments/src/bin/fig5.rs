//! Reproduces Figure 5 (extension access frequencies).
//!
//! Usage: `fig5 [--quick]`

use cryptodrop_experiments::fig5::Fig5;
use cryptodrop_experiments::runner::run_samples_parallel;
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let config = scale.config();
    let samples = scale.samples();
    let results = run_samples_parallel(&corpus, &config, &samples, scale.threads);
    let fig = Fig5::from_results(&results);
    println!("{}", fig.render());
    write_json("fig5", &fig);
}
