//! Compares CryptoDrop against the §II baseline detectors.
//!
//! Usage: `baselines [--quick]`

use cryptodrop_benign::{fig6_apps, paper_apps};
use cryptodrop_experiments::baselines::run;
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let all = std::env::args().any(|a| a == "--all-apps");
    let corpus = scale.corpus();
    let config = scale.config();
    // One representative sample per (family, class).
    let samples: Vec<_> = scale.samples().into_iter().filter(|s| s.index == 0).collect();
    let apps = if all { paper_apps() } else { fig6_apps() };
    eprintln!(
        "comparing 3 detectors over {} samples and {} apps...",
        samples.len(),
        apps.len()
    );
    let cmp = run(&corpus, &config, &samples, &apps);
    println!("{}", cmp.render());
    write_json("baselines", &cmp);
}
