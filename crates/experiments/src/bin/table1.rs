//! Reproduces Table I (and the §V-B2 union audit).
//!
//! Usage: `table1 [--quick]`

use cryptodrop_experiments::runner::run_samples_parallel;
use cryptodrop_experiments::table1::Table1;
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let config = scale.config();
    let samples = scale.samples();
    eprintln!(
        "running {} samples against {} files / {} dirs on {} threads...",
        samples.len(),
        corpus.file_count(),
        corpus.dir_count(),
        scale.threads
    );
    let results = run_samples_parallel(&corpus, &config, &samples, scale.threads);
    let table = Table1::from_results(&results);
    println!("{}", table.render());
    write_json("table1", &table);
    write_json("sample_results", &results);
}
