//! Reproduces Figure 6 and §V-F (benign scores + FP threshold sweep).
//!
//! Usage: `fig6 [--quick] [--all-apps]`

use cryptodrop_benign::{fig6_apps, paper_apps};
use cryptodrop_experiments::fig6::run;
use cryptodrop_experiments::{write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let all = std::env::args().any(|a| a == "--all-apps");
    let corpus = scale.corpus();
    let config = scale.config();
    let apps = if all { paper_apps() } else { fig6_apps() };
    eprintln!("running {} benign applications...", apps.len());
    let fig = run(&corpus, &config, &apps);
    println!("{}", fig.render());
    write_json(if all { "fig6_all_apps" } else { "fig6" }, &fig);
}
