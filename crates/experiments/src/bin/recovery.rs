//! Sweeps the detection threshold with the shadow-copy recovery subsystem
//! armed and tabulates data saved vs detection speed.
//!
//! Usage: `recovery [--quick]`

use cryptodrop::ShadowConfig;
use cryptodrop_experiments::recovery::run;
use cryptodrop_experiments::Scale;

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let config = scale.config();
    let samples: Vec<_> = scale.samples().into_iter().filter(|s| s.index == 0).collect();
    let thresholds = [50, 100, 200, 400];
    let study = run(
        &corpus,
        &config,
        &ShadowConfig::default(),
        &samples,
        &thresholds,
        scale.threads,
    );
    println!("{}", study.render());
    study.report().param("samples", samples.len()).write();
}
