//! Sweeps the detection threshold and tabulates the loss/noise trade-off
//! behind the paper's choice of 200.
//!
//! Usage: `roc [--quick]`

use cryptodrop_benign::fig6_apps;
use cryptodrop_experiments::roc::run;
use cryptodrop_experiments::Scale;

fn main() {
    let scale = Scale::from_args();
    let corpus = scale.corpus();
    let config = scale.config();
    let samples: Vec<_> = scale.samples().into_iter().filter(|s| s.index == 0).collect();
    let thresholds = [50, 100, 150, 200, 250, 300, 400];
    let study = run(
        &corpus,
        &config,
        &samples,
        &fig6_apps(),
        &thresholds,
        scale.threads,
    );
    println!("{}", study.render());
    study.report().param("samples", samples.len()).write();
}
