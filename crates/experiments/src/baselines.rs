//! Detector comparison: CryptoDrop vs the §II baselines.
//!
//! The paper argues that Tripwire-style integrity monitoring "is likely to
//! be noisy and frustrate the user" on ever-changing user data, and that
//! single-signal detectors either miss variants or flag benign software.
//! This experiment runs all three detectors on identical workloads and
//! tabulates detection, data loss, and benign noise.

use cryptodrop::{Config, CryptoDrop, EntropyOnlyDetector, IntegrityMonitor};
use cryptodrop_benign::BenignApp;
use cryptodrop_corpus::Corpus;
use cryptodrop_malware::RansomwareSample;
use cryptodrop_vfs::{Vfs, Workload, WorkloadCtx};
use serde::{Deserialize, Serialize};

use crate::report::{median, TextTable};

/// Which detector a run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Detector {
    /// The full CryptoDrop engine.
    CryptoDrop,
    /// Tripwire-style integrity monitoring (suspends after 10 alerts so
    /// loss numbers are comparable; stock Tripwire only reports).
    IntegrityMonitor,
    /// A high-entropy-write budget detector.
    EntropyOnly,
}

impl Detector {
    /// All compared detectors.
    pub const ALL: [Detector; 3] = [
        Detector::CryptoDrop,
        Detector::IntegrityMonitor,
        Detector::EntropyOnly,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Detector::CryptoDrop => "CryptoDrop",
            Detector::IntegrityMonitor => "Integrity monitor (Tripwire-style)",
            Detector::EntropyOnly => "Entropy-only",
        }
    }

    fn arm(self, fs: &mut Vfs, config: &Config) {
        let root = config.protected_dirs[0].clone();
        match self {
            Detector::CryptoDrop => {
                let session = CryptoDrop::builder()
                    .config(config.clone())
                    .build()
                    .expect("experiment configs are valid");
                fs.register_filter(Box::new(session.fork()));
            }
            Detector::IntegrityMonitor => {
                let (mon, _handle) = IntegrityMonitor::new(root, Some(10));
                fs.register_filter(Box::new(mon));
            }
            Detector::EntropyOnly => {
                let (det, _handle) = EntropyOnlyDetector::new(root, 7.0, 256 * 1024);
                fs.register_filter(Box::new(det));
            }
        }
    }
}

/// One detector's aggregate results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorRow {
    /// Detector name.
    pub detector: String,
    /// Ransomware samples stopped before completing their plan.
    pub samples_stopped: usize,
    /// Samples evaluated.
    pub samples_total: usize,
    /// Median ground-truth files destroyed before the sample stopped.
    pub median_files_lost: f64,
    /// Benign applications suspended — hard false positives.
    pub benign_flagged: usize,
    /// Benign applications evaluated.
    pub benign_total: usize,
}

/// The full comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineComparison {
    /// One row per detector.
    pub rows: Vec<DetectorRow>,
}

/// Ground truth: how many corpus files no longer hold their original
/// content.
fn ground_truth_loss(corpus: &Corpus, fs: &mut Vfs) -> u32 {
    corpus
        .files()
        .iter()
        .filter(|f| !matches!(fs.admin().read_file(&f.path), Ok(ref d) if *d == f.data))
        .count() as u32
}

/// Runs the comparison over the given samples and benign apps.
pub fn run(
    corpus: &Corpus,
    config: &Config,
    samples: &[RansomwareSample],
    apps: &[Box<dyn BenignApp>],
) -> BaselineComparison {
    let rows = Detector::ALL
        .iter()
        .map(|&detector| {
            let mut losses = Vec::new();
            let mut stopped = 0;
            for sample in samples {
                let mut fs = Vfs::new();
                corpus.stage_into(&mut fs).expect("fresh filesystem");
                detector.arm(&mut fs, config);
                let outcome =
                    cryptodrop_vfs::drive_workload(&mut fs, sample, corpus.root(), sample.seed());
                if !outcome.completed {
                    stopped += 1;
                }
                losses.push(ground_truth_loss(corpus, &mut fs));
            }
            let mut benign_flagged = 0;
            for (i, app) in apps.iter().enumerate() {
                let mut fs = Vfs::new();
                corpus.stage_into(&mut fs).expect("fresh filesystem");
                detector.arm(&mut fs, config);
                let ctx = WorkloadCtx::spawn(&mut fs, app, corpus.root(), 0xBA5E + i as u64);
                let _ = app.drive(&mut fs, &ctx);
                if fs.is_suspended(ctx.pid()) {
                    benign_flagged += 1;
                }
            }
            DetectorRow {
                detector: detector.name().to_string(),
                samples_stopped: stopped,
                samples_total: samples.len(),
                median_files_lost: median(&losses).unwrap_or(0.0),
                benign_flagged,
                benign_total: apps.len(),
            }
        })
        .collect();
    BaselineComparison { rows }
}

impl BaselineComparison {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "Detector",
            "Samples stopped",
            "Median files lost",
            "Benign flagged",
        ]);
        for r in &self.rows {
            t.row([
                r.detector.clone(),
                format!("{}/{}", r.samples_stopped, r.samples_total),
                format!("{:.1}", r.median_files_lost),
                format!("{}/{}", r.benign_flagged, r.benign_total),
            ]);
        }
        let mut out =
            String::from("Baseline comparison — CryptoDrop vs the §II alternatives\n\n");
        out.push_str(&t.render());
        out.push_str(
            "\nThe paper's positioning, quantified: integrity monitoring reacts fast but\n\
             flags ordinary applications that legitimately modify documents; an\n\
             entropy-only signal misses low-entropy transforms and flags compressors;\n\
             CryptoDrop stops everything with benign noise confined to 7-zip.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_corpus::CorpusSpec;
    use cryptodrop_malware::{paper_sample_set, Family};

    #[test]
    fn comparison_shapes() {
        let corpus = Corpus::generate(&CorpusSpec::sized(220, 25));
        let config = Config::protecting(corpus.root().as_str());
        let samples: Vec<RansomwareSample> = paper_sample_set()
            .into_iter()
            .filter(|s| {
                (s.family == Family::TeslaCrypt || s.family == Family::Xorist) && s.index == 0
            })
            .collect();
        // Benign side: two editors that modify documents in place.
        let apps: Vec<Box<dyn BenignApp>> = vec![
            Box::new(cryptodrop_benign::ImageMagick { photo_count: 25 }),
            Box::new(cryptodrop_benign::Excel { save_cycles: 8 }),
        ];
        let cmp = run(&corpus, &config, &samples, &apps);
        assert_eq!(cmp.rows.len(), 3);
        let get = |name: &str| {
            cmp.rows
                .iter()
                .find(|r| r.detector.starts_with(name))
                .unwrap()
                .clone()
        };
        let cd = get("CryptoDrop");
        let im = get("Integrity");
        assert_eq!(cd.samples_stopped, samples.len(), "CryptoDrop stops everything");
        assert_eq!(cd.benign_flagged, 0, "no benign FPs for CryptoDrop here");
        // The integrity monitor also stops the samples fast...
        assert_eq!(im.samples_stopped, samples.len());
        // ...but flags benign editors — the paper's noise critique.
        assert!(
            im.benign_flagged > 0,
            "integrity monitoring must flag document editors"
        );
        assert!(cmp.render().contains("Tripwire"));
    }
}
