//! Figure 3: the cumulative distribution of files lost before detection.
//!
//! "The median number of files lost before detection was 10, and
//! CryptoDrop detected all 492 samples with 33 or fewer files lost."

use serde::{Deserialize, Serialize};

use crate::report::{bar, median};
use crate::runner::SampleResult;

/// One point of the cumulative curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// Files lost.
    pub files_lost: u32,
    /// Percentage of samples detected at or below this loss.
    pub cumulative_percent: f64,
}

/// The reproduced Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// The cumulative curve, ascending in files lost.
    pub points: Vec<CdfPoint>,
    /// Median files lost.
    pub median_files_lost: f64,
    /// Maximum files lost.
    pub max_files_lost: u32,
    /// Samples with zero files lost (the paper: "as few as zero").
    pub zero_loss_samples: usize,
}

impl Fig3 {
    /// Builds the cumulative curve from per-sample results.
    pub fn from_results(results: &[SampleResult]) -> Fig3 {
        let mut losses: Vec<u32> = results.iter().map(|r| r.files_lost).collect();
        losses.sort_unstable();
        let n = losses.len().max(1);
        let mut points = Vec::new();
        let mut i = 0;
        while i < losses.len() {
            let v = losses[i];
            // Advance to the last sample with this loss.
            while i + 1 < losses.len() && losses[i + 1] == v {
                i += 1;
            }
            points.push(CdfPoint {
                files_lost: v,
                cumulative_percent: 100.0 * (i + 1) as f64 / n as f64,
            });
            i += 1;
        }
        Fig3 {
            median_files_lost: median(&losses).unwrap_or(0.0),
            max_files_lost: losses.last().copied().unwrap_or(0),
            zero_loss_samples: losses.iter().filter(|&&l| l == 0).count(),
            points,
        }
    }

    /// Renders an ASCII version of the cumulative plot.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 3 — cumulative % of samples detected by number of files lost\n\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "  ≤{:>3} files  {:>5.1}%  |{}|\n",
                p.files_lost,
                p.cumulative_percent,
                bar(p.cumulative_percent / 100.0, 50),
            ));
        }
        out.push_str(&format!(
            "\nMedian: {:.1} files (paper: 10); all samples ≤ {} files (paper: 33); \
             {} samples with zero loss (paper: \"as few as zero\")\n",
            self.median_files_lost, self.max_files_lost, self.zero_loss_samples
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_malware::BehaviorClass;
    use std::collections::BTreeSet;

    fn result(lost: u32) -> SampleResult {
        SampleResult {
            id: 0,
            family: "X".into(),
            class: BehaviorClass::A,
            detected: true,
            files_lost: lost,
            score: 0,
            union_triggered: false,
            read_only_skipped: 0,
            completed: false,
            files_attacked: lost,
            extensions_accessed: BTreeSet::new(),
            dirs_touched: BTreeSet::new(),
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_100() {
        let results: Vec<SampleResult> = [0u32, 3, 3, 5, 10, 10, 10, 33].iter().map(|&l| result(l)).collect();
        let fig = Fig3::from_results(&results);
        assert_eq!(fig.points.first().unwrap().files_lost, 0);
        assert_eq!(fig.points.last().unwrap().files_lost, 33);
        assert!((fig.points.last().unwrap().cumulative_percent - 100.0).abs() < 1e-9);
        let pcts: Vec<f64> = fig.points.iter().map(|p| p.cumulative_percent).collect();
        assert!(pcts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(fig.zero_loss_samples, 1);
        assert_eq!(fig.max_files_lost, 33);
        assert_eq!(fig.median_files_lost, 7.5);
    }

    #[test]
    fn duplicate_losses_collapse_to_one_point() {
        let results: Vec<SampleResult> = [4u32, 4, 4].iter().map(|&l| result(l)).collect();
        let fig = Fig3::from_results(&results);
        assert_eq!(fig.points.len(), 1);
        assert_eq!(fig.points[0].cumulative_percent, 100.0);
    }

    #[test]
    fn render_shows_median_line() {
        let fig = Fig3::from_results(&[result(10)]);
        let out = fig.render();
        assert!(out.contains("Median"));
        assert!(out.contains("≤ 10 files") || out.contains("10 files"));
    }
}
