//! The detection/false-positive operating-curve study behind the paper's
//! choice of thresholds.
//!
//! The paper fixes the non-union threshold at 200 (§V-A) and notes in
//! §V-F that "our threshold selection minimizes false positives while
//! maintaining fast detection of ransomware". This experiment sweeps the
//! threshold pair and tabulates, for each operating point, the median
//! files lost across a sample subset and the number of benign Fig. 6
//! applications whose final scores would cross it — the data Fig. 6's
//! narrative rests on.

use cryptodrop::{Config, ScoreConfig};
use cryptodrop_benign::BenignApp;
use cryptodrop_corpus::Corpus;
use cryptodrop_malware::RansomwareSample;
use serde::{Deserialize, Serialize};

use crate::report::{median, StudyReport, TextTable};
use crate::runner::{run_samples_parallel, run_workload};

/// One operating point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// The non-union threshold.
    pub non_union_threshold: u32,
    /// The union threshold (scaled with the non-union one).
    pub union_threshold: u32,
    /// Detection rate across the sample subset.
    pub detection_rate: f64,
    /// Median files lost among detected samples.
    pub median_files_lost: f64,
    /// Benign applications whose final score reaches the non-union
    /// threshold.
    pub benign_false_positives: usize,
}

/// The full operating curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocStudy {
    /// Points in ascending threshold order.
    pub points: Vec<RocPoint>,
    /// The paper's operating point, for the marker line.
    pub paper_threshold: u32,
}

/// Sweeps the threshold pair over `thresholds`, holding the point values
/// fixed at the defaults.
pub fn run(
    corpus: &Corpus,
    base: &Config,
    samples: &[RansomwareSample],
    apps: &[Box<dyn BenignApp>],
    thresholds: &[u32],
    threads: usize,
) -> RocStudy {
    // Benign final scores do not depend on the threshold (the apps run to
    // completion under an unbounded config), so compute them once.
    let unbounded = Config {
        score: ScoreConfig {
            non_union_threshold: u32::MAX,
            union_threshold: u32::MAX,
            ..base.score.clone()
        },
        ..base.clone()
    };
    let benign_scores: Vec<u32> = apps
        .iter()
        .enumerate()
        .map(|(i, app)| run_workload(corpus, &unbounded, app, 0x40C + i as u64).score)
        .collect();

    let points = thresholds
        .iter()
        .map(|&threshold| {
            let union_threshold = (threshold * 4 / 5).max(1);
            let config = Config {
                score: ScoreConfig {
                    non_union_threshold: threshold,
                    union_threshold,
                    ..base.score.clone()
                },
                ..base.clone()
            };
            let results = run_samples_parallel(corpus, &config, samples, threads);
            let detected: Vec<_> = results.iter().filter(|r| r.detected).collect();
            let losses: Vec<u32> = detected.iter().map(|r| r.files_lost).collect();
            RocPoint {
                non_union_threshold: threshold,
                union_threshold,
                detection_rate: detected.len() as f64 / results.len().max(1) as f64,
                median_files_lost: median(&losses).unwrap_or(0.0),
                benign_false_positives: benign_scores
                    .iter()
                    .filter(|&&s| s >= threshold)
                    .count(),
            }
        })
        .collect();

    RocStudy {
        points,
        paper_threshold: 200,
    }
}

impl RocStudy {
    /// Wraps the study in the shared schema-versioned envelope
    /// (`results/roc.json`).
    pub fn report(&self) -> StudyReport {
        StudyReport::new("roc", 1)
            .param("thresholds", self.points.len())
            .param("paper_threshold", self.paper_threshold)
            .body(self)
    }

    /// Renders the curve as a table with the paper's operating point
    /// marked.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "Threshold (union)",
            "Detection",
            "Median files lost",
            "Benign FPs",
            "",
        ]);
        for p in &self.points {
            t.row([
                format!("{} ({})", p.non_union_threshold, p.union_threshold),
                format!("{:.0}%", 100.0 * p.detection_rate),
                format!("{:.1}", p.median_files_lost),
                p.benign_false_positives.to_string(),
                if p.non_union_threshold == self.paper_threshold {
                    "<- paper".to_string()
                } else {
                    String::new()
                },
            ]);
        }
        let mut out = String::from(
            "Threshold operating curve — detection speed vs benign noise\n\n",
        );
        out.push_str(&t.render());
        out.push_str(
            "\nLower thresholds cut files lost but pull benign applications over the\n\
             line; the paper's 200 sits just above the benign score mass (Excel 150,\n\
             Lightroom 107) while keeping the loss median around ten files.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_corpus::CorpusSpec;
    use cryptodrop_malware::{paper_sample_set, Family};

    #[test]
    fn curve_trades_loss_for_noise() {
        let corpus = Corpus::generate(&CorpusSpec::sized(250, 25));
        let config = Config::protecting(corpus.root().as_str());
        let samples: Vec<RansomwareSample> = paper_sample_set()
            .into_iter()
            .filter(|s| s.index == 0 && s.family == Family::TeslaCrypt)
            .collect();
        let apps: Vec<Box<dyn BenignApp>> = vec![
            Box::new(cryptodrop_benign::Excel { save_cycles: 12 }),
            Box::new(cryptodrop_benign::Word),
        ];
        let study = run(&corpus, &config, &samples, &apps, &[50, 200, 400], 1);
        assert_eq!(study.points.len(), 3);
        // Median loss grows with the threshold...
        let losses: Vec<f64> = study.points.iter().map(|p| p.median_files_lost).collect();
        assert!(losses[0] <= losses[1] && losses[1] <= losses[2], "{losses:?}");
        // ...while benign noise shrinks.
        let fps: Vec<usize> = study
            .points
            .iter()
            .map(|p| p.benign_false_positives)
            .collect();
        assert!(fps[0] >= fps[1] && fps[1] >= fps[2], "{fps:?}");
        // Detection stays total at every point for a Class A sample.
        assert!(study.points.iter().all(|p| p.detection_rate > 0.99));
        assert!(study.render().contains("<- paper"));
    }
}
