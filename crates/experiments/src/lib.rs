//! The experiment harness: regenerates every table and figure of the
//! CryptoDrop evaluation (paper §V).
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table I (per-family breakdown, median files lost) + §V-B2 union audit |
//! | [`fig3`] | Fig. 3 (cumulative files-lost distribution) |
//! | [`fig4`] | Fig. 4 (per-family traversal footprints) |
//! | [`fig5`] | Fig. 5 (extension access frequencies) |
//! | [`fig6`] | Fig. 6 + §V-F (benign scores, FP threshold sweep) |
//! | [`perf`] | §V-H (filter-added latency per op kind) |
//! | [`ablation`] | §V-C small-file rerun + union/tracking/dynamic-scoring ablations |
//! | [`baselines`] | CryptoDrop vs §II baselines (Tripwire-style integrity, entropy-only) |
//! | [`isolation`] | §III indicators-in-isolation study |
//! | [`roc`] | the threshold operating curve behind the paper's 200 (§V-A/§V-F) |
//! | [`recovery`] | the "Drop It" study: data saved vs detection threshold |
//! | [`deception`] | the active-defense study: decoy tripwires + reputation throttling |
//! | [`adversarial`] | evasive strategies × indicator ablations + benign heavy-writer FP sweep |
//! | [`telemetry`] | instrumented runs: metric/journal harvests + detection audit trails |
//!
//! Each experiment runs at a [`Scale`]: [`Scale::paper`] uses the full
//! 5,099-file corpus and all 492 samples; [`Scale::quick`] shrinks both
//! for CI-speed smoke runs. Runs are deterministic per scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adversarial;
pub mod baselines;
pub mod deception;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod isolation;
pub mod perf;
pub mod recovery;
pub mod roc;
pub mod report;
pub mod runner;
pub mod table1;
pub mod telemetry;

use cryptodrop::Config;
use cryptodrop_corpus::{Corpus, CorpusSpec};
use cryptodrop_malware::{paper_sample_set, RansomwareSample};
use serde::{Deserialize, Serialize};

/// The size at which an experiment runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Corpus dimensions and mix.
    pub corpus_spec: CorpusSpec,
    /// Cap on samples per (family, class); `None` runs all 492.
    pub sample_cap: Option<usize>,
    /// Worker threads for sample fan-out.
    pub threads: usize,
}

impl Scale {
    /// The paper's full scale: 5,099 files / 511 directories / 492 samples.
    pub fn paper() -> Self {
        Self {
            corpus_spec: CorpusSpec::paper(),
            sample_cap: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }

    /// A reduced scale for smoke tests: a 600-file corpus and at most two
    /// samples per (family, class).
    pub fn quick() -> Self {
        Self {
            corpus_spec: CorpusSpec::sized(600, 60),
            sample_cap: Some(2),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }

    /// Generates the corpus for this scale.
    pub fn corpus(&self) -> Corpus {
        Corpus::generate(&self.corpus_spec)
    }

    /// The default engine configuration for this scale's corpus.
    pub fn config(&self) -> Config {
        Config::protecting(self.corpus_spec.root.as_str())
    }

    /// The sample set, capped per (family, class) if requested.
    pub fn samples(&self) -> Vec<RansomwareSample> {
        let all = paper_sample_set();
        match self.sample_cap {
            None => all,
            Some(cap) => all.into_iter().filter(|s| s.index < cap).collect(),
        }
    }

    /// Parses `--quick` / `--paper` style command-line arguments for the
    /// experiment binaries (defaults to paper scale).
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        if quick {
            Scale::quick()
        } else {
            Scale::paper()
        }
    }
}

/// Writes an experiment's JSON artifact under `results/` (best effort —
/// rendering to stdout is the primary output).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(json) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(path, json);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        let q = Scale::quick();
        assert_eq!(q.corpus_spec.total_files, 600);
        let samples = q.samples();
        assert!(samples.len() < 100, "quick scale caps samples: {}", samples.len());
        // Every (family, class) pair present in the full set survives.
        let full = Scale::paper().samples();
        assert_eq!(full.len(), 492);
        use std::collections::HashSet;
        let full_pairs: HashSet<_> = full.iter().map(|s| (s.family, s.class)).collect();
        let quick_pairs: HashSet<_> = samples.iter().map(|s| (s.family, s.class)).collect();
        assert_eq!(full_pairs, quick_pairs);
    }

    #[test]
    fn quick_corpus_generates() {
        let c = Scale::quick().corpus();
        assert_eq!(c.file_count(), 600);
        assert_eq!(c.dir_count(), 60);
    }
}
