//! Machine-readable telemetry summaries for instrumented runs.
//!
//! The paper's user-facing side (§IV-A) hinges on *explaining* a verdict,
//! not just issuing it. This module runs representative samples with the
//! full telemetry stack armed — shared metric registry, event journal, and
//! per-process audit trail — and condenses the result into a serializable
//! [`TelemetryStudy`] (`results/telemetry.json` from `run-all`).
//!
//! A paired regression test proves the instrumentation is *inert*: a
//! sample's [`SampleResult`] is byte-identical with telemetry enabled and
//! disabled.

use std::collections::BTreeMap;

use cryptodrop::{AuditTrail, Config, Monitor, Telemetry};
use cryptodrop_corpus::Corpus;
use cryptodrop_malware::RansomwareSample;
use cryptodrop_telemetry::HistogramSnapshot;
use cryptodrop_vfs::ProcessId;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;
use crate::runner::{run_sample_with_telemetry, SampleResult};

/// The telemetry harvest of one instrumented run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTelemetry {
    /// Journal events retained for this run.
    pub journal_events: usize,
    /// Journal events dropped to the capacity bound.
    pub journal_dropped: u64,
    /// Indicator fire counts by indicator name.
    pub indicator_fires: BTreeMap<String, u64>,
    /// Total detections counted by the engine.
    pub detections: u64,
    /// Per-indicator evaluation latency histograms
    /// (`engine.eval.<name>.ns`), keyed by indicator name.
    pub eval_ns: BTreeMap<String, HistogramSnapshot>,
    /// The reconstructed detection audit trail of the monitored process.
    pub audit: Option<AuditTrail>,
}

impl RunTelemetry {
    /// Harvests a run's telemetry for `pid` from a shared sink and its
    /// monitor.
    pub fn collect(telemetry: &Telemetry, monitor: &Monitor, pid: ProcessId) -> Self {
        let snap = telemetry.metrics().snapshot();
        let strip = |k: &str, prefix: &str, suffix: &str| {
            k.strip_prefix(prefix)
                .and_then(|r| r.strip_suffix(suffix))
                .map(str::to_string)
        };
        Self {
            journal_events: telemetry.journal().len(),
            journal_dropped: telemetry.journal().dropped(),
            indicator_fires: snap
                .counters
                .iter()
                .filter_map(|(k, v)| strip(k, "engine.indicator.", ".fires").map(|n| (n, *v)))
                .collect(),
            detections: snap.counters.get("engine.detections").copied().unwrap_or(0),
            eval_ns: snap
                .histograms
                .iter()
                .filter_map(|(k, v)| strip(k, "engine.eval.", ".ns").map(|n| (n, v.clone())))
                .collect(),
            audit: monitor.audit_trail(pid),
        }
    }
}

/// One instrumented sample run within a [`TelemetryStudy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyRun {
    /// Family display name.
    pub family: String,
    /// The verdict-level outcome (identical to an uninstrumented run).
    pub result: SampleResult,
    /// What the telemetry stack recorded along the way.
    pub telemetry: RunTelemetry,
}

/// Telemetry harvests for a representative sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryStudy {
    /// One instrumented run per representative sample.
    pub runs: Vec<StudyRun>,
}

/// Runs each sample with a fresh enabled telemetry sink and harvests the
/// result.
pub fn run(corpus: &Corpus, config: &Config, samples: &[RansomwareSample]) -> TelemetryStudy {
    let runs = samples
        .iter()
        .map(|s| {
            let telemetry = Telemetry::new(cryptodrop_telemetry::DEFAULT_JOURNAL_CAPACITY);
            let (result, harvest) = run_sample_with_telemetry(corpus, config, s, telemetry);
            StudyRun {
                family: s.family.name().to_string(),
                result,
                telemetry: harvest,
            }
        })
        .collect();
    TelemetryStudy { runs }
}

impl TelemetryStudy {
    /// Renders the study: one row per run, then the first detection's
    /// audit-trail timeline in full.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "family",
            "detected",
            "journal events",
            "dropped",
            "indicator fires",
            "sim eval p50 (ns)",
        ]);
        for r in &self.runs {
            let fires: u64 = r.telemetry.indicator_fires.values().sum();
            let p50 = r
                .telemetry
                .eval_ns
                .get("similarity")
                .map(|h| h.quantile_le(0.5).to_string())
                .unwrap_or_else(|| "-".into());
            t.row([
                r.family.clone(),
                if r.result.detected { "yes" } else { "no" }.into(),
                r.telemetry.journal_events.to_string(),
                r.telemetry.journal_dropped.to_string(),
                fires.to_string(),
                p50,
            ]);
        }
        let mut out = String::from("Telemetry study (instrumented representative runs)\n");
        out.push_str(&t.render());
        if let Some(trail) = self
            .runs
            .iter()
            .filter_map(|r| r.telemetry.audit.as_ref())
            .find(|a| a.detected)
        {
            out.push_str("\nFirst detection, audited:\n");
            out.push_str(&trail.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_sample;
    use crate::Scale;
    use cryptodrop_corpus::CorpusSpec;
    use cryptodrop_malware::paper_sample_set;

    fn quick() -> (Corpus, Config, Vec<RansomwareSample>) {
        let corpus = Corpus::generate(&CorpusSpec::sized(160, 20));
        let config = Config::protecting(corpus.root().as_str());
        let samples: Vec<_> = paper_sample_set().into_iter().step_by(211).take(2).collect();
        (corpus, config, samples)
    }

    #[test]
    fn instrumentation_is_inert() {
        // The whole point of the shared-sink design: arming telemetry must
        // not change a single verdict-level field.
        let (corpus, config, samples) = quick();
        for s in &samples {
            let plain = run_sample(&corpus, &config, s);
            let (instrumented, harvest) =
                run_sample_with_telemetry(&corpus, &config, s, Telemetry::new(1 << 16));
            assert_eq!(plain, instrumented, "telemetry changed a verdict");
            assert!(harvest.journal_events > 0, "enabled sink must record");
        }
    }

    #[test]
    fn study_harvests_detections() {
        let (corpus, config, samples) = quick();
        let study = run(&corpus, &config, &samples);
        assert_eq!(study.runs.len(), samples.len());
        let detected: Vec<_> = study.runs.iter().filter(|r| r.result.detected).collect();
        assert!(!detected.is_empty(), "representative samples must detect");
        for r in detected {
            let audit = r.telemetry.audit.as_ref().expect("audit for detection");
            assert!(audit.detected);
            assert!(!audit.entries.is_empty());
            let fires: u64 = r.telemetry.indicator_fires.values().sum();
            assert_eq!(fires, audit.entries.len() as u64);
            assert_eq!(r.telemetry.detections, 1);
            assert!(r.telemetry.eval_ns.contains_key("similarity"));
        }
        let rendered = study.render();
        assert!(rendered.contains("Telemetry study"));
        assert!(rendered.contains("SUSPENDED"));
        // The study is a machine-readable artifact.
        let json = serde_json::to_string(&study).unwrap();
        assert!(json.contains("\"indicator_fires\""));
        assert!(json.contains("\"audit\""));
        assert!(json.contains("\"journal_events\""));
    }

    #[test]
    fn scales_smoke() {
        // Keep the quick scale wired for run-all.
        let s = Scale::quick();
        assert!(s.sample_cap.is_some());
    }
}
