//! Plain-text table rendering, small statistics helpers, and the
//! schema-versioned [`StudyReport`] envelope shared by the experiment
//! reports.

use serde::ser::Value;
use serde::Serialize;

/// The schema-versioned envelope every study artifact under `results/`
/// shares.
///
/// Every JSON artifact carries the same three top-level fields:
///
/// * `schema` — `{ "study": <name>, "version": <u32> }`, so downstream
///   readers (the CI gates, plotting scripts) can dispatch without
///   guessing from file names and detect breaking field changes;
/// * `params` — the inputs that shaped the run (corpus size, sample
///   count, threads), in insertion order;
/// * `body` — the study's own result structure, unchanged.
///
/// Bump the version whenever a field in the body changes meaning or
/// disappears; adding fields is compatible.
///
/// # Examples
///
/// ```
/// use cryptodrop_experiments::report::StudyReport;
///
/// let report = StudyReport::new("demo", 1)
///     .param("samples", 492u32)
///     .body(&vec![1u32, 2, 3]);
/// let json = serde_json::to_string(&report).unwrap();
/// assert!(json.starts_with("{\"schema\":{\"study\":\"demo\",\"version\":1}"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    study: String,
    version: u32,
    params: Vec<(String, Value)>,
    body: Value,
}

impl StudyReport {
    /// Starts an envelope for the named study at the given schema
    /// version. The name doubles as the artifact file name
    /// (`results/<study>.json`).
    pub fn new(study: impl Into<String>, version: u32) -> Self {
        Self {
            study: study.into(),
            version,
            params: Vec::new(),
            body: Value::Null,
        }
    }

    /// Records one run parameter (kept in insertion order).
    pub fn param(mut self, key: impl Into<String>, value: impl Serialize) -> Self {
        self.params.push((key.into(), value.to_value()));
        self
    }

    /// Sets the study's result structure.
    pub fn body(mut self, body: &impl Serialize) -> Self {
        self.body = body.to_value();
        self
    }

    /// The study name (and artifact base name).
    pub fn study(&self) -> &str {
        &self.study
    }

    /// The schema version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Writes the envelope to `results/<study>.json` (best effort, like
    /// [`write_json`](crate::write_json)).
    pub fn write(&self) {
        crate::write_json(&self.study, self);
    }
}

impl Serialize for StudyReport {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "schema".into(),
                Value::Map(vec![
                    ("study".into(), Value::String(self.study.clone())),
                    ("version".into(), Value::UInt(u64::from(self.version))),
                ]),
            ),
            ("params".into(), Value::Map(self.params.clone())),
            ("body".into(), self.body.clone()),
        ])
    }
}

/// An aligned plain-text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty; extra cells are kept).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with padded columns and a header rule.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', w.saturating_sub(cell.chars().count())));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// The median of a set of values (mean of the two central values for even
/// counts), or `None` for an empty set.
pub fn median(values: &[u32]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2] as f64
    } else {
        (v[n / 2 - 1] as f64 + v[n / 2] as f64) / 2.0
    })
}

/// A unicode bar of proportional length for ASCII charts.
pub fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = "#".repeat(filled);
    s.extend(std::iter::repeat_n('.', width - filled.min(width)));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["name", "count"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "count" column starts at the same offset.
        let col = lines[0].find("count").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find('2').unwrap(), col);
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = TextTable::new(["a"]);
        t.row(["x", "extra"]);
        t.row::<&str>([]);
        let r = t.render();
        assert!(r.contains("extra"));
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[5]), Some(5.0));
        assert_eq!(median(&[1, 3, 2]), Some(2.0));
        assert_eq!(median(&[1, 2, 3, 4]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[10, 0, 10, 0]), Some(5.0));
    }

    #[test]
    fn study_report_envelope_shape() {
        let report = StudyReport::new("unit", 3)
            .param("files", 800u32)
            .param("quick", true)
            .body(&"payload");
        assert_eq!(report.study(), "unit");
        assert_eq!(report.version(), 3);
        let json = serde_json::to_string(&report).unwrap();
        assert_eq!(
            json,
            "{\"schema\":{\"study\":\"unit\",\"version\":3},\
             \"params\":{\"files\":800,\"quick\":true},\
             \"body\":\"payload\"}"
        );
    }

    #[test]
    fn bar_widths() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(2.0, 4), "####", "clamped");
    }
}
