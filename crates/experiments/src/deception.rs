//! The active-defense study: decoy files and reputation throttling.
//!
//! CryptoDrop's scoreboard needs a handful of destroyed files to converge;
//! a GuardFS-style deception layer attacks that exposure window from two
//! sides. *Decoys* — bait files woven through the corpus, registered with
//! the engine — turn the attacker's very first destructive touch of one
//! into an instant maximum-confidence suspension, and *throttling* delays
//! a brewing suspect's destructive operations on the simulated clock once
//! its score passes the engage point, stretching the time it needs to do
//! damage while the indicators converge.
//!
//! The study replays the sample set per family under three modes —
//! no defense, decoys only, decoys plus throttling — against the *same*
//! decoy-woven corpus (only engine registration differs, so file sets are
//! identical across modes) and reports the median **real** files lost
//! (sacrificial bait never counts), the decoy-trip rate, and the simulated
//! time each sample survived. A benign sweep runs the Fig. 6 applications
//! against the same baited filesystem and counts false positives — decoys
//! must be free: no legitimate workload modifies them.

use cryptodrop::{Config, CryptoDrop};
use cryptodrop_benign::BenignApp;
use cryptodrop_corpus::{Corpus, CorpusSpec};
use cryptodrop_malware::RansomwareSample;
use cryptodrop_simhash::content_fingerprint;
use cryptodrop_vfs::{VPath, Vfs, Workload, WorkloadCtx};
use serde::{Deserialize, Serialize};

use crate::report::{median, StudyReport, TextTable};

/// Which layers of the active defense are armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefenseMode {
    /// Plain CryptoDrop: the decoy files exist in the corpus but are not
    /// registered with the engine, and throttling is off.
    NoDefense,
    /// Decoys registered: any destructive touch of one suspends instantly.
    Decoys,
    /// Decoys plus reputation-driven op throttling.
    DecoysThrottle,
}

impl DefenseMode {
    /// All modes, in escalation order.
    pub const ALL: [DefenseMode; 3] = [
        DefenseMode::NoDefense,
        DefenseMode::Decoys,
        DefenseMode::DecoysThrottle,
    ];

    /// A short stable label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            DefenseMode::NoDefense => "none",
            DefenseMode::Decoys => "decoys",
            DefenseMode::DecoysThrottle => "decoys+throttle",
        }
    }
}

/// One sample replayed under one defense mode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeceptionRun {
    /// Sample id.
    pub id: u32,
    /// Family display name.
    pub family: String,
    /// The defense mode this run used.
    pub mode: DefenseMode,
    /// Whether the sample was suspended mid-run.
    pub detected: bool,
    /// Real (non-decoy) corpus files destroyed or corrupted by the end of
    /// the run — the study's loss metric. Bait is sacrificial and never
    /// counted.
    pub real_files_lost: u32,
    /// Whether suspension came from the decoy tripwire (suspended below
    /// the reputation threshold) rather than scoreboard convergence.
    pub decoy_trip: bool,
    /// Simulated nanoseconds elapsed when the run ended (at suspension,
    /// or at plan completion for undetected runs). Throttling shows up
    /// here: the same attack costs the suspect more simulated time.
    pub sim_nanos: u64,
}

/// Per-(family, mode) aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyDeception {
    /// Family display name.
    pub family: String,
    /// The defense mode.
    pub mode: DefenseMode,
    /// Fraction of the family's samples suspended.
    pub detection_rate: f64,
    /// Median real (non-decoy) files lost across the family's samples.
    pub median_real_files_lost: f64,
    /// Fraction of detections that came from the decoy tripwire.
    pub decoy_trip_rate: f64,
    /// Median simulated microseconds a sample survived.
    pub median_sim_micros: f64,
}

/// One benign application run against the baited filesystem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenignDecoyResult {
    /// Application display name.
    pub name: String,
    /// Whether the app was suspended — with decoys armed, any suspension
    /// here is a false positive.
    pub detected: bool,
    /// Whether the workload ran to completion.
    pub completed: bool,
}

/// The full active-defense study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeceptionStudy {
    /// Decoys woven into the corpus.
    pub decoy_count: usize,
    /// Per-(family, mode) aggregates, family-major in mode escalation
    /// order.
    pub rows: Vec<FamilyDeception>,
    /// Per-sample runs behind the aggregates.
    pub runs: Vec<DeceptionRun>,
    /// The benign sweep over the baited corpus with decoys armed.
    pub benign: Vec<BenignDecoyResult>,
    /// Benign apps suspended with the full defense armed. Must be zero:
    /// decoys cost legitimate workloads nothing.
    pub benign_false_positives: usize,
}

/// Fingerprints of the real (non-decoy) corpus files as staged.
pub(crate) fn real_fingerprints(baited: &Corpus) -> Vec<(&VPath, u64)> {
    baited
        .files()
        .iter()
        .filter(|f| !f.decoy)
        .map(|f| (&f.path, content_fingerprint(&f.data)))
        .collect()
}

/// Builds the engine configuration for a defense mode: decoys registered
/// for both defended modes, throttling engaged at half the detection
/// threshold for the full mode.
fn mode_config(base: &Config, baited: &Corpus, mode: DefenseMode) -> Config {
    let mut cfg = base.clone();
    match mode {
        DefenseMode::NoDefense => {}
        DefenseMode::Decoys => {
            cfg.decoy_paths = baited.decoy_paths().cloned().collect();
        }
        DefenseMode::DecoysThrottle => {
            cfg.decoy_paths = baited.decoy_paths().cloned().collect();
            cfg.throttle_enabled = true;
            cfg.throttle_score = (base.score.non_union_threshold / 2).max(1);
            cfg.throttle_nanos_per_point = 1_000_000;
        }
    }
    cfg
}

/// Replays one sample under one defense mode against the baited corpus
/// and audits the surviving real files.
pub fn run_sample_defended(
    baited: &Corpus,
    base: &Config,
    sample: &RansomwareSample,
    mode: DefenseMode,
) -> DeceptionRun {
    let mut fs = Vfs::new();
    baited
        .stage_into(&mut fs)
        .expect("staging a generated corpus into an empty filesystem cannot fail");

    let session = CryptoDrop::builder()
        .config(mode_config(base, baited, mode))
        .build()
        .expect("experiment configs are valid");
    session.attach(&mut fs);
    let ctx = WorkloadCtx::spawn(&mut fs, sample, baited.root(), sample.seed());
    let pid = ctx.pid();
    sample.drive(&mut fs, &ctx);

    let detected = fs.is_suspended(pid);
    let report = session.detection_for(pid);
    // A decoy trip suspends below the reputation threshold; scoreboard
    // detections only ever fire at or above it.
    let decoy_trip = report.as_ref().is_some_and(|r| r.score < r.threshold);
    let real_files_lost = real_fingerprints(baited)
        .iter()
        .filter(|(path, fp)| {
            fs.admin()
                .read_file(path)
                .map_or(true, |data| content_fingerprint(&data) != *fp)
        })
        .count() as u32;

    DeceptionRun {
        id: sample.id,
        family: sample.family.name().to_string(),
        mode,
        detected,
        real_files_lost,
        decoy_trip,
        sim_nanos: fs.clock().now_nanos(),
    }
}

/// Runs the benign sweep: each application against the baited corpus with
/// the full defense armed.
fn run_benign_sweep(
    baited: &Corpus,
    base: &Config,
    apps: &[Box<dyn BenignApp>],
) -> Vec<BenignDecoyResult> {
    apps.iter()
        .enumerate()
        .map(|(i, app)| {
            let mut fs = Vfs::new();
            baited
                .stage_into(&mut fs)
                .expect("staging a generated corpus into an empty filesystem cannot fail");
            let session = CryptoDrop::builder()
                .config(mode_config(base, baited, DefenseMode::DecoysThrottle))
                .build()
                .expect("experiment configs are valid");
            session.attach(&mut fs);
            let ctx = WorkloadCtx::spawn(&mut fs, app, baited.root(), 0xDEC0 + i as u64);
            let out = app.drive(&mut fs, &ctx);
            BenignDecoyResult {
                name: Workload::name(app),
                detected: fs.is_suspended(ctx.pid()),
                completed: out.completed,
            }
        })
        .collect()
}

/// Weaves decoys into the scale's corpus: ~2% of the real file count,
/// bounded to [4, 64].
pub fn bait_corpus(corpus: &Corpus, spec: &CorpusSpec) -> Corpus {
    let count = (corpus.file_count() / 50).clamp(4, 64);
    corpus.with_decoys(spec, count)
}

/// Runs the full study: every sample × every mode, plus the benign sweep.
pub fn run(
    baited: &Corpus,
    base: &Config,
    samples: &[RansomwareSample],
    apps: &[Box<dyn BenignApp>],
    threads: usize,
) -> DeceptionStudy {
    let jobs: Vec<(usize, DefenseMode)> = (0..samples.len())
        .flat_map(|i| DefenseMode::ALL.map(|m| (i, m)))
        .collect();
    let runs = run_defended_parallel(baited, base, samples, &jobs, threads);

    let mut rows = Vec::new();
    let mut families: Vec<&str> = runs.iter().map(|r| r.family.as_str()).collect();
    families.dedup();
    for family in families {
        for mode in DefenseMode::ALL {
            let of_mode: Vec<&DeceptionRun> = runs
                .iter()
                .filter(|r| r.family == family && r.mode == mode)
                .collect();
            if of_mode.is_empty() {
                continue;
            }
            let losses: Vec<u32> = of_mode.iter().map(|r| r.real_files_lost).collect();
            let micros: Vec<u32> = of_mode
                .iter()
                .map(|r| u32::try_from(r.sim_nanos / 1_000).unwrap_or(u32::MAX))
                .collect();
            let detected = of_mode.iter().filter(|r| r.detected).count();
            let trips = of_mode.iter().filter(|r| r.decoy_trip).count();
            rows.push(FamilyDeception {
                family: family.to_string(),
                mode,
                detection_rate: detected as f64 / of_mode.len() as f64,
                median_real_files_lost: median(&losses).unwrap_or(0.0),
                decoy_trip_rate: trips as f64 / of_mode.len().max(1) as f64,
                median_sim_micros: median(&micros).unwrap_or(0.0),
            });
        }
    }

    let benign = run_benign_sweep(baited, base, apps);
    let benign_false_positives = benign.iter().filter(|r| r.detected).count();
    DeceptionStudy {
        decoy_count: baited.decoy_count(),
        rows,
        runs,
        benign,
        benign_false_positives,
    }
}

/// Runs (sample, mode) jobs across worker threads, preserving job order.
fn run_defended_parallel(
    baited: &Corpus,
    base: &Config,
    samples: &[RansomwareSample],
    jobs: &[(usize, DefenseMode)],
    threads: usize,
) -> Vec<DeceptionRun> {
    let threads = threads.max(1);
    if threads == 1 || jobs.len() <= 1 {
        return jobs
            .iter()
            .map(|&(i, mode)| run_sample_defended(baited, base, &samples[i], mode))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<DeceptionRun>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (i, mode) = jobs[j];
                let r = run_sample_defended(baited, base, &samples[i], mode);
                *slots[j].lock().expect("no poisoning: workers do not panic") = Some(r);
            });
        }
    })
    .expect("worker threads do not panic");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("not poisoned").expect("all slots filled"))
        .collect()
}

impl DeceptionStudy {
    /// Per-family medians for one mode, keyed by family name.
    fn mode_losses(&self, mode: DefenseMode) -> Vec<(&str, f64)> {
        self.rows
            .iter()
            .filter(|r| r.mode == mode)
            .map(|r| (r.family.as_str(), r.median_real_files_lost))
            .collect()
    }

    /// `true` when, for every family, the fully defended median real loss
    /// is no worse than the undefended one — the study's acceptance gate.
    pub fn defense_never_hurts(&self) -> bool {
        let base: std::collections::BTreeMap<&str, f64> =
            self.mode_losses(DefenseMode::NoDefense).into_iter().collect();
        self.mode_losses(DefenseMode::DecoysThrottle)
            .iter()
            .all(|(family, loss)| base.get(family).is_none_or(|b| loss <= b))
    }

    /// Wraps the study in the shared schema-versioned envelope
    /// (`results/deception.json`).
    pub fn report(&self) -> StudyReport {
        StudyReport::new("deception", 1)
            .param("decoy_count", self.decoy_count)
            .param("samples", self.runs.len() / DefenseMode::ALL.len().max(1))
            .body(self)
    }

    /// Renders the per-family table and the benign verdict.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "Family",
            "Mode",
            "Detection",
            "Median real files lost",
            "Decoy trips",
            "Median sim time",
        ]);
        for r in &self.rows {
            t.row([
                r.family.clone(),
                r.mode.label().to_string(),
                format!("{:.0}%", 100.0 * r.detection_rate),
                format!("{:.1}", r.median_real_files_lost),
                format!("{:.0}%", 100.0 * r.decoy_trip_rate),
                format!("{:.1} ms", r.median_sim_micros / 1000.0),
            ]);
        }
        let mut out = format!(
            "Active defense — {} decoys woven into the corpus\n\n",
            self.decoy_count
        );
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nBenign sweep over the baited corpus: {} of {} applications \
             flagged (must be 0 — no legitimate workflow touches bait)\n",
            self.benign_false_positives,
            self.benign.len()
        ));
        out.push_str(
            "\nDecoys collapse the exposure window: the first destructive touch\n\
             of bait suspends at full confidence, before the scoreboard needs\n\
             to converge. Throttling stretches the remaining suspects'\n\
             simulated time budget without costing benign applications.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptodrop_malware::{paper_sample_set, Family};

    fn baited_quick() -> (Corpus, CorpusSpec) {
        let spec = CorpusSpec::sized(250, 25);
        let corpus = Corpus::generate(&spec);
        (bait_corpus(&corpus, &spec), spec)
    }

    #[test]
    fn decoys_reduce_real_loss_and_stay_benign_clean() {
        let (baited, _spec) = baited_quick();
        assert!(baited.decoy_count() >= 4);
        let config = Config::protecting(baited.root().as_str());
        let samples: Vec<RansomwareSample> = paper_sample_set()
            .into_iter()
            .filter(|s| {
                s.index == 0 && matches!(s.family, Family::TeslaCrypt | Family::CryptoWall)
            })
            .collect();
        let apps: Vec<Box<dyn BenignApp>> = vec![
            Box::new(cryptodrop_benign::Word),
            Box::new(cryptodrop_benign::ImageMagick { photo_count: 20 }),
        ];
        let study = run(&baited, &config, &samples, &apps, 2);

        assert_eq!(study.runs.len(), samples.len() * 3);
        assert!(study.defense_never_hurts(), "{:?}", study.rows);
        // Every defended run still detects, and the benign sweep is clean.
        for r in study.rows.iter().filter(|r| r.mode != DefenseMode::NoDefense) {
            assert!(r.detection_rate > 0.99, "{r:?}");
        }
        assert_eq!(study.benign_false_positives, 0, "{:?}", study.benign);
        assert!(study.benign.iter().all(|b| b.completed));
        assert!(study.render().contains("decoys woven"));
    }

    #[test]
    fn decoy_trip_suspends_below_threshold() {
        let (baited, _spec) = baited_quick();
        let config = Config::protecting(baited.root().as_str());
        // A traversal-ordered family meets a front-sorted decoy early.
        let sample = paper_sample_set()
            .into_iter()
            .find(|s| s.index == 0 && s.family == Family::Gpcode)
            .unwrap();
        let defended = run_sample_defended(&baited, &config, &sample, DefenseMode::Decoys);
        assert!(defended.detected);
        let undefended =
            run_sample_defended(&baited, &config, &sample, DefenseMode::NoDefense);
        assert!(
            defended.real_files_lost <= undefended.real_files_lost,
            "{} > {}",
            defended.real_files_lost,
            undefended.real_files_lost
        );
    }
}
