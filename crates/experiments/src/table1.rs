//! Table I: the per-family breakdown of detected samples and median files
//! lost, plus the §V-B2 union-indication audit.

use std::collections::BTreeMap;

use cryptodrop_malware::{BehaviorClass, Family};
use serde::{Deserialize, Serialize};

use crate::report::{median, TextTable};
use crate::runner::SampleResult;

/// One family's row in Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyRow {
    /// Family display name.
    pub family: String,
    /// Class A samples.
    pub class_a: usize,
    /// Class B samples.
    pub class_b: usize,
    /// Class C samples.
    pub class_c: usize,
    /// Total samples.
    pub total: usize,
    /// Share of the whole sample set, percent.
    pub percent: f64,
    /// Measured median files lost.
    pub median_files_lost: f64,
    /// The paper's reported median, for side-by-side comparison.
    pub paper_median: f64,
    /// Samples with at least one union indication.
    pub union_samples: usize,
}

/// The reproduced Table I plus the §V-B2 statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Per-family rows, Table I order.
    pub rows: Vec<FamilyRow>,
    /// Total samples run.
    pub total_samples: usize,
    /// Samples detected (the paper: all 492 — a 100% true positive rate).
    pub detected_samples: usize,
    /// Overall median files lost (the paper: 10).
    pub overall_median_files_lost: f64,
    /// Maximum files lost by any sample (the paper: 33).
    pub max_files_lost: u32,
    /// Samples with ≥1 union indication (the paper: 457, 93%).
    pub union_samples: usize,
    /// Class C samples whose union indication fired via move-over-original
    /// linking (the paper: 41 of 63).
    pub class_c_union: usize,
    /// Class C samples that evaded union indication (the paper: 22) ...
    pub class_c_nonunion: usize,
    /// ... and their median files lost (the paper: 6).
    pub class_c_nonunion_median: f64,
    /// Per-class sample counts (A, B, C).
    pub class_totals: (usize, usize, usize),
}

impl Table1 {
    /// Aggregates raw per-sample results into the table.
    pub fn from_results(results: &[SampleResult]) -> Table1 {
        let mut by_family: BTreeMap<&str, Vec<&SampleResult>> = BTreeMap::new();
        for r in results {
            by_family.entry(&r.family).or_default().push(r);
        }
        // Keep Table I's family order.
        let mut rows = Vec::new();
        for f in Family::ALL {
            let Some(group) = by_family.get(f.name()) else {
                continue;
            };
            let losses: Vec<u32> = group.iter().map(|r| r.files_lost).collect();
            rows.push(FamilyRow {
                family: f.name().to_string(),
                class_a: group.iter().filter(|r| r.class == BehaviorClass::A).count(),
                class_b: group.iter().filter(|r| r.class == BehaviorClass::B).count(),
                class_c: group.iter().filter(|r| r.class == BehaviorClass::C).count(),
                total: group.len(),
                percent: 100.0 * group.len() as f64 / results.len() as f64,
                median_files_lost: median(&losses).unwrap_or(0.0),
                paper_median: f.paper_median_files_lost(),
                union_samples: group.iter().filter(|r| r.union_triggered).count(),
            });
        }
        let all_losses: Vec<u32> = results.iter().map(|r| r.files_lost).collect();
        let class_c: Vec<&SampleResult> = results
            .iter()
            .filter(|r| r.class == BehaviorClass::C)
            .collect();
        let c_union = class_c.iter().filter(|r| r.union_triggered).count();
        let c_nonunion_losses: Vec<u32> = class_c
            .iter()
            .filter(|r| !r.union_triggered)
            .map(|r| r.files_lost)
            .collect();
        Table1 {
            rows,
            total_samples: results.len(),
            detected_samples: results.iter().filter(|r| r.detected).count(),
            overall_median_files_lost: median(&all_losses).unwrap_or(0.0),
            max_files_lost: all_losses.iter().copied().max().unwrap_or(0),
            union_samples: results.iter().filter(|r| r.union_triggered).count(),
            class_c_union: c_union,
            class_c_nonunion: class_c.len() - c_union,
            class_c_nonunion_median: median(&c_nonunion_losses).unwrap_or(0.0),
            class_totals: (
                results.iter().filter(|r| r.class == BehaviorClass::A).count(),
                results.iter().filter(|r| r.class == BehaviorClass::B).count(),
                class_c.len(),
            ),
        }
    }

    /// Renders the table plus the audit lines, paper values alongside.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "Family",
            "# Class A",
            "# Class B",
            "# Class C",
            "Total",
            "Median FL",
            "Paper FL",
            "Union",
        ]);
        for r in &self.rows {
            t.row([
                r.family.clone(),
                nz(r.class_a),
                nz(r.class_b),
                nz(r.class_c),
                format!("{} ({:.2}%)", r.total, r.percent),
                format!("{:.1}", r.median_files_lost),
                format!("{:.1}", r.paper_median),
                format!("{}/{}", r.union_samples, r.total),
            ]);
        }
        let (a, b, c) = self.class_totals;
        let mut out = String::from("Table I — samples detected per family and class\n\n");
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nTotals: {} samples (A: {}, B: {}, C: {}); detected {} ({:.1}% TPR; paper: 100%)\n",
            self.total_samples,
            a,
            b,
            c,
            self.detected_samples,
            100.0 * self.detected_samples as f64 / self.total_samples.max(1) as f64,
        ));
        out.push_str(&format!(
            "Overall median files lost: {:.1} (paper: 10); max: {} (paper: 33)\n",
            self.overall_median_files_lost, self.max_files_lost
        ));
        out.push_str(&format!(
            "Union indication: {}/{} samples ({:.0}%; paper: 457/492 = 93%)\n",
            self.union_samples,
            self.total_samples,
            100.0 * self.union_samples as f64 / self.total_samples.max(1) as f64
        ));
        out.push_str(&format!(
            "Class C: {} union via move-over-original (paper: 41), {} evaded union (paper: 22) \
             with median loss {:.1} (paper: 6)\n",
            self.class_c_union, self.class_c_nonunion, self.class_c_nonunion_median
        ));
        out
    }
}

fn nz(n: usize) -> String {
    if n == 0 {
        String::new()
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn result(family: &str, class: BehaviorClass, lost: u32, union: bool) -> SampleResult {
        SampleResult {
            id: 0,
            family: family.to_string(),
            class,
            detected: true,
            files_lost: lost,
            score: 200,
            union_triggered: union,
            read_only_skipped: 0,
            completed: false,
            files_attacked: lost,
            extensions_accessed: BTreeSet::new(),
            dirs_touched: BTreeSet::new(),
        }
    }

    #[test]
    fn aggregation_and_medians() {
        let results = vec![
            result("TeslaCrypt", BehaviorClass::A, 8, true),
            result("TeslaCrypt", BehaviorClass::A, 12, true),
            result("TeslaCrypt", BehaviorClass::C, 4, false),
            result("Xorist", BehaviorClass::A, 3, true),
        ];
        let t = Table1::from_results(&results);
        assert_eq!(t.total_samples, 4);
        assert_eq!(t.detected_samples, 4);
        assert_eq!(t.class_totals, (3, 0, 1));
        assert_eq!(t.union_samples, 3);
        assert_eq!(t.class_c_union, 0);
        assert_eq!(t.class_c_nonunion, 1);
        let tesla = t.rows.iter().find(|r| r.family == "TeslaCrypt").unwrap();
        assert_eq!(tesla.total, 3);
        assert_eq!(tesla.median_files_lost, 8.0);
        assert_eq!(tesla.class_a, 2);
        assert_eq!(tesla.class_c, 1);
        // Rows keep Table I order: TeslaCrypt before Xorist.
        let idx_t = t.rows.iter().position(|r| r.family == "TeslaCrypt").unwrap();
        let idx_x = t.rows.iter().position(|r| r.family == "Xorist").unwrap();
        assert!(idx_t < idx_x);
    }

    #[test]
    fn render_contains_key_lines() {
        let results = vec![result("GPcode", BehaviorClass::A, 20, true)];
        let out = Table1::from_results(&results).render();
        assert!(out.contains("GPcode"));
        assert!(out.contains("Median FL"));
        assert!(out.contains("paper: 100%"));
        assert!(out.contains("Union indication"));
    }
}
